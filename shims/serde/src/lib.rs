//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this shim funnels
//! everything through a self-describing [`value::Value`] tree:
//! [`Serialize`] renders a type *to* a `Value`, [`Deserialize`] rebuilds it
//! *from* one. `serde_json` (the sibling shim) converts between `Value`
//! and JSON text. The `derive` feature re-exports the `serde_derive` shim
//! proc-macros, which generate impls of these two traits for plain
//! structs and enums (the only shapes this workspace derives).

#![forbid(unsafe_code)]

use std::fmt;

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a tree of [`Value`]s.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a tree of [`Value`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

// `Value` is its own data model: (de)serializing it is the identity. This
// lets callers parse arbitrary JSON (e.g. telemetry JSONL lines) into a
// `Value` tree and walk it with `field`/`as_str` without a schema.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range")))?,
                    Value::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as null (JSON has no literal
            // for them); NaN is the honest reconstruction.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Deserialize for &'static str {
    /// Exists so derives on types with `&'static str` fields compile;
    /// borrowed deserialization has no owned backing store in the value
    /// model, so actually invoking it is an error.
    fn from_value(_: &Value) -> Result<Self, Error> {
        Err(Error::custom("cannot deserialize into borrowed &'static str"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq()?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, found sequence of {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.0f64, 2.0f64), (3.5, -0.0)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
        let dur = std::time::Duration::new(3, 450);
        assert_eq!(std::time::Duration::from_value(&dur.to_value()).unwrap(), dur);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(<(f64, f64)>::from_value(&Value::Seq(vec![Value::F64(1.0)])).is_err());
    }
}
