//! The self-describing data model all (de)serialization funnels through.

use crate::Error;

/// A JSON-shaped value tree.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps), so serialization output is deterministic and mirrors field
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => {
                Err(Error::custom(format!("expected object with field `{name}`, found {other:?}")))
            }
        }
    }

    /// Looks up a field of an object by name, treating a missing key as
    /// `null`. Derived struct deserialization goes through this so that
    /// `Option` fields added after data was written decode as `None`
    /// instead of failing (non-`Option` fields still error, on the
    /// `Null`).
    pub fn field_or_null(&self, name: &str) -> Result<&Value, Error> {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => {
                Ok(entries.iter().find(|(k, _)| k == name).map_or(&NULL, |(_, v)| v))
            }
            other => {
                Err(Error::custom(format!("expected object with field `{name}`, found {other:?}")))
            }
        }
    }

    /// Views the value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }

    /// Views the value as an object (association list).
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }

    /// Views the value as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}
