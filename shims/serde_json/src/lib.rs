//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the serde shim's `Value` data model.
//! Floats are printed with Rust's shortest-roundtrip formatting, so every
//! finite `f64` survives `to_string` → `from_str` bit-exactly (the
//! property the workspace's serialization tests rely on). Non-finite
//! floats serialize as `null` and deserialize back as `NaN`.

#![forbid(unsafe_code)]

use std::fmt;

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-roundtrip: parsing it back yields the
                // identical bits, and it always contains `.` or `e` so the
                // reader keeps it a float.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, indent, depth| {
                write_value(out, &items[i], indent, depth);
            })
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, indent, depth| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth);
            })
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = JsonParser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => {
                Err(Error::new(format!("unexpected `{}` at offset {}", b as char, self.pos)))
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, -2.5e17, 0.0, -0.0f64, f64::MAX, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "json was {json}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let xs: Vec<(f64, u64)> = vec![(1.5, 2), (-0.25, 9)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(f64, u64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_parses_back() {
        let xs = vec![vec![1u64, 2], vec![3]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
