//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's `harness = false` benches use
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`,
//! `iter_batched`, ...) backed by a deliberately small timing loop: a few
//! warm-up iterations, then a fixed measurement batch whose mean is
//! printed as `ns/iter`. No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target time budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;

/// How batched inputs are grouped per measurement (accepted for API
/// compatibility; every batch is one iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from the parameter's display form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passes a routine to be timed.
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Times `routine`, printing the mean wall-clock per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            std::hint::black_box(routine());
            iters += 1;
        }
        report(&self.label, start.elapsed(), iters);
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        while busy < MEASURE_BUDGET {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
        }
        report(&self.label, busy, iters);
    }
}

fn report(label: &str, elapsed: Duration, iters: u64) {
    let per_iter = elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench {label:<50} {per_iter:>12} ns/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { label: format!("{}/{}", self.name, id.into_label()) };
        f(&mut bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { label: format!("{}/{}", self.name, id.into_label()) };
        f(&mut bencher, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { label: name.to_string() };
        f(&mut bencher);
        self
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
