//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel::unbounded` subset the workspace uses, backed by
//! `std::sync::mpsc`. Semantically equivalent for this workspace's
//! single-producer/single-consumer manager–agent protocol; crossbeam's
//! multi-consumer cloning of receivers is not provided.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(inner)| SendError(inner))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Send failed: the message comes back to the caller.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed: the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// The channel is disconnected.
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_arrive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnection_is_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn works_across_scoped_threads() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
                assert_eq!(sum, 4950);
            });
        }
    }
}
