//! Named full-range strategies (`proptest::num::u64::ANY`, ...).

/// Strategies for `u64`.
pub mod u64 {
    use std::marker::PhantomData;

    use crate::arbitrary::Any;

    /// Any `u64`, uniformly.
    pub const ANY: Any<u64> = Any(PhantomData);
}

/// Strategies for `u32`.
pub mod u32 {
    use std::marker::PhantomData;

    use crate::arbitrary::Any;

    /// Any `u32`, uniformly.
    pub const ANY: Any<u32> = Any(PhantomData);
}
