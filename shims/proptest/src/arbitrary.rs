//! `any::<T>()`: full-range generation for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore as _};

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — adequate for the workspace's uses, and free
    /// of the NaN/infinity cases full bit-pattern generation would need
    /// special treatment for.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
