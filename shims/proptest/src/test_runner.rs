//! The case-driving loop behind `proptest!` and explicit runner usage.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng as _;

use crate::strategy::Strategy;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of cases to generate and run.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_shrink_iters: 0 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed; fails the whole test.
    Fail(String),
    /// The case's precondition did not hold; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "property failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
        }
    }
}

/// A failed run: the message and the input that triggered it.
#[derive(Clone, PartialEq, Eq)]
pub struct TestError {
    msg: String,
}

impl fmt::Debug for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestError {}

/// Drives a property over `Config::cases` generated inputs.
pub struct TestRunner {
    config: Config,
    rng: StdRng,
}

impl TestRunner {
    /// Builds a runner with a fixed internal seed (runs are deterministic).
    pub fn new(config: Config) -> Self {
        TestRunner { config, rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D) }
    }

    /// Runs `test` over generated inputs; the first failure aborts with an
    /// error naming the offending input. Rejected cases are skipped, with
    /// a cap on consecutive rejections to surface vacuous properties.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), TestError> {
        let mut executed = 0u32;
        let mut rejected = 0u32;
        while executed < self.config.cases {
            if rejected > 16 * self.config.cases.max(1) {
                return Err(TestError {
                    msg: format!("too many rejected cases ({rejected}) for {} executed", executed),
                });
            }
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    return Err(TestError {
                        msg: format!("{msg}; input: {shown} (case {executed})"),
                    });
                }
            }
        }
        Ok(())
    }
}
