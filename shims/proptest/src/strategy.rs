//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(usize, u64, u32, i64, i32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
