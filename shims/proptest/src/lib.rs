//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, `prop_assert*`/`prop_assume!`, range and
//! tuple strategies, `collection::vec`, `any::<T>()`, `num::u64::ANY`,
//! `.prop_map`, and the explicit [`test_runner::TestRunner`] driver.
//!
//! No shrinking: a failing case reports the generated input and fails the
//! test immediately. Generation is deterministic — every run draws from a
//! fixed-seed [`rand::rngs::StdRng`], so failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// The glob-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the surrounding property (returns `TestCaseError` from the
/// enclosing `Result`-valued test body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner
                .run(&($($strategy,)+), |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                })
                .unwrap();
        }
        $crate::__proptest_fns! { @cfg($config) $($rest)* }
    };
    (@cfg($config:expr)) => {};
}
