//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the serde *shim*'s `Serialize`/`Deserialize` traits
//! (a `Value`-tree data model) for the item shapes this workspace
//! actually derives: non-generic structs (named, tuple, unit) and enums
//! with unit / named / tuple variants. The input is parsed directly from
//! the `proc_macro` token stream — no `syn`/`quote`, so the shim has no
//! dependencies of its own.
//!
//! `#[serde(...)]` attributes are accepted and, with one exception,
//! ignored. `#[serde(transparent)]` on newtype id wrappers needs no
//! handling because single-field tuple structs are emitted transparently
//! anyway (matching upstream serde's newtype-struct JSON encoding).
//! `#[serde(skip)]` on a named field *is* honored like upstream: the
//! field is omitted from the serialized form and filled with
//! `Default::default()` on deserialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Derives the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Marked `#[serde(skip)]`: not serialized, defaulted on deserialize.
    skip: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Parser { toks: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs(&mut self) {
        self.consume_attrs();
    }

    /// Consumes leading attributes, reporting whether any of them was
    /// `#[serde(skip)]` (as a top-level argument, so e.g.
    /// `skip_serializing_if` does not match).
    fn consume_attrs(&mut self) -> bool {
        let mut skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    skip |= attr_is_serde_skip(g.stream());
                    self.pos += 1;
                }
                other => panic!("expected attribute brackets after `#`, found {other:?}"),
            }
        }
        skip
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1; // pub(crate) / pub(super)
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected identifier, found {other:?}"),
        }
    }

    /// Skips tokens up to (and including) the next comma at angle-bracket
    /// depth zero. Returns false when the stream ended instead.
    fn skip_until_top_level_comma(&mut self) -> bool {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut p = Parser::new(input);
    p.skip_attrs();
    p.skip_visibility();
    let keyword = p.expect_ident();
    let name = p.expect_ident();
    if let Some(TokenTree::Punct(pu)) = p.peek() {
        if pu.as_char() == '<' {
            panic!("the serde shim derive does not support generic types (on `{name}`)");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(pu)) if pu.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, found `{other}`"),
    };
    Item { name, kind }
}

/// True for the bracket-interior of exactly `serde(..., skip, ...)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match &toks[..] {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    loop {
        let skip = p.consume_attrs();
        if p.peek().is_none() {
            break;
        }
        p.skip_visibility();
        let field = p.expect_ident();
        match p.next() {
            Some(TokenTree::Punct(pu)) if pu.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        fields.push(Field { name: field, skip });
        if !p.skip_until_top_level_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut p = Parser::new(stream);
    let mut count = 0;
    loop {
        p.skip_attrs();
        if p.peek().is_none() {
            break;
        }
        p.skip_visibility();
        count += 1;
        if !p.skip_until_top_level_comma() {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    loop {
        p.skip_attrs();
        if p.peek().is_none() {
            break;
        }
        let name = p.expect_ident();
        let fields = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                p.pos += 1;
                VariantFields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                p.pos += 1;
                VariantFields::Tuple(count_tuple_fields(inner))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a possible explicit discriminant, then the separating comma.
        if !p.skip_until_top_level_comma() {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => format!(
            "{VALUE}::Map(::std::vec![{}])",
            fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => format!(
            "{VALUE}::Seq(::std::vec![{}])",
            (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::UnitStruct => format!("{VALUE}::Null"),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = format!("::std::string::String::from(\"{vname}\")");
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(arms, "{name}::{vname} => {VALUE}::Str({tag}),");
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| {
                                let name = &f.name;
                                if f.skip {
                                    format!("{name}: _")
                                } else {
                                    name.clone()
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => {VALUE}::Map(::std::vec![({tag}, \
                             {VALUE}::Map(::std::vec![{entries}]))]),"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__f0) => {VALUE}::Map(::std::vec![({tag}, \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binds =
                            (0..*n).map(|i| format!("__f{i}")).collect::<Vec<_>>().join(", ");
                        let items = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = write!(
                            arms,
                            "{name}::{vname}({binds}) => {VALUE}::Map(::std::vec![({tag}, \
                             {VALUE}::Seq(::std::vec![{items}]))]),"
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {VALUE} {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => format!(
            "::std::result::Result::Ok({name} {{ {} }})",
            fields
                .iter()
                .map(|f| {
                    let name = &f.name;
                    if f.skip {
                        format!("{name}: ::std::default::Default::default()")
                    } else {
                        format!(
                            "{name}: ::serde::Deserialize::from_value(\
                             __v.field_or_null(\"{name}\")?)?"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => format!(
            "{{ let __seq = __v.as_seq()?; \
               if __seq.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                       \"expected {n} fields for {name}, found {{}}\", __seq.len()))); }} \
               ::std::result::Result::Ok({name}({fields})) }}",
            fields = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    VariantFields::Named(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                let name = &f.name;
                                if f.skip {
                                    format!("{name}: ::std::default::Default::default()")
                                } else {
                                    format!(
                                        "{name}: ::serde::Deserialize::from_value(\
                                         __inner.field_or_null(\"{name}\")?)?"
                                    )
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                        );
                    }
                    VariantFields::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let inits = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = write!(
                            tagged_arms,
                            "\"{vname}\" => {{ let __seq = __inner.as_seq()?; \
                             if __seq.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong tuple variant arity for {name}::{vname}\")); }} \
                             ::std::result::Result::Ok({name}::{vname}({inits})) }},"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     {VALUE}::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     {VALUE}::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }},\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"invalid value for enum {name}: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &{VALUE}) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
