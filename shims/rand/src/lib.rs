//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` APIs it uses are vendored here: [`rngs::StdRng`]
//! (xoshiro256** seeded through SplitMix64), the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, and [`seq::SliceRandom`]. Streams are
//! deterministic per seed but intentionally *not* identical to upstream
//! `rand` — the workspace only relies on same-seed reproducibility.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] (stand-in for sampling
/// from `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = <f64 as Standard>::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = <f64 as Standard>::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Pre-built generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// with SplitMix64 seed expansion. Not the upstream `StdRng` stream,
    /// but equally deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5usize..=6);
            assert!((5..=6).contains(&y));
            let z = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
