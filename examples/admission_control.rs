//! Admission control: to serve, or not to serve?
//!
//! The paper's formulation (constraint (6)) obliges the provider to serve
//! every client. This library also offers the economically rational
//! alternative — decline clients whose best placement loses money — via
//! `SolverConfig::require_service`. The example contrasts both policies
//! as the client book degrades from premium to junk contracts, and shows
//! the relaxation upper bound certifying each outcome.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use cloudalloc::core::{profit_upper_bound, solve, SolverConfig};
use cloudalloc::metrics::Table;
use cloudalloc::model::ClientId;
use cloudalloc::workload::{generate, Range, ScenarioConfig};

fn main() {
    let mut table = Table::new(vec![
        "contract quality".into(),
        "profit (decline)".into(),
        "served".into(),
        "profit (serve-all)".into(),
        "served".into(),
        "upper bound".into(),
    ]);
    // Degrade the utility intercepts: premium contracts pay up to 3 money
    // units per request, junk contracts barely above zero.
    for (label, lo, hi) in
        [("premium", 2.0, 3.0), ("standard", 1.0, 3.0), ("thin", 0.5, 1.5), ("junk", 0.1, 0.6)]
    {
        let scenario =
            ScenarioConfig { utility_intercept: Range::new(lo, hi), ..ScenarioConfig::paper(30) };
        let system = generate(&scenario, 777);
        let decline = solve(&system, &SolverConfig::default(), 1);
        let serve_all =
            solve(&system, &SolverConfig { require_service: true, ..Default::default() }, 1);
        let served = |r: &cloudalloc::core::SolveResult| {
            (0..30).filter(|&i| !r.allocation.placements(ClientId(i)).is_empty()).count()
        };
        table.row(vec![
            label.into(),
            format!("{:.1}", decline.report.profit),
            format!("{}/30", served(&decline)),
            format!("{:.1}", serve_all.report.profit),
            format!("{}/30", served(&serve_all)),
            format!("{:.1}", profit_upper_bound(&system)),
        ]);
    }
    println!("admission policies as contract quality degrades (30 clients):");
    println!("{table}");
    println!(
        "\nwith premium contracts the policies coincide (everyone is worth serving);\n\
         as contracts thin out, the declining provider sheds money-losers while the\n\
         serve-all provider (the paper's constraint (6)) absorbs the losses. The\n\
         relaxation bound certifies how much profit is even theoretically available."
    );
}
