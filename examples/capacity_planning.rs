//! Capacity planning: sweep a demand multiplier over one datacenter and
//! watch profit, server usage and SLA quality respond — then double-check
//! the chosen operating point against the discrete-event simulator rather
//! than trusting the closed-form model alone.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use cloudalloc::core::{solve, SolverConfig};
use cloudalloc::metrics::Table;
use cloudalloc::simulator::{validate, SimConfig};
use cloudalloc::workload::{generate, Range, ScenarioConfig};

fn main() {
    let base_rate = Range::new(0.5, 4.5);
    let mut table = Table::new(vec![
        "demand".into(),
        "profit".into(),
        "revenue".into(),
        "cost".into(),
        "active".into(),
        "served".into(),
        "mean_resp".into(),
    ]);
    let mut knee: Option<(f64, f64)> = None;
    for step in 0..=6 {
        let multiplier = 0.4 + 0.4 * step as f64;
        let scenario = ScenarioConfig {
            arrival_rate: Range::new(base_rate.lo * multiplier, base_rate.hi * multiplier),
            ..ScenarioConfig::paper(50)
        };
        let system = generate(&scenario, 4242);
        let result = solve(&system, &SolverConfig::default(), 0);
        let served: Vec<f64> = result
            .report
            .clients
            .iter()
            .filter(|c| c.response_time.is_finite())
            .map(|c| c.response_time)
            .collect();
        let mean_resp = served.iter().sum::<f64>() / served.len().max(1) as f64;
        table.row(vec![
            format!("{multiplier:.1}x"),
            format!("{:.1}", result.report.profit),
            format!("{:.1}", result.report.revenue),
            format!("{:.1}", result.report.cost),
            result.report.active_servers.to_string(),
            format!("{}/{}", served.len(), system.num_clients()),
            format!("{mean_resp:.3}"),
        ]);
        if knee.is_none_or(|(_, p)| result.report.profit > p) {
            knee = Some((multiplier, result.report.profit));
        }
    }
    println!("capacity sweep (50 clients, demand scaled on the paper's U(0.5,4.5) rates)");
    println!("{table}");
    let (best_mult, best_profit) = knee.expect("sweep is non-empty");
    println!("most profitable demand point: {best_mult:.1}x (profit {best_profit:.1})\n");

    // Re-check the chosen operating point end-to-end: does the simulated
    // datacenter actually deliver the response times the optimizer
    // promised?
    let scenario = ScenarioConfig {
        arrival_rate: Range::new(base_rate.lo * best_mult, base_rate.hi * best_mult),
        ..ScenarioConfig::paper(50)
    };
    let system = generate(&scenario, 4242);
    let result = solve(&system, &SolverConfig::default(), 0);
    let rows = validate(
        &system,
        &result.allocation,
        &SimConfig { horizon: 5_000.0, warmup: 500.0, seed: 1, ..Default::default() },
    );
    let mean_err = rows.iter().map(|r| r.relative_error()).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "simulator check at {best_mult:.1}x: {} clients measured, mean |analytic − simulated| = {:.1}%",
        rows.len(),
        mean_err * 100.0
    );
}
