//! Deploying multi-tier applications — the paper's stated future work,
//! implemented by compiling tiered apps with end-to-end SLAs into the
//! single-tier allocation model.
//!
//! ```text
//! cargo run --release --example multitier_deployment
//! ```

use cloudalloc::core::{solve, SolverConfig};
use cloudalloc::model::UtilityFunction;
use cloudalloc::multitier::{compile, evaluate_apps, Application, Tier};
use cloudalloc::workload::{generate, ScenarioConfig};

fn main() {
    // Infrastructure only (the generated clients are ignored by compile).
    let infrastructure = generate(&ScenarioConfig::small(1), 77);

    let apps = vec![
        // A classic 3-tier web shop: every request hits the web tier,
        // fans out to two app-tier calls on average, and 60% of requests
        // touch the database.
        Application::new(
            "webshop",
            vec![
                Tier::new(1.0, 0.25, 0.35, 0.6), // web
                Tier::new(2.0, 0.45, 0.25, 1.0), // app logic
                Tier::new(0.6, 0.80, 0.20, 2.0), // database
            ],
            1.5,
            1.5,
            UtilityFunction::linear(4.0, 0.6),
        ),
        // A 2-tier API service with a strict step SLA.
        Application::new(
            "partner-api",
            vec![Tier::new(1.0, 0.35, 0.40, 0.5), Tier::new(1.2, 0.55, 0.30, 0.8)],
            1.0,
            1.0,
            UtilityFunction::step(vec![(1.0, 3.0), (2.5, 1.0)]),
        ),
    ];

    let (system, compiled) = compile(&apps, &infrastructure);
    println!(
        "compiled {} applications ({} tiers) onto {} servers in {} clusters",
        apps.len(),
        system.num_clients(),
        system.num_servers(),
        system.num_clusters()
    );

    // Tiers are all-or-nothing: solve under strict service.
    let config = SolverConfig { require_service: true, ..Default::default() };
    let result = solve(&system, &config, 5);
    println!(
        "infrastructure profit (per-tier view): {:.2}, {} active servers\n",
        result.report.profit, result.report.active_servers
    );

    println!("app          end-to-end R  revenue  compiled-revenue");
    for outcome in evaluate_apps(&system, &result.allocation, &compiled) {
        println!(
            "{:<12} {:>12.3}  {:>7.2}  {:>16.2}",
            compiled.apps[outcome.app].name,
            outcome.response_time,
            outcome.revenue,
            outcome.compiled_revenue
        );
    }

    // Where did each tier land?
    println!("\ntier placements:");
    for (idx, &(a, t)) in compiled.tier_of_client.iter().enumerate() {
        let client = cloudalloc::model::ClientId(idx);
        let placements = result.allocation.placements(client);
        let servers: Vec<String> =
            placements.iter().map(|&(s, p)| format!("{s}(α={:.2})", p.alpha)).collect();
        println!(
            "  {} tier {} → {}",
            compiled.apps[a].name,
            t,
            if servers.is_empty() { "unplaced".into() } else { servers.join(", ") }
        );
    }
}
