//! A SaaS provider with three SLA tiers — the workload the paper's
//! introduction motivates (online banking / e-commerce / social apps with
//! heterogeneous response-time contracts).
//!
//! The system is built by hand (no generator): two datacenter clusters,
//! two hardware generations, and discrete *step* utility functions per
//! tier — gold pays a premium for sub-0.3 responses, bronze tolerates
//! seconds. The example then simulates a traffic surge and re-runs the
//! allocator, showing how the epoch-based design of the paper handles
//! "large changes [that] cannot be handled by the local managers".
//!
//! ```text
//! cargo run --release --example saas_provider
//! ```

use cloudalloc::core::{solve, SolverConfig};
use cloudalloc::model::{ClientId, CloudSystem, SystemBuilder, UtilityClassId, UtilityFunction};

const GOLD: UtilityClassId = UtilityClassId(0);
const SILVER: UtilityClassId = UtilityClassId(1);
const BRONZE: UtilityClassId = UtilityClassId(2);

/// Builds the provider's infrastructure and client book; `surge` scales
/// every client's request rate.
fn build_system(surge: f64) -> CloudSystem {
    let mut b = SystemBuilder::new();
    // Previous-generation machines: cheap but slow; current generation:
    // twice the capacity, higher power draw.
    let old_gen = b.server_class(3.0, 4.0, 3.0, 1.0, 1.0);
    let new_gen = b.server_class(6.0, 6.0, 6.0, 1.8, 1.6);
    let gold = b.utility_class(UtilityFunction::step(vec![(0.3, 3.0), (0.8, 1.2), (2.0, 0.3)]));
    let silver = b.utility_class(UtilityFunction::step(vec![(0.8, 1.5), (2.0, 0.8), (4.0, 0.2)]));
    let bronze = b.utility_class(UtilityFunction::linear(0.9, 0.15));
    debug_assert_eq!((gold, silver, bronze), (GOLD, SILVER, BRONZE));

    // Cluster 0: 4 old + 2 new machines; cluster 1: 1 old + 3 new.
    let east = b.cluster();
    let west = b.cluster();
    b.servers(east, old_gen, 4).servers(east, new_gen, 2);
    b.servers(west, old_gen, 1).servers(west, new_gen, 3);

    // The client book: a few gold tenants, a broad silver middle, and a
    // long bronze tail of batch-like applications.
    let book: &[(UtilityClassId, f64, f64, f64, f64)] = &[
        // (tier, rate, exec_p, exec_c, storage)
        (GOLD, 2.5, 0.5, 0.4, 1.2),
        (GOLD, 1.8, 0.6, 0.5, 0.8),
        (GOLD, 3.2, 0.4, 0.4, 1.5),
        (SILVER, 2.0, 0.7, 0.5, 0.9),
        (SILVER, 1.4, 0.8, 0.6, 0.5),
        (SILVER, 2.8, 0.6, 0.5, 1.1),
        (SILVER, 1.1, 0.9, 0.7, 0.4),
        (BRONZE, 0.9, 1.0, 0.8, 1.6),
        (BRONZE, 1.6, 0.9, 0.9, 2.0),
        (BRONZE, 0.7, 1.0, 1.0, 0.6),
        (BRONZE, 1.2, 0.8, 0.9, 1.0),
    ];
    for &(tier, rate, exec_p, exec_c, storage) in book {
        // Prediction carries the surge; revenue stays pinned to the
        // *contracted* rate.
        b.client_with_rates(tier, rate * surge, rate, exec_p, exec_c, storage);
    }
    b.build()
}

fn tier_name(id: UtilityClassId) -> &'static str {
    match id {
        GOLD => "gold",
        SILVER => "silver",
        _ => "bronze",
    }
}

fn report(label: &str, system: &CloudSystem) {
    let result = solve(system, &SolverConfig::default(), 7);
    println!("== {label} ==");
    println!(
        "profit {:.2} (revenue {:.2}, cost {:.2}), {} / {} servers active",
        result.report.profit,
        result.report.revenue,
        result.report.cost,
        result.report.active_servers,
        system.num_servers()
    );
    println!("tier    client  response  revenue");
    for (i, outcome) in result.report.clients.iter().enumerate() {
        let tier = system.client(ClientId(i)).utility_class;
        println!(
            "{:<7} {:>5}  {:>8.3}  {:>7.2}",
            tier_name(tier),
            i,
            outcome.response_time,
            outcome.revenue
        );
    }
    // Gold tenants must see the tightest response times on average.
    let mean_by = |tier: UtilityClassId| {
        let (sum, n) = result
            .report
            .clients
            .iter()
            .enumerate()
            .filter(|(i, _)| system.client(ClientId(*i)).utility_class == tier)
            .fold((0.0, 0), |(s, n), (_, o)| (s + o.response_time, n + 1));
        sum / n as f64
    };
    println!(
        "mean response: gold {:.3} < silver {:.3} < bronze {:.3}\n",
        mean_by(GOLD),
        mean_by(SILVER),
        mean_by(BRONZE)
    );
}

fn main() {
    report("normal operations", &build_system(1.0));
    // A 60% traffic surge: the next decision epoch re-allocates. Revenue
    // still prices the contracted rates, but stability must hold at the
    // surged predicted rates — expect more active servers and wider
    // dispersion.
    report("traffic surge (+60% predicted load)", &build_system(1.6));
}
