//! The distributed control plane: a central manager querying one agent
//! per cluster, exactly the architecture of the paper's Figure 1. Shows
//! that the scatter–gather protocol reproduces the sequential solution
//! while dividing the compute across agents.
//!
//! ```text
//! cargo run --release --example distributed_manager
//! ```

use cloudalloc::core::{greedy_pass, SolverConfig, SolverCtx};
use cloudalloc::distributed::{greedy_distributed_timed, solve_distributed};
use cloudalloc::model::{evaluate, ClientId};
use cloudalloc::workload::{generate, ScenarioConfig};

fn main() {
    let system = generate(&ScenarioConfig::paper(80), 31);
    let config = SolverConfig::default();
    let ctx = SolverCtx::new(&system, &config);
    let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();

    // 1. The distributed greedy pass is bit-identical to the sequential
    //    one: the manager commits the same argmax the loop would.
    let sequential = greedy_pass(&ctx, &order);
    let (distributed, busy) = greedy_distributed_timed(&ctx, &order);
    assert_eq!(sequential, distributed, "protocol must match the sequential pass");
    println!(
        "greedy pass: sequential and distributed allocations identical (profit {:.2})",
        evaluate(&system, &distributed).profit
    );
    println!("per-agent compute time (the work each cluster shouldered):");
    let total: f64 = busy.iter().map(|d| d.as_secs_f64()).sum();
    for (k, d) in busy.iter().enumerate() {
        let share = d.as_secs_f64() / total * 100.0;
        println!(
            "  agent k{k}: {:>7.2?}  {:>5.1}%  {}",
            d,
            share,
            "#".repeat((share / 2.0) as usize)
        );
    }
    let critical = busy.iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
    println!(
        "critical path {:.3}s vs total work {:.3}s → ideal speedup {:.1}x on {} agents\n",
        critical,
        total,
        total / critical,
        busy.len()
    );

    // 2. Full distributed solve: cluster-local operators in parallel,
    //    inter-cluster reassignment coordinated centrally.
    let (alloc, stats) = solve_distributed(&system, &config, 31);
    let report = evaluate(&system, &alloc);
    println!(
        "distributed solve: profit {:.2}, {} active servers, {} rounds",
        report.profit, report.active_servers, stats.rounds
    );
    println!(
        "phase wall-clock: greedy {:?}, local search {:?} (on {} agents)",
        stats.greedy_wall, stats.search_wall, stats.agents
    );
}
