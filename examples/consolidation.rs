//! Server consolidation under light load — the energy story of the paper
//! (and of Srikantaiah et al., which it builds on): when demand is low,
//! profit maximization automatically packs clients onto few machines and
//! powers the rest down, because every active server pays its constant
//! cost `P0`.
//!
//! The example compares the greedy construction (which already avoids
//! *opening* servers needlessly) against the full local search (whose
//! `TurnOFF_servers` operator also *closes* servers opened too eagerly),
//! then prints a utilization map of the surviving machines.
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use cloudalloc::core::{best_initial, improve, SolverConfig, SolverCtx};
use cloudalloc::model::{evaluate, ServerId};
use cloudalloc::workload::{generate, Range, ScenarioConfig};

fn main() {
    // Light traffic: rates at the bottom of the paper's range.
    let scenario = ScenarioConfig {
        arrival_rate: Range::new(0.5, 1.2),
        num_clients: 24,
        ..ScenarioConfig::paper(24)
    };
    let system = generate(&scenario, 99);
    let config = SolverConfig::default();
    let ctx = SolverCtx::new(&system, &config);

    let (mut alloc, greedy_profit) = best_initial(&ctx, 1);
    let greedy_active = alloc.num_active_servers();
    println!(
        "greedy construction: profit {:.2}, {} / {} servers active",
        greedy_profit,
        greedy_active,
        system.num_servers()
    );

    let stats = improve(&ctx, &mut alloc, 1);
    let report = evaluate(&system, &alloc);
    println!(
        "after local search:  profit {:.2}, {} servers active ({} rounds)",
        report.profit, report.active_servers, stats.rounds
    );
    println!(
        "consolidation: {} fewer machines powered, {:+.2} profit\n",
        greedy_active as i64 - report.active_servers as i64,
        report.profit - greedy_profit
    );

    println!("surviving servers (processing-share and utilization view):");
    println!("server  cluster  class  residents  phi_p  util_p  cost");
    for j in 0..system.num_servers() {
        let sid = ServerId(j);
        let load = alloc.load(sid);
        if !load.is_on() {
            continue;
        }
        let class = system.class_of(sid);
        let rho = load.work_processing / class.cap_processing;
        println!(
            "{:>6}  {:>7}  {:>5}  {:>9}  {:>5.2}  {:>6.2}  {:>4.2}",
            j,
            system.server(sid).cluster.index(),
            system.server(sid).class.index(),
            load.placements,
            load.phi_p,
            rho,
            class.operation_cost(rho)
        );
    }

    // Sanity: consolidation never un-serves anyone.
    let served = (0..system.num_clients())
        .filter(|&i| !alloc.placements(cloudalloc::model::ClientId(i)).is_empty())
        .count();
    println!("\nserved clients: {served} / {}", system.num_clients());
}
