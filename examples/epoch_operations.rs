//! Operating the allocator over time: decision epochs with predicted
//! arrival rates, workload drift, surges and warm-started re-allocation —
//! the operational layer around the paper's per-epoch optimization.
//!
//! ```text
//! cargo run --release --example epoch_operations
//! ```

use cloudalloc::core::SolverConfig;
use cloudalloc::epoch::{DriftConfig, EpochConfig, EpochManager, EwmaPredictor, WorkloadDrift};
use cloudalloc::metrics::Table;
use cloudalloc::simulator::{simulate, SimConfig};
use cloudalloc::workload::{generate, ScenarioConfig};

fn main() {
    let system = generate(&ScenarioConfig::paper(30), 11);
    let base_rates: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted).collect();

    let predictor = EwmaPredictor::new(0.35, &base_rates);
    let config = EpochConfig {
        solver: SolverConfig::default(),
        resolve_threshold: 0.12,
        ..Default::default()
    };
    let mut manager = EpochManager::new(system, predictor, config, 1);

    // Drifting demand with occasional surges (a synthetic stand-in for
    // production traces).
    let drift_config = DriftConfig {
        volatility: 0.12,
        surge_probability: 0.03,
        surge_factor: 2.2,
        ..Default::default()
    };
    let mut drift = WorkloadDrift::new(drift_config, &base_rates, 99);

    let mut table = Table::new(vec![
        "epoch".into(),
        "pred_err".into(),
        "planned".into(),
        "realized".into(),
        "unstable".into(),
        "active".into(),
        "replan".into(),
    ]);
    let mut realized_total = 0.0;
    for _ in 0..12 {
        let actual = drift.step();
        let report = manager.step(&actual);
        realized_total += report.actual_profit;
        table.row(vec![
            report.epoch.to_string(),
            format!("{:.1}%", report.prediction_error * 100.0),
            format!("{:.1}", report.predicted_profit),
            format!("{:.1}", report.actual_profit),
            report.unstable_clients.to_string(),
            report.active_servers.to_string(),
            if report.resolved_fully { "full".into() } else { "warm".into() },
        ]);
    }
    println!("12 decision epochs under drifting demand (30 clients):");
    println!("{table}");
    println!("cumulative realized profit: {realized_total:.1}");

    // Close the loop: replay the final epoch's allocation against the
    // discrete-event simulator at the *realized* rates.
    let final_rates = drift.current().to_vec();
    let final_system = generate(&ScenarioConfig::paper(30), 11).with_predicted_rates(&final_rates);
    let sim = simulate(
        &final_system,
        manager.allocation(),
        &SimConfig { horizon: 2_000.0, warmup: 200.0, seed: 5, ..Default::default() },
    );
    println!(
        "\nDES replay of the final epoch: measured revenue {:.1} over {} completed requests",
        sim.measured_revenue(&final_system),
        sim.total_completed()
    );
    println!(
        "\nreading the table: 'planned' is the profit expected under the predicted\n\
         rates; 'realized' is what the drifted reality paid; 'unstable' counts\n\
         SLAs blown by under-prediction; 'replan' shows when the demand shift\n\
         exceeded the threshold and forced a full cloud-level re-solve."
    );
}
