//! Quickstart: generate a paper-style scenario, run the `Resource_Alloc`
//! heuristic, and inspect the outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cloudalloc::core::{solve, SolverConfig};
use cloudalloc::model::{check_feasibility, ClientId};
use cloudalloc::workload::{generate, ScenarioConfig};

fn main() {
    // A cloud with 5 clusters, 10 server classes and 40 clients drawn from
    // the paper's §VI distributions, fully deterministic given the seed.
    let config = ScenarioConfig::paper(40);
    let system = generate(&config, 2026);
    println!(
        "system: {} clusters, {} servers ({} classes), {} clients ({} SLA classes)",
        system.num_clusters(),
        system.num_servers(),
        system.server_classes().len(),
        system.num_clients(),
        system.utility_classes().len()
    );
    println!(
        "total processing demand {:.1} vs capacity {:.1}",
        system.total_processing_demand(),
        system.total_processing_capacity()
    );

    // Solve: best-of-3 greedy constructions, then local search to steady.
    let result = solve(&system, &SolverConfig::default(), 0);
    println!(
        "\nprofit: {:.2} (revenue {:.2} − cost {:.2}), {} active servers",
        result.report.profit,
        result.report.revenue,
        result.report.cost,
        result.report.active_servers
    );
    println!(
        "local search: initial {:.2} → final {:.2} in {} rounds (converged: {})",
        result.initial_profit, result.report.profit, result.stats.rounds, result.stats.converged
    );

    // Every constraint of the optimization problem holds.
    let violations = check_feasibility(&system, &result.allocation);
    println!("feasibility violations: {}", violations.len());

    // Peek at a few clients: where they run and how fast.
    println!("\nclient  cluster  servers  response  revenue");
    for i in 0..5 {
        let client = ClientId(i);
        let outcome = result.report.clients[i];
        println!(
            "{:>6}  {:>7}  {:>7}  {:>8.3}  {:>7.2}",
            i,
            result
                .allocation
                .cluster_of(client)
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into()),
            result.allocation.placements(client).len(),
            outcome.response_time,
            outcome.revenue
        );
    }
}
