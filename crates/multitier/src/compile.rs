//! Compiling applications into the single-tier model and recomposing
//! end-to-end outcomes.

use serde::{Deserialize, Serialize};

use cloudalloc_model::{
    evaluate_client, Allocation, Client, ClientId, CloudSystem, Cluster, UtilityClass,
    UtilityClassId, UtilityFunction,
};

use crate::app::Application;

/// The mapping produced by [`compile`]: which compiled client implements
/// which application tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledApps {
    /// The applications, in input order.
    pub apps: Vec<Application>,
    /// For every compiled client (by id order): `(app index, tier index)`.
    pub tier_of_client: Vec<(usize, usize)>,
}

impl CompiledApps {
    /// Compiled client ids implementing application `app`.
    pub fn clients_of(&self, app: usize) -> Vec<ClientId> {
        self.tier_of_client
            .iter()
            .enumerate()
            .filter(|&(_, &(a, _))| a == app)
            .map(|(i, _)| ClientId(i))
            .collect()
    }
}

/// End-to-end outcome of one application under an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Application index.
    pub app: usize,
    /// Visit-weighted end-to-end response `R = Σ_t v_t·R_t`;
    /// `∞` if any tier is unserved or unstable.
    pub response_time: f64,
    /// True end-to-end revenue `λ̃·U(R)`.
    pub revenue: f64,
    /// Revenue the compiled (per-tier linearized) utilities report; for
    /// linear SLAs with all tiers in the linear region this equals
    /// [`AppOutcome::revenue`] exactly.
    pub compiled_revenue: f64,
}

/// Compiles `apps` onto `infrastructure` (whose clusters, servers and
/// background loads are copied verbatim; its clients and SLA catalog are
/// ignored), producing a single-tier [`CloudSystem`] ready for any solver
/// in `cloudalloc-core`.
///
/// Each tier becomes one client with rate `v_t·λ`, the tier's execution
/// profile, and a linear utility `c_t − b·R_t` where `b` is the
/// application's (reference) slope and the intercepts split the
/// end-to-end intercept per the crate-level docs.
///
/// # Panics
///
/// Panics if `apps` is empty.
pub fn compile(apps: &[Application], infrastructure: &CloudSystem) -> (CloudSystem, CompiledApps) {
    assert!(!apps.is_empty(), "need at least one application");

    // One utility class per (app, tier).
    let mut utility_classes = Vec::new();
    let mut tier_of_client = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let b = app.utility.reference_slope().max(1e-9);
        let u0 = app.utility.max_value();
        let num_tiers = app.tiers.len() as f64;
        for (t, tier) in app.tiers.iter().enumerate() {
            // Σ_t v_t·c_t = u0 with equal per-tier value share.
            let intercept = u0 / (tier.visits * num_tiers);
            utility_classes.push(UtilityClass::new(
                UtilityClassId(utility_classes.len()),
                UtilityFunction::linear(intercept, b),
            ));
            tier_of_client.push((a, t));
        }
    }

    let mut system = CloudSystem::new(infrastructure.server_classes().to_vec(), utility_classes);
    for cluster in infrastructure.clusters() {
        system.add_cluster(Cluster::new(cluster.id));
    }
    for server in infrastructure.all_servers() {
        system.add_server_with_background(
            server.server.clone(),
            infrastructure.background(server.id),
        );
    }

    let mut class_idx = 0;
    for app in apps {
        for tier in &app.tiers {
            let id = ClientId(system.num_clients());
            system.add_client(Client::new(
                id,
                UtilityClassId(class_idx),
                tier.visits * app.rate_predicted,
                tier.visits * app.rate_agreed,
                tier.exec_processing,
                tier.exec_communication,
                tier.storage,
            ));
            class_idx += 1;
        }
    }

    (system, CompiledApps { apps: apps.to_vec(), tier_of_client })
}

/// Recomposes true end-to-end outcomes from an allocation of the compiled
/// system.
pub fn evaluate_apps(
    system: &CloudSystem,
    alloc: &Allocation,
    compiled: &CompiledApps,
) -> Vec<AppOutcome> {
    compiled
        .apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let mut response = 0.0;
            let mut compiled_revenue = 0.0;
            for client in compiled.clients_of(a) {
                let (_, t) = compiled.tier_of_client[client.index()];
                let outcome = evaluate_client(system, alloc, client);
                compiled_revenue += outcome.revenue;
                response += app.tiers[t].visits * outcome.response_time;
            }
            let revenue = if response.is_finite() {
                app.rate_agreed * app.utility.value(response)
            } else {
                0.0
            };
            AppOutcome { app: a, response_time: response, revenue, compiled_revenue }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Tier;
    use cloudalloc_core::{solve, SolverConfig};
    use cloudalloc_workload::{generate, ScenarioConfig};

    fn infrastructure() -> CloudSystem {
        generate(&ScenarioConfig::small(1), 7)
    }

    fn shop() -> Application {
        Application::new(
            "shop",
            vec![
                Tier::new(1.0, 0.3, 0.3, 0.4),
                Tier::new(2.0, 0.5, 0.3, 0.8),
                Tier::new(0.5, 0.8, 0.2, 1.5),
            ],
            1.2,
            1.2,
            UtilityFunction::linear(3.0, 0.4),
        )
    }

    #[test]
    fn compilation_preserves_infrastructure() {
        let infra = infrastructure();
        let (system, compiled) = compile(&[shop()], &infra);
        assert_eq!(system.num_servers(), infra.num_servers());
        assert_eq!(system.num_clusters(), infra.num_clusters());
        assert_eq!(system.num_clients(), 3);
        assert_eq!(compiled.tier_of_client, vec![(0, 0), (0, 1), (0, 2)]);
        assert_eq!(compiled.clients_of(0).len(), 3);
    }

    #[test]
    fn tier_rates_scale_by_visits() {
        let (system, _) = compile(&[shop()], &infrastructure());
        let rates: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted).collect();
        assert!((rates[0] - 1.2).abs() < 1e-12);
        assert!((rates[1] - 2.4).abs() < 1e-12);
        assert!((rates[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn intercept_split_preserves_the_end_to_end_intercept() {
        let app = shop();
        let (system, _) = compile(std::slice::from_ref(&app), &infrastructure());
        // Σ_t v_t·c_t = u0.
        let total: f64 = system
            .clients()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let v = app.tiers[i].visits;
                v * system.utility_of(c.id).max_value()
            })
            .sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_decomposition_is_exact_in_the_linear_region() {
        let apps = vec![shop()];
        let (system, compiled) = compile(&apps, &infrastructure());
        // Tiers must be served all-or-nothing: an app earns nothing when
        // any tier is missing, so solve under strict service.
        let config = SolverConfig { require_service: true, ..Default::default() };
        let result = solve(&system, &config, 3);
        let outcomes = evaluate_apps(&system, &result.allocation, &compiled);
        let o = &outcomes[0];
        assert!(o.response_time.is_finite(), "all tiers must be served");
        // All tiers in the linear region ⇒ exact decomposition.
        let in_linear_region = compiled.clients_of(0).iter().all(|&c| {
            let outcome = evaluate_client(&system, &result.allocation, c);
            system.utility_of(c).value(outcome.response_time) > 0.0
        });
        if in_linear_region {
            assert!(
                (o.revenue - o.compiled_revenue).abs() < 1e-6,
                "decomposition drifted: true {} vs compiled {}",
                o.revenue,
                o.compiled_revenue
            );
        }
    }

    #[test]
    fn multiple_apps_solve_feasibly() {
        let apps = vec![
            shop(),
            Application::new(
                "analytics",
                vec![Tier::new(1.0, 0.6, 0.5, 1.0), Tier::new(3.0, 0.4, 0.4, 0.5)],
                0.8,
                0.8,
                UtilityFunction::step(vec![(2.0, 2.0), (5.0, 0.5)]),
            ),
        ];
        let (system, compiled) = compile(&apps, &infrastructure());
        assert_eq!(system.num_clients(), 5);
        let result =
            solve(&system, &SolverConfig { require_service: true, ..Default::default() }, 1);
        let violations = cloudalloc_model::check_feasibility(&system, &result.allocation);
        assert!(violations
            .iter()
            .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })));
        let outcomes = evaluate_apps(&system, &result.allocation, &compiled);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.revenue >= 0.0 && o.revenue.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_apps_panic() {
        let _ = compile(&[], &infrastructure());
    }
}
