//! Multi-tier application descriptions.

use serde::{Deserialize, Serialize};

use cloudalloc_model::UtilityFunction;

/// One tier of an application (e.g. web, application logic, database).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Mean visits to this tier per application request (`> 0`); the
    /// tier's arrival rate is `visits · λ_app`.
    pub visits: f64,
    /// Mean processing time per tier request on a unit of processing
    /// capacity (`> 0`).
    pub exec_processing: f64,
    /// Mean communication time per tier request on a unit of
    /// communication capacity (`> 0`).
    pub exec_communication: f64,
    /// Storage footprint the tier needs on every hosting server (`>= 0`).
    pub storage: f64,
}

impl Tier {
    /// Creates a tier.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain arguments.
    pub fn new(visits: f64, exec_processing: f64, exec_communication: f64, storage: f64) -> Self {
        for (name, v) in [
            ("visits", visits),
            ("exec_processing", exec_processing),
            ("exec_communication", exec_communication),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive and finite, got {v}");
        }
        assert!(storage.is_finite() && storage >= 0.0, "storage must be non-negative");
        Self { visits, exec_processing, exec_communication, storage }
    }
}

/// A multi-tier application with one end-to-end SLA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Tier chain, front to back (`>= 1` tier).
    pub tiers: Vec<Tier>,
    /// Predicted application request rate `λ` (`> 0`).
    pub rate_predicted: f64,
    /// Agreed (contract) rate `λ̃` used for revenue (`> 0`).
    pub rate_agreed: f64,
    /// End-to-end utility of the visit-weighted total response time.
    pub utility: UtilityFunction,
}

impl Application {
    /// Creates an application.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty or the rates are not positive.
    pub fn new(
        name: impl Into<String>,
        tiers: Vec<Tier>,
        rate_predicted: f64,
        rate_agreed: f64,
        utility: UtilityFunction,
    ) -> Self {
        assert!(!tiers.is_empty(), "an application needs at least one tier");
        assert!(
            rate_predicted.is_finite() && rate_predicted > 0.0,
            "rate_predicted must be positive"
        );
        assert!(rate_agreed.is_finite() && rate_agreed > 0.0, "rate_agreed must be positive");
        Self { name: name.into(), tiers, rate_predicted, rate_agreed, utility }
    }

    /// Total predicted processing demand of the application:
    /// `λ·Σ_t v_t·t̄^p_t`.
    pub fn processing_demand(&self) -> f64 {
        self.rate_predicted * self.tiers.iter().map(|t| t.visits * t.exec_processing).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> Application {
        Application::new(
            "shop",
            vec![
                Tier::new(1.0, 0.3, 0.4, 0.5),
                Tier::new(1.5, 0.6, 0.3, 1.0),
                Tier::new(0.4, 0.9, 0.2, 2.0),
            ],
            2.0,
            2.0,
            UtilityFunction::linear(3.0, 0.5),
        )
    }

    #[test]
    fn demand_weights_by_visits() {
        let app = three_tier();
        let expect = 2.0 * (0.3 + 1.5 * 0.6 + 0.4 * 0.9);
        assert!((app.processing_demand() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn rejects_empty_tier_chain() {
        let _ = Application::new("x", vec![], 1.0, 1.0, UtilityFunction::linear(1.0, 0.1));
    }

    #[test]
    #[should_panic(expected = "visits must be positive")]
    fn rejects_zero_visits() {
        let _ = Tier::new(0.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let app = three_tier();
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(back, app);
    }
}
