//! Multi-tier applications on the single-tier allocation model.
//!
//! The paper closes with: *"In future works, the model will be expanded
//! to deployment of complex multi-tier applications in a cloud computing
//! infrastructure."* This crate implements that extension by
//! **compilation**: a tiered application (web → app → db, say) with one
//! end-to-end SLA becomes a set of coupled single-tier clients whose
//! linearized utilities decompose the end-to-end utility, so the existing
//! `Resource_Alloc` solver applies unchanged.
//!
//! # Model
//!
//! An [`Application`] issues requests at rate `λ`; a request visits tier
//! `t` an average of `v_t` times ([`Tier::visits`], the fan-out factor),
//! so tier `t` sees a Poisson stream of rate `v_t·λ`. End-to-end response
//! is the visit-weighted sum of tier responses, `R = Σ_t v_t·R_t`
//! (tandem pipelining, exactly the assumption of the paper's Eq. (1)),
//! and revenue is `λ̃·U(R)` for a non-increasing end-to-end utility `U`.
//!
//! # Compilation
//!
//! For a *linear* end-to-end utility `U(R) = u0 − b·R`,
//!
//! ```text
//! λ̃·U(R) = λ̃·u0 − b·λ̃·Σ_t v_t·R_t = Σ_t (v_t λ̃)·(c_t − b·R_t)
//! ```
//!
//! with any split `Σ_t v_t·c_t = u0`: the app's revenue decomposes
//! **exactly** into per-tier linear utilities with the *same* slope `b`
//! and tier rates `v_t·λ̃`. [`compile`] materializes those per-tier
//! clients ([`CompiledApps`] keeps the mapping); [`evaluate_apps`]
//! recomposes true end-to-end responses and revenues from any allocation
//! of the compiled system. Non-linear utilities are linearized the same
//! way the paper linearizes discrete ones; the recomposition always
//! reports the true utility.
//!
//! Solve compiled systems with
//! [`SolverConfig::require_service`](cloudalloc_core::SolverConfig) set:
//! an application earns nothing while *any* tier is unserved, so the
//! solver's per-client economic admission (which only sees one tier's
//! marginal value) must be disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod compile;

pub use app::{Application, Tier};
pub use compile::{compile, evaluate_apps, AppOutcome, CompiledApps};
