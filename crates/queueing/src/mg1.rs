//! The M/G/1 queue (Pollaczek–Khinchine): general service distributions.
//!
//! The allocation model assumes exponential service (M/M/1); real
//! workloads differ. P–K gives the exact mean waiting time for *any*
//! service distribution from just its mean and squared coefficient of
//! variation, which is what the robustness experiments use to predict
//! how far reality drifts from the plan.

use serde::{Deserialize, Serialize};

/// An M/G/1 queue: Poisson arrivals, one server, FIFO, general service
/// with known mean rate and squared coefficient of variation.
///
/// # Example
///
/// ```
/// use cloudalloc_queueing::{MG1, MM1};
///
/// // With CV² = 1 (exponential service), M/G/1 reduces to M/M/1.
/// let mg1 = MG1::new(1.0, 3.0, 1.0);
/// let mm1 = MM1::new(1.0, 3.0);
/// assert!((mg1.mean_response_time() - mm1.mean_response_time()).abs() < 1e-12);
///
/// // Deterministic service (CV² = 0) halves the waiting time.
/// let md1 = MG1::new(1.0, 3.0, 0.0);
/// assert!((md1.mean_waiting_time() - mm1.mean_waiting_time() / 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MG1 {
    arrival: f64,
    service: f64,
    cv2: f64,
}

impl MG1 {
    /// Creates a queue with arrival rate `arrival`, mean service rate
    /// `service` and squared coefficient of variation `cv2` of the
    /// service times.
    ///
    /// # Panics
    ///
    /// Panics if `arrival < 0`, `service <= 0` or `cv2 < 0` (or any
    /// argument is non-finite).
    pub fn new(arrival: f64, service: f64, cv2: f64) -> Self {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "arrival rate must be non-negative and finite, got {arrival}"
        );
        assert!(
            service.is_finite() && service > 0.0,
            "service rate must be positive and finite, got {service}"
        );
        assert!(cv2.is_finite() && cv2 >= 0.0, "cv2 must be non-negative and finite, got {cv2}");
        Self { arrival, service, cv2 }
    }

    /// Traffic intensity `ρ = λ/μ`.
    pub fn utilization(&self) -> f64 {
        self.arrival / self.service
    }

    /// True when strictly stable (`ρ < 1`).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Pollaczek–Khinchine mean waiting time
    /// `ρ·(1 + CV²) / (2·μ·(1 − ρ))`; `∞` when unstable.
    pub fn mean_waiting_time(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let rho = self.utilization();
        rho * (1.0 + self.cv2) / (2.0 * self.service * (1.0 - rho))
    }

    /// Mean sojourn time `1/μ + W`; `∞` when unstable.
    pub fn mean_response_time(&self) -> f64 {
        1.0 / self.service + self.mean_waiting_time()
    }

    /// Mean number in the system (Little's law).
    pub fn mean_in_system(&self) -> f64 {
        self.arrival * self.mean_response_time()
    }

    /// The response-time inflation of this queue relative to the
    /// exponential-service (M/M/1) model at the same rates:
    /// `T_{M/G/1} / T_{M/M/1}`. Used by the robustness analysis to
    /// predict how much a bursty workload degrades a plan.
    pub fn inflation_vs_mm1(&self) -> f64 {
        let mm1 = MG1::new(self.arrival, self.service, 1.0);
        self.mean_response_time() / mm1.mean_response_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MM1;
    use proptest::prelude::*;

    #[test]
    fn reduces_to_mm1_at_unit_cv2() {
        let mg1 = MG1::new(2.0, 5.0, 1.0);
        let mm1 = MM1::new(2.0, 5.0);
        assert!((mg1.mean_response_time() - mm1.mean_response_time()).abs() < 1e-12);
        assert!((mg1.mean_waiting_time() - mm1.mean_waiting_time()).abs() < 1e-12);
        assert!((mg1.inflation_vs_mm1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        let md1 = MG1::new(2.0, 5.0, 0.0);
        let mm1 = MM1::new(2.0, 5.0);
        assert!((md1.mean_waiting_time() - mm1.mean_waiting_time() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_queues_return_infinity() {
        let q = MG1::new(5.0, 5.0, 1.0);
        assert!(!q.is_stable());
        assert_eq!(q.mean_waiting_time(), f64::INFINITY);
        assert_eq!(q.mean_response_time(), f64::INFINITY);
    }

    #[test]
    fn littles_law_holds() {
        // L = λ·T by construction; check the numbers line up.
        let q = MG1::new(1.0, 4.0, 3.0);
        assert!((q.mean_in_system() - 1.0 * q.mean_response_time()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn waiting_grows_linearly_in_cv2(
            arrival in 0.1f64..2.0,
            service in 2.5f64..6.0,
            cv2 in 0.0f64..8.0,
        ) {
            let q = MG1::new(arrival, service, cv2);
            let base = MG1::new(arrival, service, 0.0);
            // W(cv2) = W(0)·(1 + cv2).
            prop_assert!((q.mean_waiting_time() - base.mean_waiting_time() * (1.0 + cv2)).abs() < 1e-9);
            // More variance never helps.
            prop_assert!(q.mean_response_time() >= base.mean_response_time() - 1e-12);
        }
    }
}
