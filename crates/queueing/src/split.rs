//! Probabilistic splitting and merging of Poisson streams.
//!
//! The cluster dispatcher routes each arriving request of client *i* to
//! server *j* with probability `α_{ij}`. By the splitting property of the
//! Poisson process, each output is again Poisson with rate `α_{ij}·λ_i`,
//! which is what justifies analyzing every placement as an independent
//! M/M/1 queue. This module encodes that algebra and validates dispersion
//! vectors.

/// Rates of the sub-streams produced by splitting a Poisson stream of rate
/// `rate` with routing probabilities `probs`.
///
/// # Panics
///
/// Panics if `rate < 0`, any probability is outside `[0,1]`, or the
/// probabilities sum to more than `1 + 1e-9` (a sum below 1 models dropped
/// traffic and is allowed).
pub fn split_rates(rate: f64, probs: &[f64]) -> Vec<f64> {
    assert!(rate.is_finite() && rate >= 0.0, "rate must be non-negative and finite, got {rate}");
    let mut total = 0.0;
    for &p in probs {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "routing probability must lie in [0,1], got {p}"
        );
        total += p;
    }
    assert!(total <= 1.0 + 1e-9, "routing probabilities sum to {total} > 1");
    probs.iter().map(|&p| p * rate).collect()
}

/// Rate of the superposition (merge) of independent Poisson streams.
///
/// # Panics
///
/// Panics if any rate is negative or non-finite.
pub fn merge_rates(rates: &[f64]) -> f64 {
    rates
        .iter()
        .map(|&r| {
            assert!(r.is_finite() && r >= 0.0, "rate must be non-negative and finite, got {r}");
            r
        })
        .sum()
}

/// Validates a dispersion vector `α_i·`: entries in `[0,1]` summing to 1
/// within `tol`. Returns the exact sum on success.
///
/// # Errors
///
/// Returns the offending sum when it is not within `tol` of 1, or `NaN`
/// entries are present.
pub fn validate_dispersion(alphas: &[f64], tol: f64) -> Result<f64, f64> {
    let mut total = 0.0;
    for &a in alphas {
        if !a.is_finite() || !(0.0..=1.0).contains(&a) {
            return Err(f64::NAN);
        }
        total += a;
    }
    if (total - 1.0).abs() <= tol {
        Ok(total)
    } else {
        Err(total)
    }
}

/// Renormalizes a non-negative weight vector into a valid dispersion vector
/// (summing to exactly 1). Useful after local-search perturbations.
///
/// # Panics
///
/// Panics if any weight is negative/non-finite or all weights are zero.
pub fn renormalize(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w.is_finite() && w >= 0.0, "weight must be non-negative and finite, got {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "at least one weight must be positive");
    weights.iter().map(|&w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitting_preserves_total_rate() {
        let rates = split_rates(4.0, &[0.25, 0.25, 0.5]);
        assert_eq!(rates, vec![1.0, 1.0, 2.0]);
        assert!((merge_rates(&rates) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn partial_split_models_dropped_traffic() {
        let rates = split_rates(2.0, &[0.25, 0.25]);
        assert!((merge_rates(&rates) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_split_panics() {
        let _ = split_rates(1.0, &[0.7, 0.7]);
    }

    #[test]
    fn dispersion_validation() {
        assert_eq!(validate_dispersion(&[0.5, 0.5], 1e-9), Ok(1.0));
        assert!(validate_dispersion(&[0.5, 0.4], 1e-9).is_err());
        assert_eq!(validate_dispersion(&[0.5, 0.4], 0.2), Ok(0.9));
        assert!(validate_dispersion(&[f64::NAN], 1e-9).unwrap_err().is_nan());
        assert!(validate_dispersion(&[1.5], 1.0).unwrap_err().is_nan());
    }

    #[test]
    fn renormalize_produces_valid_dispersion() {
        let alphas = renormalize(&[1.0, 3.0]);
        assert_eq!(alphas, vec![0.25, 0.75]);
        assert!(validate_dispersion(&alphas, 1e-12).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn renormalize_rejects_all_zero() {
        let _ = renormalize(&[0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn split_then_merge_is_identity(
            rate in 0.0f64..10.0,
            raw in proptest::collection::vec(0.01f64..1.0, 1..8),
        ) {
            let probs = renormalize(&raw);
            let rates = split_rates(rate, &probs);
            prop_assert!((merge_rates(&rates) - rate).abs() < 1e-9);
        }

        #[test]
        fn renormalized_vectors_always_validate(
            raw in proptest::collection::vec(0.0f64..5.0, 1..8),
        ) {
            prop_assume!(raw.iter().sum::<f64>() > 1e-9);
            let alphas = renormalize(&raw);
            prop_assert!(validate_dispersion(&alphas, 1e-9).is_ok());
        }
    }
}
