//! Analytic queueing substrate for the cloud resource-allocation model.
//!
//! The paper models every (client, server, resource) triple as an
//! independent **M/M/1** queue obtained from **Generalized Processor
//! Sharing** (GPS): a client holding share `φ` of a resource with capacity
//! `C` and mean per-unit-capacity service time `t̄` sees an exponential
//! server of rate `φ·C/t̄`. Poisson request streams split probabilistically
//! across servers (dispersion `α`), and the processing and communication
//! stages of a request form a pipelined tandem whose mean response times
//! are assumed additive.
//!
//! This crate provides exactly that algebra, plus the sampling primitives
//! used by the discrete-event simulator to generate the same stochastic
//! processes:
//!
//! * [`MM1`] — closed-form M/M/1 metrics,
//! * [`MG1`] — Pollaczek–Khinchine M/G/1 metrics for general service,
//! * [`gps`] — GPS share bookkeeping and effective rates,
//! * [`split`] — Poisson splitting/merging of request streams,
//! * [`tandem`] — the paper's Eq. (1) response-time composition,
//! * [`sampling`] — inverse-CDF exponential sampling for simulators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gps;
pub mod sampling;
pub mod split;
pub mod tandem;

mod mg1;
mod mm1;

pub use mg1::MG1;
pub use mm1::MM1;
