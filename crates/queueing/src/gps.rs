//! Generalized Processor Sharing (GPS) share algebra.
//!
//! Under GPS, a resource of capacity `C` is divided among clients by
//! weights; a client with share `φ` receives a guaranteed service capacity
//! `φ·C` regardless of the other clients' backlogs. The paper uses the
//! standard result (Zhang–Towsley–Kurose) that each client's sub-queue can
//! then be analyzed as an isolated M/M/1 queue with service rate
//! `φ·C / t̄`, where `t̄` is the client's mean per-unit-capacity service
//! time.

use crate::MM1;

/// Effective exponential service rate seen by a client holding share
/// `share` of a resource of capacity `capacity`, when one request costs
/// `exec_time` on a unit of capacity: `share·capacity/exec_time`.
///
/// # Panics
///
/// Panics if `share ∉ [0,1]`, `capacity <= 0`, or `exec_time <= 0`
/// (or any argument is non-finite).
pub fn effective_rate(share: f64, capacity: f64, exec_time: f64) -> f64 {
    assert!(
        share.is_finite() && (0.0..=1.0).contains(&share),
        "share must lie in [0,1], got {share}"
    );
    assert!(
        capacity.is_finite() && capacity > 0.0,
        "capacity must be positive and finite, got {capacity}"
    );
    assert!(
        exec_time.is_finite() && exec_time > 0.0,
        "exec_time must be positive and finite, got {exec_time}"
    );
    share * capacity / exec_time
}

/// Minimum share keeping the client's GPS sub-queue strictly stable at
/// arrival rate `arrival`, i.e. the smallest `φ` with
/// `φ·capacity/exec_time > arrival`. Returns a value in `(0, ∞)`; values
/// above 1 mean no share of this resource can stabilize the queue.
///
/// # Panics
///
/// Panics if `arrival < 0`, `capacity <= 0`, or `exec_time <= 0`.
pub fn min_stable_share(arrival: f64, capacity: f64, exec_time: f64) -> f64 {
    assert!(
        arrival.is_finite() && arrival >= 0.0,
        "arrival must be non-negative and finite, got {arrival}"
    );
    assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive, got {capacity}");
    assert!(
        exec_time.is_finite() && exec_time > 0.0,
        "exec_time must be positive, got {exec_time}"
    );
    arrival * exec_time / capacity
}

/// Builds the isolated M/M/1 queue a GPS client sees: arrivals `arrival`,
/// service `share·capacity/exec_time`.
///
/// # Panics
///
/// Panics under the same conditions as [`effective_rate`], or if the
/// resulting service rate is zero (a positive-traffic client must hold a
/// positive share).
pub fn client_queue(arrival: f64, share: f64, capacity: f64, exec_time: f64) -> MM1 {
    let rate = effective_rate(share, capacity, exec_time);
    MM1::new(arrival, rate)
}

/// Converts absolute GPS shares into the weight vector of a weighted-fair
/// queueing (WFQ) scheduler serving the same clients: weights are the
/// shares normalized to sum to 1.
///
/// The paper notes GPS "can be implemented by weighted fair queuing if the
/// service times for packets are not too large"; the simulator uses these
/// weights for its WFQ mode.
///
/// # Panics
///
/// Panics if `shares` is empty, any share is outside `[0,1]`, or all
/// shares are zero.
pub fn wfq_weights(shares: &[f64]) -> Vec<f64> {
    assert!(!shares.is_empty(), "need at least one share");
    let total: f64 = shares
        .iter()
        .map(|&s| {
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "share must lie in [0,1], got {s}");
            s
        })
        .sum();
    assert!(total > 0.0, "at least one share must be positive");
    shares.iter().map(|&s| s / total).collect()
}

/// True when a set of GPS shares fits the unit budget within `tol`.
pub fn shares_fit(shares: &[f64], tol: f64) -> bool {
    shares.iter().sum::<f64>() <= 1.0 + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn effective_rate_scales_linearly_in_share() {
        assert_eq!(effective_rate(0.5, 4.0, 0.5), 4.0);
        assert_eq!(effective_rate(1.0, 4.0, 0.5), 8.0);
        assert_eq!(effective_rate(0.0, 4.0, 0.5), 0.0);
    }

    #[test]
    fn min_stable_share_is_tight() {
        let phi = min_stable_share(2.0, 4.0, 0.5);
        assert!((phi - 0.25).abs() < 1e-12);
        // Just above the bound the queue is stable, at the bound it is not.
        assert!(client_queue(2.0, phi + 1e-6, 4.0, 0.5).is_stable());
        assert!(!client_queue(2.0, phi, 4.0, 0.5).is_stable());
    }

    #[test]
    fn min_stable_share_can_exceed_one() {
        // Demand larger than the whole resource.
        assert!(min_stable_share(10.0, 2.0, 0.5) > 1.0);
    }

    #[test]
    fn client_queue_composes_rate_and_arrival() {
        let q = client_queue(1.0, 0.5, 4.0, 0.5);
        assert_eq!(q.arrival_rate(), 1.0);
        assert_eq!(q.service_rate(), 4.0);
        assert!((q.mean_response_time() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wfq_weights_normalize() {
        let w = wfq_weights(&[0.2, 0.2, 0.6]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.6).abs() < 1e-12);
        // Shares that do not fill the budget still normalize.
        let w = wfq_weights(&[0.1, 0.3]);
        assert!((w[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one share must be positive")]
    fn wfq_rejects_all_zero() {
        let _ = wfq_weights(&[0.0, 0.0]);
    }

    #[test]
    fn gps_boundary_diverges_cleanly_under_shed_then_readmit_cycles() {
        let (arrival, capacity, exec) = (2.0, 4.0, 0.5);
        let min_share = min_stable_share(arrival, capacity, exec);

        // Approaching the minimal stable share from above: response stays
        // finite, positive and monotone increasing toward the boundary.
        let mut last = 0.0;
        for k in 1..=10 {
            let share = min_share * (1.0 + 10f64.powi(-k));
            let q = client_queue(arrival, share, capacity, exec);
            let r = q.mean_response_time();
            assert!(r.is_finite() && r > 0.0, "share={share}: response {r}");
            assert!(r > last, "response must increase as the share shrinks to minimal");
            last = r;
        }
        // At or below the minimal share the sub-queue is infeasible: the
        // signal is a clean +∞ (never NaN, never negative).
        for share in [min_share, min_share * 0.5] {
            let q = client_queue(arrival, share, capacity, exec);
            assert!(!q.is_stable());
            assert_eq!(q.mean_response_time(), f64::INFINITY);
            assert_eq!(q.mean_waiting_time(), f64::INFINITY);
        }

        // Shed-then-readmit cycles: a client bounces between a generous
        // share, eviction (its share reclaimed by a neighbour), and
        // readmission barely above the stability bound. The algebra is
        // stateless, so every readmission at the same share reproduces
        // the same finite response bit-for-bit, the budget keeps fitting,
        // and no step ever yields NaN or a negative time.
        let generous = 0.6;
        let barely = min_share * 1.01;
        let reference_generous =
            client_queue(arrival, generous, capacity, exec).mean_response_time();
        let reference_barely = client_queue(arrival, barely, capacity, exec).mean_response_time();
        for _cycle in 0..3 {
            // Shed: the neighbour absorbs the freed share; our client's
            // sub-queue is gone (share 0 ⇒ no queue to build — modeled as
            // the neighbour running alone).
            assert!(shares_fit(&[generous, 0.0], 1e-12));
            // Readmit barely above the bound.
            let q = client_queue(arrival, barely, capacity, exec);
            assert!(q.is_stable());
            assert!(shares_fit(&[1.0 - barely, barely], 1e-12));
            assert_eq!(q.mean_response_time().to_bits(), reference_barely.to_bits());
            // Grow back to the generous share.
            let q = client_queue(arrival, generous, capacity, exec);
            assert_eq!(q.mean_response_time().to_bits(), reference_generous.to_bits());
            assert!(reference_barely > reference_generous);
        }
    }

    #[test]
    fn shares_fit_respects_tolerance() {
        assert!(shares_fit(&[0.5, 0.5], 0.0));
        assert!(shares_fit(&[0.5, 0.5 + 1e-9], 1e-6));
        assert!(!shares_fit(&[0.7, 0.5], 1e-6));
    }

    #[test]
    #[should_panic(expected = "share must lie in [0,1]")]
    fn effective_rate_rejects_oversized_share() {
        let _ = effective_rate(1.5, 1.0, 1.0);
    }

    proptest! {
        #[test]
        fn stability_threshold_is_consistent(
            arrival in 0.01f64..5.0,
            capacity in 0.5f64..8.0,
            exec in 0.05f64..2.0,
        ) {
            let phi = min_stable_share(arrival, capacity, exec);
            if phi < 1.0 {
                let eps = 1e-9 + phi * 1e-9;
                prop_assert!(client_queue(arrival, (phi + 1e-3).min(1.0), capacity, exec).is_stable());
                let at = effective_rate(phi.min(1.0), capacity, exec);
                prop_assert!(at <= arrival + eps.max(1e-9) * 10.0 + 1e-9 + arrival * 1e-12 + at * 1e-12);
            }
        }

        #[test]
        fn wfq_weights_always_sum_to_one(shares in proptest::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assume!(shares.iter().sum::<f64>() > 1e-6);
            let w = wfq_weights(&shares);
            prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (wi, si) in w.iter().zip(&shares) {
                prop_assert!((wi * shares.iter().sum::<f64>() - si).abs() < 1e-9);
            }
        }
    }
}
