//! Closed-form metrics of the M/M/1 queue.

use serde::{Deserialize, Serialize};

/// An M/M/1 queue: Poisson arrivals at rate `λ`, exponential service at
/// rate `μ`, one server, FIFO, infinite buffer.
///
/// All formulas require strict stability `λ < μ`; metrics on an unstable
/// queue return `f64::INFINITY` rather than negative nonsense, matching the
/// convention of the profit evaluator.
///
/// # Example
///
/// ```
/// use cloudalloc_queueing::MM1;
///
/// let q = MM1::new(1.0, 3.0);
/// assert!((q.mean_response_time() - 0.5).abs() < 1e-12);
/// assert!((q.utilization() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MM1 {
    arrival: f64,
    service: f64,
}

impl MM1 {
    /// Creates a queue with Poisson arrival rate `arrival` and exponential
    /// service rate `service`.
    ///
    /// # Panics
    ///
    /// Panics if `arrival < 0`, `service <= 0`, or either is non-finite.
    pub fn new(arrival: f64, service: f64) -> Self {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "arrival rate must be non-negative and finite, got {arrival}"
        );
        assert!(
            service.is_finite() && service > 0.0,
            "service rate must be positive and finite, got {service}"
        );
        Self { arrival, service }
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival
    }

    /// Service rate `μ`.
    pub fn service_rate(&self) -> f64 {
        self.service
    }

    /// Traffic intensity `ρ = λ/μ`.
    pub fn utilization(&self) -> f64 {
        self.arrival / self.service
    }

    /// True when the queue is strictly stable (`λ < μ`).
    pub fn is_stable(&self) -> bool {
        self.arrival < self.service
    }

    /// Mean sojourn (response) time `1/(μ − λ)`, the quantity the paper's
    /// Eq. (1) sums over resources; `∞` when unstable.
    pub fn mean_response_time(&self) -> f64 {
        if self.is_stable() {
            1.0 / (self.service - self.arrival)
        } else {
            f64::INFINITY
        }
    }

    /// Mean waiting time in queue `ρ/(μ − λ)`; `∞` when unstable.
    pub fn mean_waiting_time(&self) -> f64 {
        if self.is_stable() {
            self.utilization() / (self.service - self.arrival)
        } else {
            f64::INFINITY
        }
    }

    /// Mean number of requests in the system `ρ/(1 − ρ)` (Little's law
    /// applied to the response time); `∞` when unstable.
    pub fn mean_in_system(&self) -> f64 {
        if self.is_stable() {
            let rho = self.utilization();
            rho / (1.0 - rho)
        } else {
            f64::INFINITY
        }
    }

    /// Steady-state probability of exactly `n` requests in the system:
    /// `(1 − ρ)·ρⁿ`; `0` when unstable (no steady state exists; callers
    /// should check [`MM1::is_stable`]).
    pub fn prob_in_system(&self, n: u32) -> f64 {
        if self.is_stable() {
            let rho = self.utilization();
            (1.0 - rho) * rho.powi(n as i32)
        } else {
            0.0
        }
    }

    /// Probability a request's sojourn time exceeds `t`:
    /// `exp(−(μ−λ)·t)`; `1` when unstable.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or NaN.
    pub fn prob_response_exceeds(&self, t: f64) -> f64 {
        assert!(!t.is_nan() && t >= 0.0, "time must be >= 0, got {t}");
        if self.is_stable() {
            (-(self.service - self.arrival) * t).exp()
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_values() {
        let q = MM1::new(2.0, 5.0);
        assert!((q.utilization() - 0.4).abs() < 1e-12);
        assert!((q.mean_response_time() - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_waiting_time() - 0.4 / 3.0).abs() < 1e-12);
        assert!((q.mean_in_system() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = MM1::new(1.5, 4.0);
        // L = λ·W
        assert!((q.mean_in_system() - q.arrival_rate() * q.mean_response_time()).abs() < 1e-12);
    }

    #[test]
    fn response_is_wait_plus_service() {
        let q = MM1::new(1.0, 2.5);
        assert!(
            (q.mean_response_time() - (q.mean_waiting_time() + 1.0 / q.service_rate())).abs()
                < 1e-12
        );
    }

    #[test]
    fn unstable_queue_returns_infinity() {
        let q = MM1::new(5.0, 2.0);
        assert!(!q.is_stable());
        assert_eq!(q.mean_response_time(), f64::INFINITY);
        assert_eq!(q.mean_waiting_time(), f64::INFINITY);
        assert_eq!(q.mean_in_system(), f64::INFINITY);
        assert_eq!(q.prob_in_system(3), 0.0);
        assert_eq!(q.prob_response_exceeds(1.0), 1.0);
    }

    #[test]
    fn boundary_rate_is_unstable() {
        let q = MM1::new(2.0, 2.0);
        assert!(!q.is_stable());
    }

    #[test]
    fn response_time_diverges_cleanly_toward_the_stability_boundary() {
        // ρ = 1 − 10⁻ᵏ sweep: every metric stays finite, positive and
        // strictly increasing right up to the boundary, then snaps to the
        // documented infeasible signal (+∞, never NaN, never negative) at
        // and beyond it. The allocator leans on this: an unstable branch
        // must read as "zero utility", not as poisoned arithmetic.
        let service = 2.0;
        let mut last_response = 0.0;
        let mut last_backlog = 0.0;
        for k in 1..=14 {
            let rho = 1.0 - 10f64.powi(-k);
            let q = MM1::new(rho * service, service);
            assert!(q.is_stable(), "rho={rho} must still be stable");
            let r = q.mean_response_time();
            let l = q.mean_in_system();
            assert!(r.is_finite() && r > 0.0, "rho={rho}: response {r}");
            assert!(l.is_finite() && l > 0.0, "rho={rho}: backlog {l}");
            assert!(r > last_response, "response must increase toward the boundary");
            assert!(l > last_backlog, "backlog must increase toward the boundary");
            assert!(q.mean_waiting_time() < r, "waiting must stay below response");
            last_response = r;
            last_backlog = l;
        }
        for over in [1.0, 1.0 + 1e-12, 1.5, 1e6] {
            let q = MM1::new(over * service, service);
            assert!(!q.is_stable(), "rho={over} must be infeasible");
            for metric in [q.mean_response_time(), q.mean_waiting_time(), q.mean_in_system()] {
                assert_eq!(metric, f64::INFINITY, "rho={over}: infeasible must be a clean +∞");
            }
        }
    }

    #[test]
    fn zero_arrivals_mean_pure_service() {
        let q = MM1::new(0.0, 2.0);
        assert!((q.mean_response_time() - 0.5).abs() < 1e-12);
        assert_eq!(q.mean_waiting_time(), 0.0);
        assert_eq!(q.prob_in_system(0), 1.0);
    }

    #[test]
    fn tail_probability_decays() {
        let q = MM1::new(1.0, 2.0);
        assert_eq!(q.prob_response_exceeds(0.0), 1.0);
        assert!(q.prob_response_exceeds(1.0) > q.prob_response_exceeds(2.0));
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn rejects_zero_service_rate() {
        let _ = MM1::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be non-negative")]
    fn rejects_negative_arrival_rate() {
        let _ = MM1::new(-1.0, 1.0);
    }

    proptest! {
        #[test]
        fn state_probabilities_sum_to_one(arrival in 0.01f64..4.9, service in 5.0f64..10.0) {
            let q = MM1::new(arrival, service);
            let total: f64 = (0..2000).map(|n| q.prob_in_system(n)).sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "sum was {total}");
        }

        #[test]
        fn response_time_decreases_with_service_rate(
            arrival in 0.1f64..2.0,
            service in 2.1f64..8.0,
            bump in 0.1f64..2.0,
        ) {
            let slow = MM1::new(arrival, service);
            let fast = MM1::new(arrival, service + bump);
            prop_assert!(fast.mean_response_time() < slow.mean_response_time());
        }

        #[test]
        fn expected_in_system_matches_distribution_mean(
            arrival in 0.1f64..3.0,
            service in 3.5f64..9.0,
        ) {
            let q = MM1::new(arrival, service);
            let mean: f64 = (0..4000).map(|n| n as f64 * q.prob_in_system(n)).sum();
            prop_assert!((mean - q.mean_in_system()).abs() < 1e-4);
        }
    }
}
