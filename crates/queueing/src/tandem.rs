//! Tandem composition of the processing and communication stages.
//!
//! A request first occupies the processing queue, then the communication
//! queue of the same server (the output of an M/M/1 queue is Poisson by
//! Burke's theorem, so the second stage is again M/M/1). The paper assumes
//! the two stage response times are independent and **additive** —
//! pipelining makes the concatenated-service alternative pessimistic — and
//! averages over the dispersion vector, giving Eq. (1):
//!
//! ```text
//! R_i = Σ_j α_{ij} · ( 1/(μ^p_{ij} − α_{ij}λ_i) + 1/(μ^c_{ij} − α_{ij}λ_i) )
//! ```

use crate::MM1;

/// Mean response time of one request through the two pipelined stages of a
/// single server: the sum of the two M/M/1 sojourn times. `∞` when either
/// stage is unstable.
pub fn stage_response(processing: MM1, communication: MM1) -> f64 {
    processing.mean_response_time() + communication.mean_response_time()
}

/// The paper's Eq. (1): mean response time of a client whose traffic is
/// dispersed over several servers, given per-server `(α, t)` pairs where
/// `t` is the stage response on that server.
///
/// Entries with `α = 0` are ignored (their `t` may be `∞`). Returns `∞`
/// when any positive-α entry is `∞`, or when the vector is empty.
///
/// # Panics
///
/// Panics if any `α` is outside `[0,1]` or NaN.
pub fn dispersed_response(terms: &[(f64, f64)]) -> f64 {
    if terms.is_empty() {
        return f64::INFINITY;
    }
    let mut r = 0.0;
    for &(alpha, t) in terms {
        assert!(
            !alpha.is_nan() && (0.0..=1.0).contains(&alpha),
            "alpha must lie in [0,1], got {alpha}"
        );
        if alpha == 0.0 {
            continue;
        }
        if !t.is_finite() {
            return f64::INFINITY;
        }
        r += alpha * t;
    }
    r
}

/// End-to-end mean response of a client on one server, from raw shares:
/// convenience wrapper building both GPS stage queues and composing them.
///
/// * `arrival` — the sub-stream rate `α·λ` routed to this server;
/// * `(share, capacity, exec_time)` per stage.
///
/// # Panics
///
/// Propagates the panics of [`crate::gps::client_queue`] for out-of-domain
/// arguments. Zero shares yield `∞` instead of panicking, since "no
/// capacity" is a legitimate transient solver state.
pub fn server_response(
    arrival: f64,
    processing: (f64, f64, f64),
    communication: (f64, f64, f64),
) -> f64 {
    let (phi_p, cap_p, exec_p) = processing;
    let (phi_c, cap_c, exec_c) = communication;
    if phi_p == 0.0 || phi_c == 0.0 {
        return f64::INFINITY;
    }
    let qp = crate::gps::client_queue(arrival, phi_p, cap_p, exec_p);
    let qc = crate::gps::client_queue(arrival, phi_c, cap_c, exec_c);
    stage_response(qp, qc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stage_response_adds_sojourns() {
        let p = MM1::new(1.0, 3.0);
        let c = MM1::new(1.0, 2.0);
        assert!((stage_response(p, c) - (0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn unstable_stage_poisons_the_tandem() {
        let p = MM1::new(1.0, 3.0);
        let c = MM1::new(3.0, 2.0);
        assert_eq!(stage_response(p, c), f64::INFINITY);
    }

    #[test]
    fn dispersed_response_weights_by_alpha() {
        let r = dispersed_response(&[(0.5, 1.0), (0.5, 3.0)]);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_alpha_entries_are_ignored_even_if_infinite() {
        let r = dispersed_response(&[(1.0, 2.0), (0.0, f64::INFINITY)]);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn positive_alpha_infinite_term_dominates() {
        assert_eq!(dispersed_response(&[(0.9, 1.0), (0.1, f64::INFINITY)]), f64::INFINITY);
        assert_eq!(dispersed_response(&[]), f64::INFINITY);
    }

    #[test]
    fn server_response_matches_manual_composition() {
        // arrival 1, processing: 0.5 share of cap 4, exec 0.5 → μ=4
        // communication: 0.5 share of cap 2, exec 0.25 → μ=4
        let r = server_response(1.0, (0.5, 4.0, 0.5), (0.5, 2.0, 0.25));
        assert!((r - (1.0 / 3.0 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_share_gives_infinite_response() {
        assert_eq!(server_response(1.0, (0.0, 4.0, 0.5), (0.5, 2.0, 0.25)), f64::INFINITY);
        assert_eq!(server_response(1.0, (0.5, 4.0, 0.5), (0.0, 2.0, 0.25)), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn dispersed_response_is_monotone_in_terms(
            alphas in proptest::collection::vec(0.01f64..1.0, 2..6),
            times in proptest::collection::vec(0.01f64..10.0, 6),
        ) {
            let n = alphas.len();
            let total: f64 = alphas.iter().sum();
            let alphas: Vec<f64> = alphas.iter().map(|a| a / total).collect();
            let base: Vec<(f64, f64)> =
                alphas.iter().zip(&times).map(|(&a, &t)| (a, t)).collect();
            let mut worse = base.clone();
            worse[n - 1].1 += 1.0;
            prop_assert!(dispersed_response(&worse) > dispersed_response(&base));
        }

        #[test]
        fn more_share_never_hurts(
            arrival in 0.05f64..1.5,
            phi in 0.3f64..0.9,
            extra in 0.01f64..0.1,
        ) {
            let base = server_response(arrival, (phi, 4.0, 0.5), (phi, 4.0, 0.5));
            let better = server_response(arrival, (phi + extra, 4.0, 0.5), (phi + extra, 4.0, 0.5));
            prop_assert!(better <= base);
        }
    }
}
