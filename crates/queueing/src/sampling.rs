//! Inverse-CDF sampling primitives for the stochastic processes of the
//! model, kept free of any RNG dependency: callers supply uniforms in
//! `(0, 1]` (e.g. from `rand`), these functions turn them into samples.
//!
//! The discrete-event simulator drives Poisson arrivals and exponential
//! service times exclusively through this module so that its distributions
//! provably match the analytic model.

/// Transforms a uniform sample `u ∈ (0, 1]` into an `Exp(rate)` sample via
/// the inverse CDF: `−ln(u)/rate`.
///
/// # Panics
///
/// Panics if `u ∉ (0, 1]` or `rate <= 0`.
pub fn exponential(u: f64, rate: f64) -> f64 {
    assert!(u > 0.0 && u <= 1.0, "uniform sample must lie in (0,1], got {u}");
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive and finite, got {rate}");
    -u.ln() / rate
}

/// Inter-arrival time of a Poisson process of rate `rate`: an alias of
/// [`exponential`] named for call-site clarity.
///
/// # Panics
///
/// Same as [`exponential`].
pub fn poisson_interarrival(u: f64, rate: f64) -> f64 {
    exponential(u, rate)
}

/// Routes a request using a uniform sample `u ∈ [0, 1)` and a dispersion
/// vector: returns the index of the chosen branch, or `None` when `u`
/// falls past the cumulative sum (dropped traffic for `Σα < 1`).
///
/// # Panics
///
/// Panics if `u ∉ [0, 1)` or any probability is outside `[0, 1]`.
pub fn route(u: f64, probs: &[f64]) -> Option<usize> {
    assert!((0.0..1.0).contains(&u), "uniform sample must lie in [0,1), got {u}");
    let mut acc = 0.0;
    for (idx, &p) in probs.iter().enumerate() {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "routing probability must lie in [0,1], got {p}"
        );
        acc += p;
        if u < acc {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exponential_hits_known_quantiles() {
        // Median of Exp(1) is ln 2: u = 0.5 → −ln(0.5) = ln 2.
        assert!((exponential(0.5, 1.0) - std::f64::consts::LN_2).abs() < 1e-12);
        // u = 1 maps to zero (the infimum of the support).
        assert_eq!(exponential(1.0, 3.0), 0.0);
    }

    #[test]
    fn exponential_scales_inversely_with_rate() {
        let slow = exponential(0.3, 1.0);
        let fast = exponential(0.3, 2.0);
        assert!((slow / fast - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "uniform sample")]
    fn exponential_rejects_zero_uniform() {
        let _ = exponential(0.0, 1.0);
    }

    #[test]
    fn route_partitions_the_unit_interval() {
        let probs = [0.25, 0.25, 0.5];
        assert_eq!(route(0.0, &probs), Some(0));
        assert_eq!(route(0.24, &probs), Some(0));
        assert_eq!(route(0.25, &probs), Some(1));
        assert_eq!(route(0.49, &probs), Some(1));
        assert_eq!(route(0.5, &probs), Some(2));
        assert_eq!(route(0.999, &probs), Some(2));
    }

    #[test]
    fn route_drops_past_cumulative_mass() {
        let probs = [0.3, 0.3];
        assert_eq!(route(0.61, &probs), None);
        assert_eq!(route(0.59, &probs), Some(1));
    }

    #[test]
    fn route_with_empty_probs_always_drops() {
        assert_eq!(route(0.5, &[]), None);
    }

    proptest! {
        #[test]
        fn exponential_is_positive_and_finite(u in 1e-12f64..=1.0, rate in 0.01f64..100.0) {
            let x = exponential(u, rate);
            prop_assert!(x.is_finite() && x >= 0.0);
        }

        #[test]
        fn empirical_mean_tracks_rate(rate in 0.5f64..4.0) {
            // Deterministic uniform grid → Riemann sum of the inverse CDF,
            // which converges to the true mean 1/rate.
            let n = 20_000;
            let mean: f64 = (1..=n)
                .map(|i| exponential(i as f64 / n as f64, rate))
                .sum::<f64>()
                / n as f64;
            prop_assert!((mean - 1.0 / rate).abs() < 0.01 / rate);
        }

        #[test]
        fn route_frequencies_match_probabilities(p0 in 0.1f64..0.8) {
            let probs = [p0, 1.0 - p0];
            let n = 10_000;
            let hits0 = (0..n)
                .filter(|&i| route(i as f64 / n as f64, &probs) == Some(0))
                .count();
            prop_assert!((hits0 as f64 / n as f64 - p0).abs() < 1e-3);
        }
    }
}
