//! Streaming scenario generation: the same RNG draws as [`generate`],
//! yielded in memory-budgeted chunks.
//!
//! [`crate::generate`] materializes the whole client population before
//! anything downstream can run. At the E5i scale (a million clients)
//! that staging order is the bottleneck: everything the solver reads
//! about a client lives in the flat arrays of
//! [`cloudalloc_model::CompiledSystem`], and those arrays can be filled
//! incrementally.
//!
//! [`ScenarioStream`] splits generation in two. Construction draws the
//! *skeleton* — hardware catalog, SLA catalog, clusters, servers — which
//! is cheap (`O(servers)`) and consumes exactly the same prefix of the
//! seeded RNG stream as `generate()`. Clients are then drawn on demand,
//! in id order, either one chunk at a time ([`ScenarioStream::next_chunk`])
//! or straight into a finished system ([`ScenarioStream::into_system`]).
//! `generate()` itself is now a thin wrapper over `into_system`, so there
//! is a single client-drawing code path and streamed output is
//! bit-identical to batch output *by construction* (the proptests below
//! still assert it).
//!
//! [`ScenarioStream::assemble`] is the end-to-end scale path: it sizes
//! chunks from a [`MemoryBudget`], lowers each chunk into
//! [`LoweredClients`] as it is drawn, and returns a [`StreamedScenario`]
//! ready for [`cloudalloc_model::compile_streamed`] — peak transient
//! staging is one budget-sized chunk regardless of the population.
//!
//! [`generate`]: crate::generate

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudalloc_model::{
    Client, ClientId, CloudSystem, LoweredClients, MemoryBudget, UtilityClassId,
};
use cloudalloc_telemetry as telemetry;

use crate::config::ScenarioConfig;
use crate::generate::{build_skeleton, sample, UtilityDraw};

/// A partially-drawn scenario: the skeleton is complete, clients stream
/// out in id order from the same seeded RNG as [`crate::generate`].
pub struct ScenarioStream {
    rng: StdRng,
    config: ScenarioConfig,
    system: CloudSystem,
    utility_draws: Vec<UtilityDraw>,
    next_client: usize,
}

impl ScenarioStream {
    /// Draws the scenario skeleton (catalogs, clusters, servers) for
    /// `config` under `seed`, leaving the RNG positioned exactly where
    /// `generate()` starts drawing clients.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ScenarioConfig::validate`].
    pub fn new(config: ScenarioConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let (system, utility_draws) = build_skeleton(&mut rng, &config);
        Self { rng, config, system, utility_draws, next_client: 0 }
    }

    /// The client-free skeleton (catalogs, clusters, servers).
    pub fn skeleton(&self) -> &CloudSystem {
        &self.system
    }

    /// Total clients this stream will yield.
    pub fn num_clients(&self) -> usize {
        self.config.num_clients
    }

    /// Clients not yet drawn.
    pub fn remaining(&self) -> usize {
        self.config.num_clients - self.next_client
    }

    /// Draws the next client — the exact draw sequence of `generate()`'s
    /// client loop.
    fn draw_client(&mut self) -> Client {
        let i = self.next_client;
        let class_idx = self.rng.gen_range(0..self.config.num_utility_classes);
        debug_assert_eq!(
            &self.system.utility_classes()[class_idx].function,
            &self.utility_draws[class_idx].function,
            "utility draw bookkeeping out of sync"
        );
        let (exec_processing, exec_communication) = {
            let draw = &self.utility_draws[class_idx];
            (draw.exec_processing, draw.exec_communication)
        };
        let rate = sample(&mut self.rng, self.config.arrival_rate);
        self.next_client += 1;
        Client::new(
            ClientId(i),
            UtilityClassId(class_idx),
            rate,
            rate * self.config.agreed_rate_factor,
            exec_processing,
            exec_communication,
            sample(&mut self.rng, self.config.client_storage),
        )
    }

    /// Draws up to `max_clients` further clients into `buf` (cleared
    /// first), reusing its allocation across calls.
    pub fn next_chunk_into(&mut self, max_clients: usize, buf: &mut Vec<Client>) {
        buf.clear();
        let n = max_clients.min(self.remaining());
        buf.reserve(n);
        for _ in 0..n {
            let client = self.draw_client();
            buf.push(client);
        }
    }

    /// Draws up to `max_clients` further clients. Empty once the stream
    /// is exhausted.
    pub fn next_chunk(&mut self, max_clients: usize) -> Vec<Client> {
        let mut buf = Vec::new();
        self.next_chunk_into(max_clients, &mut buf);
        buf
    }

    /// Drains the stream into a complete [`CloudSystem`] — what
    /// [`crate::generate`] returns.
    pub fn into_system(mut self) -> CloudSystem {
        self.system.reserve_clients(self.remaining());
        while self.remaining() > 0 {
            let client = self.draw_client();
            self.system.add_client(client);
        }
        self.system
    }

    /// Drains the stream chunk-by-chunk under `budget`, lowering each
    /// chunk into the compiled client arrays as it is drawn. The only
    /// transient staging is one budget-sized chunk buffer; the resident
    /// system and arrays are reserved exact-size up front.
    ///
    /// # Panics
    ///
    /// Panics when clients were already drawn from this stream (the
    /// lowering needs the full id-ordered population).
    pub fn assemble(mut self, budget: MemoryBudget) -> StreamedScenario {
        assert_eq!(self.next_client, 0, "assemble requires an unconsumed stream");
        let _span = telemetry::span!("stream.assemble");
        let chunk_cap = budget.chunk_clients();
        let mut clients =
            LoweredClients::new(self.config.num_clients, self.system.server_classes().len());
        self.system.reserve_clients(self.config.num_clients);
        let mut buf = Vec::new();
        let mut chunks = 0;
        let mut peak_chunk_clients = 0;
        while self.remaining() > 0 {
            self.next_chunk_into(chunk_cap, &mut buf);
            chunks += 1;
            peak_chunk_clients = peak_chunk_clients.max(buf.len());
            // Feed the flight recorder's memory timeline with the actual
            // in-flight staging, then mark it drained after the lowering.
            telemetry::record_staging((buf.len() * MemoryBudget::STAGING_BYTES_PER_CLIENT) as u64);
            clients.push_chunk(self.system.server_classes(), self.system.utility_classes(), &buf);
            for client in buf.drain(..) {
                self.system.add_client(client);
            }
            telemetry::record_staging(0);
        }
        telemetry::Event::new("stream.assemble")
            .field_u64("clients", self.config.num_clients as u64)
            .field_u64("chunks", chunks as u64)
            .field_u64(
                "peak_staging_bytes",
                (peak_chunk_clients * MemoryBudget::STAGING_BYTES_PER_CLIENT) as u64,
            )
            .field_u64("budget_bytes", budget.bytes() as u64)
            .emit();
        StreamedScenario { system: self.system, clients, chunks, peak_chunk_clients, budget }
    }
}

/// A scenario drawn and lowered under a [`MemoryBudget`]: feed `system`
/// and `clients` to [`cloudalloc_model::compile_streamed`].
pub struct StreamedScenario {
    /// The complete frontend system (identical to `generate()` output).
    pub system: CloudSystem,
    /// The fully-populated client-side lowering.
    pub clients: LoweredClients,
    /// Number of chunks the stream was drawn in.
    pub chunks: usize,
    /// Largest chunk staged at once — the budget invariant is
    /// `peak_chunk_clients × STAGING_BYTES_PER_CLIENT ≤ budget`.
    pub peak_chunk_clients: usize,
    /// The budget the stream was drawn under.
    pub budget: MemoryBudget,
}

impl StreamedScenario {
    /// Peak transient staging the drain held at once, in bytes.
    pub fn peak_staging_bytes(&self) -> usize {
        self.peak_chunk_clients * MemoryBudget::STAGING_BYTES_PER_CLIENT
    }

    /// True when the drain respected its memory budget.
    pub fn within_budget(&self) -> bool {
        self.peak_staging_bytes() <= self.budget.bytes() || self.peak_chunk_clients <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use cloudalloc_model::{compile_streamed, CompiledSystem};
    use proptest::prelude::*;

    #[test]
    fn skeleton_matches_generate_prefix() {
        let config = ScenarioConfig::paper(30);
        let stream = ScenarioStream::new(config.clone(), 11);
        let batch = generate(&config, 11);
        assert_eq!(stream.skeleton().server_classes(), batch.server_classes());
        assert_eq!(stream.skeleton().num_servers(), batch.num_servers());
        assert_eq!(stream.skeleton().num_clients(), 0);
        assert_eq!(stream.remaining(), 30);
    }

    #[test]
    fn into_system_equals_generate() {
        let config = ScenarioConfig::paper(50);
        assert_eq!(ScenarioStream::new(config.clone(), 3).into_system(), generate(&config, 3));
    }

    #[test]
    fn assembled_lowering_matches_batch_compile() {
        let config = ScenarioConfig::paper(120);
        let batch = generate(&config, 42);
        let budget = MemoryBudget::from_bytes(7 * MemoryBudget::STAGING_BYTES_PER_CLIENT);
        let scenario = ScenarioStream::new(config, 42).assemble(budget);
        assert_eq!(scenario.system, batch);
        assert_eq!(scenario.peak_chunk_clients, 7);
        assert_eq!(scenario.chunks, 120usize.div_ceil(7));
        assert!(scenario.within_budget());

        let reference = CompiledSystem::new(&batch);
        let streamed = compile_streamed(&scenario.system, scenario.clients);
        for i in 0..batch.num_clients() {
            let id = ClientId(i);
            assert_eq!(streamed.ref_weight(id).to_bits(), reference.ref_weight(id).to_bits());
            assert_eq!(streamed.rate_agreed(id).to_bits(), reference.rate_agreed(id).to_bits());
            for ci in 0..batch.server_classes().len() {
                assert_eq!(streamed.m_p(ci, id).to_bits(), reference.m_p(ci, id).to_bits());
                assert_eq!(streamed.m_c(ci, id).to_bits(), reference.m_c(ci, id).to_bits());
            }
        }
    }

    #[test]
    fn hundred_thousand_client_drain_stays_under_budget() {
        // The satellite memory-budget check: a 100k-client scale scenario
        // drains under a 1 MiB staging budget in many small chunks, and
        // the lowering is complete at the end.
        let config = ScenarioConfig::scale(100_000);
        let budget = MemoryBudget::from_mib(1);
        let scenario = ScenarioStream::new(config, 1).assemble(budget);
        assert!(scenario.within_budget(), "staging exceeded the budget");
        assert_eq!(scenario.system.num_clients(), 100_000);
        assert!(scenario.clients.is_complete());
        assert_eq!(scenario.chunks, 100_000usize.div_ceil(budget.chunk_clients()));
        assert!(scenario.chunks > 1, "budget should force multiple chunks");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn streamed_clients_are_bit_identical_to_batch(
            seed in any::<u64>(),
            n in 1usize..60,
            chunk in 1usize..17,
        ) {
            let config = ScenarioConfig::small(n);
            let batch = generate(&config, seed);
            let mut stream = ScenarioStream::new(config, seed);
            let mut streamed = Vec::new();
            while stream.remaining() > 0 {
                streamed.extend(stream.next_chunk(chunk));
            }
            prop_assert_eq!(streamed.len(), n);
            for (s, b) in streamed.iter().zip(batch.clients()) {
                prop_assert_eq!(s, b);
                prop_assert_eq!(s.rate_predicted.to_bits(), b.rate_predicted.to_bits());
                prop_assert_eq!(s.storage.to_bits(), b.storage.to_bits());
            }
        }

        #[test]
        fn assemble_equals_generate_for_any_budget(
            seed in any::<u64>(),
            n in 1usize..40,
            chunk_clients in 1usize..9,
        ) {
            let config = ScenarioConfig::small(n);
            let budget = MemoryBudget::from_bytes(
                chunk_clients * MemoryBudget::STAGING_BYTES_PER_CLIENT,
            );
            let scenario = ScenarioStream::new(config.clone(), seed).assemble(budget);
            prop_assert_eq!(scenario.system, generate(&config, seed));
            prop_assert!(scenario.clients.is_complete());
            prop_assert!(scenario.peak_chunk_clients <= chunk_clients);
        }
    }
}
