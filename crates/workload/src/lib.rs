//! Scenario generation for the cloud profit-allocation experiments.
//!
//! The paper evaluates its heuristic on synthetic systems drawn from
//! uniform distributions (§VI): 5 clusters, 10 server classes, 5 utility
//! classes, per-class capacities in `U(2,6)`, per-client arrival rates in
//! `U(0.5,4.5)`, and so on. This crate reproduces those distributions with
//! seeded RNG so every experiment is exactly repeatable, and adds presets
//! and sweeps used by the benchmark harness.
//!
//! # Example
//!
//! ```
//! use cloudalloc_workload::{ScenarioConfig, generate};
//!
//! let config = ScenarioConfig::paper(60);
//! let system = generate(&config, 42);
//! assert_eq!(system.num_clients(), 60);
//! assert_eq!(system.num_clusters(), 5);
//! // Same seed, same scenario.
//! assert_eq!(generate(&config, 42), system);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;

mod config;
mod faults;
mod generate;
mod stream;
mod sweep;
mod trace;

pub use config::{Range, ScenarioConfig, UtilityShape};
pub use faults::{FaultEvent, FaultPlan, FaultPlanConfig, FaultRecord};
pub use generate::generate;
pub use stream::{ScenarioStream, StreamedScenario};
pub use sweep::{paper_client_counts, scenario_seeds, Sweep};
pub use trace::DiurnalTrace;
