//! Parameter sweeps: the client-count axis of the paper's figures and
//! deterministic seed derivation for multi-scenario averaging.

use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;

/// Client counts on the x-axis of the paper's Figures 4 and 5.
pub fn paper_client_counts() -> Vec<usize> {
    vec![20, 40, 60, 80, 100, 150, 200]
}

/// Derives the per-scenario seeds for one sweep point, spreading a base
/// seed so different points and repetitions never share RNG streams.
///
/// The paper averages "at least 20 (5 for 200 clients) different
/// scenarios" per point; callers pick `count` accordingly.
pub fn scenario_seeds(base: u64, num_clients: usize, count: usize) -> Vec<u64> {
    (0..count as u64)
        // SplitMix-style spreading keeps seeds well separated even for
        // adjacent (base, n, rep) triples.
        .map(|rep| {
            let mut z = base
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(num_clients as u64 + 1))
                .wrapping_add(rep.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// A sweep over client counts with repeated scenarios per point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// Base configuration; `num_clients` is overridden per point.
    pub config: ScenarioConfig,
    /// Client counts to visit.
    pub client_counts: Vec<usize>,
    /// Scenarios (seeds) per point.
    pub scenarios_per_point: usize,
    /// Base seed for [`scenario_seeds`].
    pub base_seed: u64,
}

impl Sweep {
    /// The paper's Figure-4/5 sweep: §VI config, client counts
    /// {20,...,200}, `scenarios_per_point` seeds per point.
    pub fn paper(scenarios_per_point: usize, base_seed: u64) -> Self {
        Self {
            config: ScenarioConfig::paper(0),
            client_counts: paper_client_counts(),
            scenarios_per_point,
            base_seed,
        }
    }

    /// Iterates `(num_clients, seed)` pairs in sweep order.
    pub fn points(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.client_counts.iter().flat_map(move |&n| {
            scenario_seeds(self.base_seed, n, self.scenarios_per_point)
                .into_iter()
                .map(move |seed| (n, seed))
        })
    }

    /// The configuration for one sweep point.
    pub fn config_for(&self, num_clients: usize) -> ScenarioConfig {
        ScenarioConfig { num_clients, ..self.config.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_counts_match_figure_axis() {
        assert_eq!(paper_client_counts(), vec![20, 40, 60, 80, 100, 150, 200]);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = scenario_seeds(1, 100, 20);
        let b = scenario_seeds(1, 100, 20);
        assert_eq!(a, b);
        let unique: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 20);
        // Different points do not share seeds.
        let c = scenario_seeds(1, 150, 20);
        assert!(a.iter().all(|s| !c.contains(s)));
        // Different bases do not share seeds.
        let d = scenario_seeds(2, 100, 20);
        assert!(a.iter().all(|s| !d.contains(s)));
    }

    #[test]
    fn sweep_visits_every_point_times_every_seed() {
        let sweep = Sweep::paper(3, 42);
        let points: Vec<(usize, u64)> = sweep.points().collect();
        assert_eq!(points.len(), 7 * 3);
        assert_eq!(points[0].0, 20);
        assert_eq!(points.last().unwrap().0, 200);
    }

    #[test]
    fn config_for_overrides_only_client_count() {
        let sweep = Sweep::paper(1, 0);
        let c = sweep.config_for(80);
        assert_eq!(c.num_clients, 80);
        assert_eq!(c.num_clusters, sweep.config.num_clusters);
    }
}
