//! A named catalog of hardware generations and SLA templates, for
//! hand-built scenarios that should read like infrastructure descriptions
//! rather than number soup. Capacities are in the paper's normalized
//! units (a mid-range 2010 server ≈ 4 processing units).

use cloudalloc_model::{ServerClassId, SystemBuilder, UtilityClassId, UtilityFunction};
use serde::{Deserialize, Serialize};

/// A named server-hardware template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerTemplate {
    /// Catalog name.
    pub name: &'static str,
    /// Processing capacity `C^p`.
    pub cap_processing: f64,
    /// Storage capacity `C^m`.
    pub cap_storage: f64,
    /// Communication capacity `C^c`.
    pub cap_communication: f64,
    /// Constant operation cost `P0`.
    pub cost_fixed: f64,
    /// Utilization-linear cost `P1`.
    pub cost_per_utilization: f64,
}

impl ServerTemplate {
    /// Registers this template with a builder, returning the class id.
    pub fn register(&self, builder: &mut SystemBuilder) -> ServerClassId {
        builder.server_class(
            self.cap_processing,
            self.cap_storage,
            self.cap_communication,
            self.cost_fixed,
            self.cost_per_utilization,
        )
    }
}

/// A named SLA template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaTemplate {
    /// Catalog name.
    pub name: &'static str,
    /// The utility function.
    pub utility: UtilityFunction,
}

impl SlaTemplate {
    /// Registers this template with a builder, returning the class id.
    pub fn register(&self, builder: &mut SystemBuilder) -> UtilityClassId {
        builder.utility_class(self.utility.clone())
    }
}

/// Previous-generation commodity machine: cheap, slow, power-hungry per
/// unit of work.
pub fn legacy_server() -> ServerTemplate {
    ServerTemplate {
        name: "legacy",
        cap_processing: 2.5,
        cap_storage: 3.0,
        cap_communication: 2.5,
        cost_fixed: 1.0,
        cost_per_utilization: 1.4,
    }
}

/// Current-generation balanced machine.
pub fn standard_server() -> ServerTemplate {
    ServerTemplate {
        name: "standard",
        cap_processing: 4.0,
        cap_storage: 4.0,
        cap_communication: 4.0,
        cost_fixed: 1.6,
        cost_per_utilization: 1.2,
    }
}

/// High-density compute machine: the best performance per watt, highest
/// idle draw.
pub fn highend_server() -> ServerTemplate {
    ServerTemplate {
        name: "highend",
        cap_processing: 6.0,
        cap_storage: 5.0,
        cap_communication: 6.0,
        cost_fixed: 2.4,
        cost_per_utilization: 1.0,
    }
}

/// Storage-heavy machine for data-bound tenants.
pub fn storage_server() -> ServerTemplate {
    ServerTemplate {
        name: "storage",
        cap_processing: 3.0,
        cap_storage: 6.0,
        cap_communication: 3.5,
        cost_fixed: 1.8,
        cost_per_utilization: 1.1,
    }
}

/// Interactive premium SLA: pays a lot for sub-half-second responses,
/// collapses quickly beyond.
pub fn interactive_gold() -> SlaTemplate {
    SlaTemplate {
        name: "interactive-gold",
        utility: UtilityFunction::step(vec![(0.5, 3.0), (1.0, 1.2), (2.0, 0.3)]),
    }
}

/// Interactive standard SLA: linear decay, tolerant to ~3 time units.
pub fn interactive_silver() -> SlaTemplate {
    SlaTemplate { name: "interactive-silver", utility: UtilityFunction::linear(1.8, 0.6) }
}

/// Batch SLA: low price, very tolerant (smooth exponential decay).
pub fn batch() -> SlaTemplate {
    SlaTemplate { name: "batch", utility: UtilityFunction::exponential(0.8, 6.0) }
}

/// Every hardware template in the catalog.
pub fn all_servers() -> Vec<ServerTemplate> {
    vec![legacy_server(), standard_server(), highend_server(), storage_server()]
}

/// Every SLA template in the catalog.
pub fn all_slas() -> Vec<SlaTemplate> {
    vec![interactive_gold(), interactive_silver(), batch()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_model::ClientId;

    #[test]
    fn templates_register_and_build() {
        let mut b = SystemBuilder::new();
        let std_class = standard_server().register(&mut b);
        let gold = interactive_gold().register(&mut b);
        let k = b.cluster();
        b.servers(k, std_class, 3);
        b.client(gold, 1.0, 0.5, 0.4, 1.0);
        let system = b.build();
        assert_eq!(system.num_servers(), 3);
        assert_eq!(system.class_of(cloudalloc_model::ServerId(0)).cap_processing, 4.0);
        assert_eq!(system.utility_of(ClientId(0)).max_value(), 3.0);
    }

    #[test]
    fn catalog_is_internally_consistent() {
        for t in all_servers() {
            assert!(t.cap_processing > 0.0 && t.cost_fixed > 0.0, "{}", t.name);
        }
        // Newer generations are more efficient at full utilization:
        // cost per unit of fully-utilized capacity decreases.
        let eff = |t: &ServerTemplate| (t.cost_fixed + t.cost_per_utilization) / t.cap_processing;
        assert!(eff(&highend_server()) < eff(&standard_server()));
        assert!(eff(&standard_server()) < eff(&legacy_server()));
        for sla in all_slas() {
            assert!(sla.utility.max_value() > 0.0, "{}", sla.name);
        }
        // Gold pays more than silver pays more than batch, at the front.
        assert!(interactive_gold().utility.max_value() > interactive_silver().utility.max_value());
        assert!(interactive_silver().utility.max_value() > batch().utility.max_value());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = all_servers().iter().map(|t| t.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
