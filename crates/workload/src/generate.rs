//! Drawing a concrete [`CloudSystem`] from a [`ScenarioConfig`].

use rand::rngs::StdRng;
use rand::Rng;

use cloudalloc_model::{
    BackgroundLoad, CloudSystem, Cluster, ClusterId, Server, ServerClass, ServerClassId,
    UtilityClass, UtilityClassId, UtilityFunction,
};

use crate::config::{ScenarioConfig, UtilityShape};

/// Per-utility-class draws shared by all clients of the class.
pub(crate) struct UtilityDraw {
    pub(crate) function: UtilityFunction,
    pub(crate) exec_processing: f64,
    pub(crate) exec_communication: f64,
}

pub(crate) fn sample(rng: &mut StdRng, range: crate::Range) -> f64 {
    range.sample(rng.gen::<f64>())
}

fn utility_function(rng: &mut StdRng, config: &ScenarioConfig) -> UtilityFunction {
    let intercept = sample(rng, config.utility_intercept);
    let slope = sample(rng, config.utility_slope);
    match config.utility_shape {
        UtilityShape::Linear => UtilityFunction::linear(intercept, slope),
        UtilityShape::Step => {
            // A 3-level staircase under the same linear envelope: the
            // horizon of the linear SLA is split into thirds and each step
            // pays the envelope's value at the *left* edge of the band.
            let horizon = intercept / slope;
            let levels = (1..=3)
                .map(|n| {
                    let t = horizon * n as f64 / 3.0;
                    let left = horizon * (n - 1) as f64 / 3.0;
                    (t, (intercept - slope * left).max(0.0))
                })
                .collect();
            UtilityFunction::step(levels)
        }
        UtilityShape::Exponential => {
            // Match the initial decrease rate of the linear SLA:
            // −dU/dr|0 = intercept/τ = slope ⇒ τ = intercept/slope.
            UtilityFunction::exponential(intercept, intercept / slope)
        }
    }
}

/// Draws the client-free scenario skeleton — hardware catalog, SLA
/// catalog (with its per-class execution-time draws), clusters, and
/// servers — leaving `rng` positioned exactly where the client loop
/// starts drawing. Shared verbatim by [`generate`] and
/// [`crate::ScenarioStream`]; a single code path is what makes streamed
/// and batch generation bit-identical.
pub(crate) fn build_skeleton(
    rng: &mut StdRng,
    config: &ScenarioConfig,
) -> (CloudSystem, Vec<UtilityDraw>) {
    // Hardware catalog.
    let server_classes: Vec<ServerClass> = (0..config.num_server_classes)
        .map(|idx| {
            ServerClass::new(
                ServerClassId(idx),
                sample(rng, config.cap_processing),
                sample(rng, config.cap_storage),
                sample(rng, config.cap_communication),
                sample(rng, config.cost_fixed),
                sample(rng, config.cost_per_utilization),
            )
        })
        .collect();

    // SLA catalog plus the per-class execution-time draws.
    let mut utility_draws = Vec::with_capacity(config.num_utility_classes);
    let utility_classes: Vec<UtilityClass> = (0..config.num_utility_classes)
        .map(|idx| {
            let function = utility_function(rng, config);
            let draw = UtilityDraw {
                function: function.clone(),
                exec_processing: sample(rng, config.exec_time),
                exec_communication: sample(rng, config.exec_time),
            };
            utility_draws.push(draw);
            UtilityClass::new(UtilityClassId(idx), function)
        })
        .collect();

    let mut system = CloudSystem::new(server_classes, utility_classes);

    // Topology: every cluster holds an integer U(lo, hi) count of servers
    // of every class.
    for k in 0..config.num_clusters {
        system.add_cluster(Cluster::new(ClusterId(k)));
    }
    for k in 0..config.num_clusters {
        for class in 0..config.num_server_classes {
            let count = rng.gen_range(
                config.servers_per_class.lo as usize..=config.servers_per_class.hi as usize,
            );
            for _ in 0..count {
                let server = Server::new(ServerClassId(class), ClusterId(k));
                if config.background_fraction > 0.0 && rng.gen::<f64>() < config.background_fraction
                {
                    let storage_cap = system.server_classes()[class].cap_storage;
                    let bg = BackgroundLoad::new(
                        sample(rng, config.background_share),
                        sample(rng, config.background_share),
                        rng.gen::<f64>() * 0.5 * storage_cap,
                    );
                    system.add_server_with_background(server, bg);
                } else {
                    system.add_server(server);
                }
            }
        }
    }

    (system, utility_draws)
}

/// Draws a complete [`CloudSystem`] from `config` using the deterministic
/// RNG stream seeded by `seed`. Same `(config, seed)` → identical system.
///
/// Delegates to [`crate::ScenarioStream`]: batch generation is the
/// streaming generator drained in one go, so the two can never diverge.
///
/// # Panics
///
/// Panics if `config` fails [`ScenarioConfig::validate`].
pub fn generate(config: &ScenarioConfig, seed: u64) -> CloudSystem {
    crate::ScenarioStream::new(config.clone(), seed).into_system()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = ScenarioConfig::paper(40);
        assert_eq!(generate(&config, 7), generate(&config, 7));
        assert_ne!(generate(&config, 7), generate(&config, 8));
    }

    #[test]
    fn paper_config_produces_expected_shape() {
        let config = ScenarioConfig::paper(100);
        let sys = generate(&config, 1);
        assert_eq!(sys.num_clients(), 100);
        assert_eq!(sys.num_clusters(), 5);
        assert_eq!(sys.server_classes().len(), 10);
        assert_eq!(sys.utility_classes().len(), 5);
        // 5 clusters × 10 classes × [2,6] servers each.
        assert!(sys.num_servers() >= 100 && sys.num_servers() <= 300);
    }

    #[test]
    fn drawn_values_respect_ranges() {
        let config = ScenarioConfig::paper(200);
        let sys = generate(&config, 3);
        for sc in sys.server_classes() {
            assert!(config.cap_processing.contains(sc.cap_processing));
            assert!(config.cap_storage.contains(sc.cap_storage));
            assert!(config.cap_communication.contains(sc.cap_communication));
            assert!(config.cost_fixed.contains(sc.cost_fixed));
            assert!(config.cost_per_utilization.contains(sc.cost_per_utilization));
        }
        for c in sys.clients() {
            assert!(config.arrival_rate.contains(c.rate_predicted));
            assert!(config.client_storage.contains(c.storage));
            assert!(config.exec_time.contains(c.exec_processing));
            assert!(config.exec_time.contains(c.exec_communication));
            assert_eq!(c.rate_agreed, c.rate_predicted);
        }
    }

    #[test]
    fn clients_of_one_class_share_exec_times() {
        let sys = generate(&ScenarioConfig::paper(120), 5);
        for a in sys.clients() {
            for b in sys.clients() {
                if a.utility_class == b.utility_class {
                    assert_eq!(a.exec_processing, b.exec_processing);
                    assert_eq!(a.exec_communication, b.exec_communication);
                }
            }
        }
    }

    #[test]
    fn agreed_rate_factor_scales_contract_rates() {
        let mut config = ScenarioConfig::small(10);
        config.agreed_rate_factor = 1.5;
        let sys = generate(&config, 2);
        for c in sys.clients() {
            assert!((c.rate_agreed - 1.5 * c.rate_predicted).abs() < 1e-12);
        }
    }

    #[test]
    fn background_fraction_marks_servers() {
        let mut config = ScenarioConfig::small(5);
        config.background_fraction = 1.0;
        let sys = generate(&config, 9);
        let loaded = sys.all_servers().filter(|s| !sys.background(s.id).is_empty()).count();
        assert_eq!(loaded, sys.num_servers());

        let sys = generate(&ScenarioConfig::small(5), 9);
        assert!(sys.all_servers().all(|s| sys.background(s.id).is_empty()));
    }

    #[test]
    fn step_and_exponential_shapes_generate() {
        for shape in [UtilityShape::Step, UtilityShape::Exponential] {
            let mut config = ScenarioConfig::small(8);
            config.utility_shape = shape;
            let sys = generate(&config, 11);
            for uc in sys.utility_classes() {
                assert!(uc.function.max_value() > 0.0);
                assert!(uc.function.value(1000.0) < uc.function.max_value());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn any_seed_yields_a_consistent_system(seed in any::<u64>(), n in 1usize..40) {
            let sys = generate(&ScenarioConfig::small(n), seed);
            prop_assert_eq!(sys.num_clients(), n);
            // Every server belongs to the cluster that lists it.
            for k in sys.clusters() {
                for &sid in &k.servers {
                    prop_assert_eq!(sys.server(sid).cluster, k.id);
                }
            }
            // Demand and capacity are positive and finite.
            prop_assert!(sys.total_processing_capacity() > 0.0);
            prop_assert!(sys.total_processing_demand() > 0.0);
        }
    }
}
