//! Injectable fault plans: epoch-indexed schedules of server failures,
//! recoveries and arrival-rate spikes.
//!
//! A [`FaultPlan`] is the contract between whatever produces adversity —
//! the simulator's exponential up/down failure process, a recorded
//! production trace, a chaos test's RNG — and the epoch control loop that
//! must survive it. Plans are plain data (serde-serializable, sorted by
//! epoch) so a chaos run can be replayed bit-for-bit from a JSON file.

use cloudalloc_model::{ClientId, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One adversarial event the epoch loop must react to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The server goes down at the start of the epoch. Placements on it
    /// stop serving; the repair path must evict and rescue its residents.
    ServerFail {
        /// The failing server.
        server: ServerId,
    },
    /// The server comes back at the start of the epoch and may be used by
    /// the next planning step. Failing an already-down server or
    /// recovering an up server is a no-op.
    ServerRecover {
        /// The recovering server.
        server: ServerId,
    },
    /// The client's *realized* arrival rate this epoch is multiplied by
    /// `factor` (`> 0`, finite). Spikes are transient: they perturb one
    /// epoch's actuals, not the base rates the predictor learns from.
    RateSpike {
        /// The spiking client.
        client: ClientId,
        /// Multiplier applied to the realized rate (`> 0`).
        factor: f64,
    },
}

/// A fault event pinned to the decision epoch in which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Epoch index (0-based) at whose start the event applies.
    pub epoch: usize,
    /// The event.
    pub event: FaultEvent,
}

/// Tunables for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Per-epoch probability that an up server fails.
    pub fail_probability: f64,
    /// Per-epoch probability that a down server recovers.
    pub recover_probability: f64,
    /// Per-epoch probability that a client's realized rate spikes.
    pub spike_probability: f64,
    /// Spike multipliers are drawn uniformly from this range (`> 0`).
    pub spike_range: (f64, f64),
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            fail_probability: 0.05,
            recover_probability: 0.3,
            spike_probability: 0.05,
            spike_range: (0.5, 2.5),
        }
    }
}

/// An epoch-sorted schedule of [`FaultRecord`]s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultRecord>,
}

impl FaultPlan {
    /// Creates a plan from an arbitrary record list, sorting it by epoch
    /// (stable, so same-epoch events keep their given order — failures
    /// listed before recoveries fire in that order).
    pub fn new(mut events: Vec<FaultRecord>) -> Self {
        events.sort_by_key(|r| r.epoch);
        Self { events }
    }

    /// All records, sorted by epoch.
    pub fn events(&self) -> &[FaultRecord] {
        &self.events
    }

    /// The records firing at the start of `epoch`.
    pub fn events_at(&self, epoch: usize) -> &[FaultRecord] {
        let lo = self.events.partition_point(|r| r.epoch < epoch);
        let hi = self.events.partition_point(|r| r.epoch <= epoch);
        &self.events[lo..hi]
    }

    /// Number of records in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One past the last epoch with a scheduled event (0 for an empty
    /// plan). A replay horizon at least this long sees every event.
    pub fn horizon(&self) -> usize {
        self.events.last().map_or(0, |r| r.epoch + 1)
    }

    /// Checks every record against the system dimensions: ids in range
    /// and spike factors positive and finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending record.
    pub fn validate(&self, num_servers: usize, num_clients: usize) -> Result<(), String> {
        for (i, rec) in self.events.iter().enumerate() {
            match rec.event {
                FaultEvent::ServerFail { server } | FaultEvent::ServerRecover { server } => {
                    if server.index() >= num_servers {
                        return Err(format!(
                            "event {i} (epoch {}): server {server} out of range (system has \
                             {num_servers} servers)",
                            rec.epoch
                        ));
                    }
                }
                FaultEvent::RateSpike { client, factor } => {
                    if client.index() >= num_clients {
                        return Err(format!(
                            "event {i} (epoch {}): client {client} out of range (system has \
                             {num_clients} clients)",
                            rec.epoch
                        ));
                    }
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!(
                            "event {i} (epoch {}): spike factor must be positive and finite, \
                             got {factor}",
                            rec.epoch
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Draws a random plan over `epochs` epochs: every server runs an
    /// independent per-epoch Bernoulli up/down chain and every client
    /// independently spikes. Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or the spike range is
    /// not positive and ordered.
    pub fn random(
        config: &FaultPlanConfig,
        num_servers: usize,
        num_clients: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        for (name, p) in [
            ("fail_probability", config.fail_probability),
            ("recover_probability", config.recover_probability),
            ("spike_probability", config.spike_probability),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1], got {p}");
        }
        let (lo, hi) = config.spike_range;
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi,
            "spike_range must be positive and ordered, got ({lo}, {hi})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut up = vec![true; num_servers];
        let mut events = Vec::new();
        for epoch in 0..epochs {
            for (j, server_up) in up.iter_mut().enumerate() {
                let roll = rng.gen::<f64>();
                if *server_up && roll < config.fail_probability {
                    *server_up = false;
                    events.push(FaultRecord {
                        epoch,
                        event: FaultEvent::ServerFail { server: ServerId(j) },
                    });
                } else if !*server_up && roll < config.recover_probability {
                    *server_up = true;
                    events.push(FaultRecord {
                        epoch,
                        event: FaultEvent::ServerRecover { server: ServerId(j) },
                    });
                }
            }
            for i in 0..num_clients {
                if rng.gen::<f64>() < config.spike_probability {
                    let factor = lo + rng.gen::<f64>() * (hi - lo);
                    events.push(FaultRecord {
                        epoch,
                        event: FaultEvent::RateSpike { client: ClientId(i), factor },
                    });
                }
            }
        }
        // Already epoch-ordered by construction; `new` keeps the invariant
        // explicit.
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(vec![
            FaultRecord { epoch: 3, event: FaultEvent::ServerRecover { server: ServerId(1) } },
            FaultRecord { epoch: 1, event: FaultEvent::ServerFail { server: ServerId(1) } },
            FaultRecord {
                epoch: 1,
                event: FaultEvent::RateSpike { client: ClientId(0), factor: 2.0 },
            },
        ])
    }

    #[test]
    fn constructor_sorts_by_epoch_stably() {
        let p = plan();
        assert_eq!(p.events()[0].epoch, 1);
        assert_eq!(p.events()[1].epoch, 1);
        assert_eq!(p.events()[2].epoch, 3);
        // Stable: the fail listed first among epoch-1 events stays first.
        assert!(matches!(p.events()[0].event, FaultEvent::ServerFail { .. }));
    }

    #[test]
    fn events_at_returns_the_epoch_slice() {
        let p = plan();
        assert_eq!(p.events_at(0).len(), 0);
        assert_eq!(p.events_at(1).len(), 2);
        assert_eq!(p.events_at(3).len(), 1);
        assert_eq!(p.horizon(), 4);
        assert_eq!(FaultPlan::default().horizon(), 0);
    }

    #[test]
    fn validate_rejects_out_of_range_and_bad_factors() {
        let p = plan();
        assert!(p.validate(2, 1).is_ok());
        assert!(p.validate(1, 1).unwrap_err().contains("server s1 out of range"));
        assert!(p.validate(2, 0).unwrap_err().contains("client c0 out of range"));
        let bad = FaultPlan::new(vec![FaultRecord {
            epoch: 0,
            event: FaultEvent::RateSpike { client: ClientId(0), factor: 0.0 },
        }]);
        assert!(bad.validate(1, 1).unwrap_err().contains("spike factor"));
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let config = FaultPlanConfig::default();
        let a = FaultPlan::random(&config, 10, 20, 8, 7);
        let b = FaultPlan::random(&config, 10, 20, 8, 7);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::random(&config, 10, 20, 8, 8));
        a.validate(10, 20).unwrap();
        assert!(a.horizon() <= 8);
    }

    #[test]
    fn random_chains_fail_before_recover() {
        // A recovery for a server can only follow a failure of the same
        // server at a strictly earlier epoch.
        let config = FaultPlanConfig {
            fail_probability: 0.5,
            recover_probability: 0.5,
            spike_probability: 0.0,
            spike_range: (1.0, 1.0),
        };
        let p = FaultPlan::random(&config, 6, 0, 20, 3);
        let mut up = [true; 6];
        for rec in p.events() {
            match rec.event {
                FaultEvent::ServerFail { server } => {
                    assert!(up[server.index()], "fail of a down server at {}", rec.epoch);
                    up[server.index()] = false;
                }
                FaultEvent::ServerRecover { server } => {
                    assert!(!up[server.index()], "recover of an up server at {}", rec.epoch);
                    up[server.index()] = true;
                }
                FaultEvent::RateSpike { .. } => unreachable!(),
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = plan();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<FaultPlan>(&json).unwrap(), p);
    }
}
