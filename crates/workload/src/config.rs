//! Scenario configuration: every knob of the paper's synthetic workloads.

use serde::{Deserialize, Serialize};

/// An inclusive uniform sampling range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (`>= lo`).
    pub hi: f64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are non-finite or `hi < lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && hi >= lo, "invalid range [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Maps a uniform sample `u ∈ [0,1)` into the range.
    pub fn sample(&self, u: f64) -> f64 {
        assert!((0.0..1.0).contains(&u), "uniform sample must lie in [0,1), got {u}");
        self.lo + (self.hi - self.lo) * u
    }

    /// True when `v` lies within the range (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// Shape of the generated utility functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UtilityShape {
    /// `max(0, u0 − b·r)` — the paper's linearized SLA (default).
    Linear,
    /// A 3-level discrete step approximating the linear SLA — the paper's
    /// "discrete utility functions".
    Step,
    /// `u0·exp(−r/τ)` — a smooth non-linear SLA used in ablations.
    Exponential,
}

/// Full description of a synthetic scenario family; a concrete
/// [`cloudalloc_model::CloudSystem`] is drawn from it with
/// [`crate::generate`] and a seed.
///
/// Defaults ([`ScenarioConfig::paper`]) follow §VI of the paper; every
/// range is exposed so ablations can stress individual dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of clusters (paper: 5).
    pub num_clusters: usize,
    /// Number of server classes in the catalog (paper: 10).
    pub num_server_classes: usize,
    /// Number of utility (SLA) classes (paper: 5).
    pub num_utility_classes: usize,
    /// Number of clients to generate.
    pub num_clients: usize,
    /// Servers of each class in each cluster, drawn uniformly as an
    /// integer from this range (paper: `U(2,6)`).
    pub servers_per_class: Range,
    /// Processing capacity `C^p` per server class (paper: `U(2,6)`).
    pub cap_processing: Range,
    /// Storage capacity `C^m` per server class (paper: `U(2,6)`).
    pub cap_storage: Range,
    /// Communication capacity `C^c` per server class (paper: `U(2,6)`).
    pub cap_communication: Range,
    /// Constant operation cost `P0` per server class (paper: `U(1,3)`).
    pub cost_fixed: Range,
    /// Utilization-linear cost `P1` per server class (paper groups it with
    /// the `U(1,3)` draw; see DESIGN.md).
    pub cost_per_utilization: Range,
    /// Mean per-unit-capacity execution times per utility class
    /// (paper: `U(0.4,1)` for both processing and communication).
    pub exec_time: Range,
    /// Utility slope per utility class (paper: `U(0.4,1)`).
    pub utility_slope: Range,
    /// Utility intercept `u0` per utility class (implicit in the paper;
    /// default `U(1,3)`).
    pub utility_intercept: Range,
    /// Predicted arrival rate `λ` per client (paper: `U(0.5,4.5)`).
    pub arrival_rate: Range,
    /// Storage need `m_i` per client (paper: `U(0.2,2)`).
    pub client_storage: Range,
    /// Agreed rate `λ̃ = factor · λ` (paper prices with the agreed rate but
    /// allocates with the predicted one; 1.0 makes them equal).
    pub agreed_rate_factor: f64,
    /// Shape of the generated utility functions.
    pub utility_shape: UtilityShape,
    /// Fraction of servers carrying background load (paper's "initial
    /// state ... of previously assigned and running clients"); 0 disables.
    pub background_fraction: f64,
    /// Background processing/communication share range for loaded servers.
    pub background_share: Range,
}

impl ScenarioConfig {
    /// The paper's §VI configuration for `num_clients` clients.
    pub fn paper(num_clients: usize) -> Self {
        Self {
            num_clusters: 5,
            num_server_classes: 10,
            num_utility_classes: 5,
            num_clients,
            servers_per_class: Range::new(2.0, 6.0),
            cap_processing: Range::new(2.0, 6.0),
            cap_storage: Range::new(2.0, 6.0),
            cap_communication: Range::new(2.0, 6.0),
            cost_fixed: Range::new(1.0, 3.0),
            cost_per_utilization: Range::new(1.0, 3.0),
            exec_time: Range::new(0.4, 1.0),
            utility_slope: Range::new(0.4, 1.0),
            utility_intercept: Range::new(1.0, 3.0),
            arrival_rate: Range::new(0.5, 4.5),
            client_storage: Range::new(0.2, 2.0),
            agreed_rate_factor: 1.0,
            utility_shape: UtilityShape::Linear,
            background_fraction: 0.0,
            background_share: Range::new(0.05, 0.3),
        }
    }

    /// A small scenario (2 clusters, 3 server classes, 2 utility classes)
    /// for fast unit and integration tests.
    pub fn small(num_clients: usize) -> Self {
        Self {
            num_clusters: 2,
            num_server_classes: 3,
            num_utility_classes: 2,
            servers_per_class: Range::new(1.0, 3.0),
            ..Self::paper(num_clients)
        }
    }

    /// The large-scale family for the E5i scale bench: the paper's §VI
    /// distributions stretched to datacenter proportions. Cluster count
    /// grows with the client population (one cluster per ~500 clients, so
    /// a million clients spread over thousands of clusters) and every
    /// cluster holds 4–6 servers of each of the 10 classes — roughly one
    /// server per ten clients, matching the 1M-client / 100k-server
    /// regime the ROADMAP targets.
    pub fn scale(num_clients: usize) -> Self {
        Self {
            num_clusters: (num_clients / 500).max(4),
            servers_per_class: Range::new(4.0, 6.0),
            ..Self::paper(num_clients)
        }
    }

    /// A deliberately over-subscribed scenario: client demand far exceeds
    /// capacity, exercising the solvers' handling of saturation.
    pub fn overloaded(num_clients: usize) -> Self {
        Self {
            servers_per_class: Range::new(1.0, 1.0),
            num_server_classes: 2,
            arrival_rate: Range::new(3.0, 4.5),
            ..Self::small(num_clients)
        }
    }

    /// Validates internal consistency (positive counts, sane ranges).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first inconsistency.
    pub fn validate(&self) {
        assert!(self.num_clusters > 0, "need at least one cluster");
        assert!(self.num_server_classes > 0, "need at least one server class");
        assert!(self.num_utility_classes > 0, "need at least one utility class");
        assert!(self.servers_per_class.lo >= 1.0, "each class needs >= 1 server per cluster");
        for (name, r) in [
            ("cap_processing", self.cap_processing),
            ("cap_storage", self.cap_storage),
            ("cap_communication", self.cap_communication),
            ("exec_time", self.exec_time),
            ("utility_slope", self.utility_slope),
            ("utility_intercept", self.utility_intercept),
            ("arrival_rate", self.arrival_rate),
        ] {
            assert!(r.lo > 0.0, "{name} range must be strictly positive, got [{}, {}]", r.lo, r.hi);
        }
        assert!(self.client_storage.lo >= 0.0, "client storage cannot be negative");
        assert!(self.cost_fixed.lo >= 0.0 && self.cost_per_utilization.lo >= 0.0);
        assert!(
            self.agreed_rate_factor > 0.0 && self.agreed_rate_factor.is_finite(),
            "agreed_rate_factor must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.background_fraction),
            "background_fraction must lie in [0,1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sampling_stays_in_bounds() {
        let r = Range::new(2.0, 6.0);
        assert_eq!(r.sample(0.0), 2.0);
        assert!((r.sample(0.5) - 4.0).abs() < 1e-12);
        assert!(r.contains(r.sample(0.999999)));
        assert!(!r.contains(6.1));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn range_rejects_inverted_bounds() {
        let _ = Range::new(3.0, 1.0);
    }

    #[test]
    fn paper_preset_matches_section_vi() {
        let c = ScenarioConfig::paper(100);
        c.validate();
        assert_eq!(c.num_clusters, 5);
        assert_eq!(c.num_server_classes, 10);
        assert_eq!(c.num_utility_classes, 5);
        assert_eq!(c.cap_processing, Range::new(2.0, 6.0));
        assert_eq!(c.arrival_rate, Range::new(0.5, 4.5));
        assert_eq!(c.client_storage, Range::new(0.2, 2.0));
        assert_eq!(c.exec_time, Range::new(0.4, 1.0));
        assert_eq!(c.utility_shape, UtilityShape::Linear);
    }

    #[test]
    fn presets_validate() {
        ScenarioConfig::small(10).validate();
        ScenarioConfig::overloaded(50).validate();
        ScenarioConfig::scale(100_000).validate();
    }

    #[test]
    fn scale_preset_tracks_the_client_count() {
        // ~500 clients per cluster, ~10 clients per server: a million
        // clients means thousands of clusters and ~100k servers.
        let c = ScenarioConfig::scale(1_000_000);
        assert_eq!(c.num_clusters, 2000);
        assert_eq!(c.num_server_classes, 10);
        // Expected servers: clusters × classes × U(4,6) ≈ 80k–120k.
        let lo = c.num_clusters * c.num_server_classes * 4;
        let hi = c.num_clusters * c.num_server_classes * 6;
        assert!(lo <= 120_000 && hi >= 100_000);
        // Tiny requests still get a solvable topology.
        assert_eq!(ScenarioConfig::scale(100).num_clusters, 4);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn validate_rejects_zero_clusters() {
        let mut c = ScenarioConfig::paper(10);
        c.num_clusters = 0;
        c.validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = ScenarioConfig::paper(20);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ScenarioConfig>(&json).unwrap(), c);
    }
}
