//! Diurnal load traces: the day/night demand cycles that motivate
//! epoch-based re-allocation (offices wake up, shops close, batch jobs
//! run overnight). A synthetic stand-in for production traces per the
//! reproduction's substitution rule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sinusoidal day/night pattern with per-client phase and multiplicative
/// noise.
///
/// At epoch `e` the rate multiplier of client `i` is
///
/// ```text
/// m_i(e) = 1 + amplitude·sin(2π·(e/period + phase_i)) , scaled by noise
/// ```
///
/// clamped to stay positive. Clients get uniformly random phases, so the
/// aggregate demand also oscillates but never collapses to zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalTrace {
    period: f64,
    amplitude: f64,
    noise: f64,
    phases: Vec<f64>,
    seed: u64,
}

impl DiurnalTrace {
    /// Creates a trace for `num_clients` clients.
    ///
    /// * `period` — epochs per day (`> 0`);
    /// * `amplitude` — peak-to-mean swing (`0 ≤ a < 1`);
    /// * `noise` — multiplicative lognormal-ish noise sigma (`>= 0`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain parameters.
    pub fn new(num_clients: usize, period: f64, amplitude: f64, noise: f64, seed: u64) -> Self {
        assert!(period.is_finite() && period > 0.0, "period must be positive, got {period}");
        assert!((0.0..1.0).contains(&amplitude), "amplitude must lie in [0,1), got {amplitude}");
        assert!(noise.is_finite() && noise >= 0.0, "noise must be non-negative, got {noise}");
        let mut rng = StdRng::seed_from_u64(seed);
        let phases = (0..num_clients).map(|_| rng.gen::<f64>()).collect();
        Self { period, amplitude, noise, phases, seed }
    }

    /// Rate multipliers for epoch `epoch` applied to base rates; always
    /// strictly positive. Noise is deterministic per `(seed, epoch)`.
    pub fn multipliers(&self, epoch: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
        self.phases
            .iter()
            .map(|&phase| {
                // Reduce the epoch modulo the period first so the cycle
                // repeats bit-exactly (sin(x) vs sin(x + 2π) differ in
                // the last ulp otherwise).
                let angle =
                    std::f64::consts::TAU * ((epoch as f64 % self.period) / self.period + phase);
                let seasonal = 1.0 + self.amplitude * angle.sin();
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (seasonal * (self.noise * z).exp()).max(1e-3)
            })
            .collect()
    }

    /// Applies the epoch's multipliers to base rates.
    ///
    /// # Panics
    ///
    /// Panics if `base` does not hold one rate per client.
    pub fn rates_at(&self, epoch: usize, base: &[f64]) -> Vec<f64> {
        assert_eq!(base.len(), self.phases.len(), "one base rate per client required");
        self.multipliers(epoch).iter().zip(base).map(|(m, b)| m * b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_are_positive_and_seasonal() {
        let trace = DiurnalTrace::new(50, 24.0, 0.6, 0.0, 1);
        for epoch in 0..48 {
            for &m in &trace.multipliers(epoch) {
                assert!(m > 0.0 && m.is_finite());
                assert!((0.4 - 1e-9..=1.6 + 1e-9).contains(&m));
            }
        }
    }

    #[test]
    fn the_cycle_repeats_with_the_period() {
        let trace = DiurnalTrace::new(10, 12.0, 0.5, 0.0, 2);
        assert_eq!(trace.multipliers(0), trace.multipliers(12));
        assert_ne!(trace.multipliers(0), trace.multipliers(6));
    }

    #[test]
    fn noise_is_deterministic_per_epoch() {
        let trace = DiurnalTrace::new(8, 24.0, 0.3, 0.2, 3);
        assert_eq!(trace.multipliers(5), trace.multipliers(5));
        assert_ne!(trace.multipliers(5), trace.multipliers(6));
    }

    #[test]
    fn rates_scale_base_values() {
        let trace = DiurnalTrace::new(2, 24.0, 0.0, 0.0, 4);
        let rates = trace.rates_at(3, &[2.0, 4.0]);
        assert!((rates[0] - 2.0).abs() < 1e-12);
        assert!((rates[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "amplitude must lie in [0,1)")]
    fn rejects_full_amplitude() {
        let _ = DiurnalTrace::new(1, 24.0, 1.0, 0.0, 5);
    }
}
