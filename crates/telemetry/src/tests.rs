//! Unit tests for the instrumentation layer.
//!
//! The cross-mode tests at the top compile and run under both feature
//! configurations — they pin the API contract that lets call sites stay
//! cfg-free. The `enabled_behavior` module needs real recording and only
//! builds with `--features enabled` (exercised by the CI telemetry job).

use super::*;

/// Recording/sink/staging state is process-global in enabled builds;
/// every test that touches it serializes on this lock (cargo runs tests
/// on multiple threads).
#[cfg(feature = "enabled")]
static GLOBALS: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn api_is_callable_in_every_mode() {
    #[cfg(feature = "enabled")]
    let _g = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let c = counter!("test.api.counter");
    c.add(2);
    c.incr();
    float_counter!("test.api.float").add(1.5);
    histogram!("test.api.hist").record(7);
    {
        let parent = {
            let _span = span!("test.api.span");
            current_span()
        };
        let _adopt = adopt_parent(parent);
        let _lane = span!("test.api.lane");
    }
    Event::new("test")
        .field_u64("u", 1)
        .field_i64("i", -1)
        .field_f64("f", 0.5)
        .field_str("s", "x")
        .field_bool("b", true)
        .emit();
    record_staging(4096);
    let _ = staging_peak_bytes();
    emit_memory_sample();
    start_memory_sampler(std::time::Duration::from_millis(5));
    stop_memory_sampler();
    flush_metrics();
    close_sink();
    assert_eq!(ENABLED, cfg!(feature = "enabled"));
}

/// Pins both surfaces to the same signatures by coercing each public
/// method to an explicit fn-pointer type. This compiles under both
/// feature modes, so a receiver drift like PR 3's `&'static self` vs
/// `&self` mismatch becomes a compile error instead of a latent
/// feature-gated break.
#[test]
fn noop_and_imp_surfaces_have_identical_signatures() {
    let _: fn(&'static Counter, u64) = Counter::add;
    let _: fn(&'static Counter) = Counter::incr;
    let _: fn(&Counter) -> u64 = Counter::get;
    let _: fn(&'static FloatCounter, f64) = FloatCounter::add;
    let _: fn(&FloatCounter) -> f64 = FloatCounter::get;
    let _: fn(&'static LogHistogram, u64) = LogHistogram::record;
    let _: fn(&LogHistogram) -> HistogramSnapshot = LogHistogram::snapshot;
    let _: fn(&'static str, &'static LogHistogram) -> Span = Span::enter;
    let _: fn(&Span) -> usize = Span::depth;
    let _: fn(&Span) -> u64 = Span::id;
    let _: fn() -> SpanHandle = current_span;
    let _: fn(SpanHandle) -> ParentGuard = adopt_parent;
    let _: fn(&str) -> Event = Event::new;
    let _: fn(Event, &str, u64) -> Event = Event::field_u64;
    let _: fn(Event, &str, i64) -> Event = Event::field_i64;
    let _: fn(Event, &str, f64) -> Event = Event::field_f64;
    let _: fn(Event, &str, &str) -> Event = Event::field_str;
    let _: fn(Event, &str, bool) -> Event = Event::field_bool;
    let _: fn(Event) = Event::emit;
    let _: fn(&str) = emit_progress;
    let _: fn(u64) = record_staging;
    let _: fn() -> u64 = staging_peak_bytes;
    let _: fn() = emit_memory_sample;
    let _: fn(std::time::Duration) = start_memory_sampler;
    let _: fn() = stop_memory_sampler;
    let _: fn(&'static std::path::Path) -> std::io::Result<()> =
        init_jsonl::<&'static std::path::Path>;
    let _: fn() -> bool = sink_active;
    let _: fn() = flush_metrics;
    let _: fn() = close_sink;
    let _: fn(bool) = set_recording;
    let _: fn() -> bool = is_recording;
    let _: fn() -> Vec<MetricSnapshot> = snapshot;
    let _: fn() = reset_metrics;
}

#[test]
fn disabled_mode_observes_nothing() {
    if ENABLED {
        return;
    }
    let c = counter!("test.noop.counter");
    c.add(41);
    c.incr();
    assert_eq!(c.get(), 0);
    assert!(!is_recording());
    assert!(!sink_active());
    assert!(snapshot().is_empty());
    // The sink claims success but never creates the file.
    let path = std::env::temp_dir().join("cloudalloc-telemetry-noop.jsonl");
    let _ = std::fs::remove_file(&path);
    init_jsonl(&path).expect("noop init reports success");
    assert!(!path.exists(), "disabled build must not touch the filesystem");
}

#[cfg(feature = "enabled")]
mod enabled_behavior {
    use std::sync::MutexGuard;

    use super::*;

    fn lock_globals() -> MutexGuard<'static, ()> {
        let guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(true);
        close_sink();
        guard
    }

    fn metric(name: &str) -> Option<MetricValue> {
        snapshot().into_iter().find(|m| m.name == name).map(|m| m.value)
    }

    #[test]
    fn counters_register_and_accumulate() {
        let _g = lock_globals();
        let c = counter!("test.reg.counter");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        assert_eq!(metric("test.reg.counter"), Some(MetricValue::Counter(4)));

        // One call site per metric name: the macro declares a static per
        // site, so reusing a name elsewhere would register a second metric.
        let f = float_counter!("test.reg.float");
        f.add(0.25);
        f.add(0.5);
        match metric("test.reg.float") {
            Some(MetricValue::Float(v)) => assert!((v - 0.75).abs() < 1e-12),
            other => panic!("expected float metric, got {other:?}"),
        }
    }

    #[test]
    fn recording_gate_suppresses_increments() {
        let _g = lock_globals();
        let c = counter!("test.gate.counter");
        c.add(5);
        set_recording(false);
        c.add(100);
        set_recording(true);
        c.incr();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_correct() {
        let _g = lock_globals();
        let h = histogram!("test.hist.quantiles");
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 90 * 100 + 10 * 100_000);
        assert_eq!(snap.max, 100_000);
        // Log-bucketed: within a factor of 2 of the true quantile.
        assert!(snap.p50 >= 64 && snap.p50 <= 200, "p50 = {}", snap.p50);
        assert!(snap.p99 >= 65_536 && snap.p99 <= 200_000, "p99 = {}", snap.p99);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let _g = lock_globals();
        let h = histogram!("test.hist.extremes");
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.p50, 0);
    }

    #[test]
    fn span_depth_tracks_nesting() {
        let _g = lock_globals();
        let outer = span!("test.span.outer");
        let inner = span!("test.span.inner");
        assert_eq!(outer.depth(), inner.depth().saturating_sub(1));
        drop(inner);
        let sibling = span!("test.span.sibling");
        assert_eq!(sibling.depth(), outer.depth() + 1);
    }

    #[test]
    fn sink_writes_parseable_jsonl() {
        let _g = lock_globals();
        let path = std::env::temp_dir().join("cloudalloc-telemetry-sink.jsonl");
        init_jsonl(&path).expect("sink opens");
        assert!(sink_active());

        counter!("test.sink.counter").add(9);
        {
            let _span = span!("test.sink.span");
        }
        Event::new("custom")
            .field_str("msg", "quote \" backslash \\ newline \n done")
            .field_f64("nan", f64::NAN)
            .field_bool("ok", true)
            .emit();
        emit_progress("phase 1/2");
        flush_metrics();
        close_sink();
        assert!(!sink_active());

        let body = std::fs::read_to_string(&path).expect("sink file exists");
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 5, "expected several records, got {body:?}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line:?}");
            assert!(line.contains("\"t\":"), "line lacks a type tag: {line:?}");
            assert!(line.contains("\"ts\":"), "line lacks a timestamp: {line:?}");
        }
        assert!(lines[0].contains("\"t\":\"meta\""));
        assert!(body.contains("\"t\":\"span\"") && body.contains("\"name\":\"test.sink.span\""));
        assert!(body.contains("\"t\":\"progress\"") && body.contains("phase 1/2"));
        assert!(body.contains("\"name\":\"test.sink.counter\""));
        // Escapes applied, raw specials absent.
        assert!(body.contains("quote \\\" backslash \\\\ newline \\n done"));
        // Non-finite floats become null.
        assert!(body.contains("\"nan\":null"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spans_stream_ids_and_parent_links() {
        let _g = lock_globals();
        let path = std::env::temp_dir().join("cloudalloc-telemetry-tree.jsonl");
        init_jsonl(&path).expect("sink opens");
        {
            let outer = span!("test.tree.outer");
            assert_ne!(outer.id(), 0);
            let inner = span!("test.tree.inner");
            assert_ne!(inner.id(), outer.id());
            drop(inner);
        }
        close_sink();
        let body = std::fs::read_to_string(&path).expect("sink file exists");
        // Both spans leave a start and an end record carrying id/parent/tid.
        for name in ["test.tree.outer", "test.tree.inner"] {
            let starts: Vec<&str> = body
                .lines()
                .filter(|l| l.contains("\"t\":\"span_start\"") && l.contains(name))
                .collect();
            let ends: Vec<&str> =
                body.lines().filter(|l| l.contains("\"t\":\"span\"") && l.contains(name)).collect();
            assert_eq!(starts.len(), 1, "one start for {name}: {body}");
            assert_eq!(ends.len(), 1, "one end for {name}: {body}");
            for l in starts.iter().chain(&ends) {
                assert!(
                    l.contains("\"id\":") && l.contains("\"parent\":") && l.contains("\"tid\":")
                );
            }
        }
        // The inner span's parent field is the outer span's id.
        let id_of = |line: &str| -> u64 {
            let rest = &line[line.find("\"id\":").unwrap() + 5..];
            rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
        };
        let parent_of = |line: &str| -> u64 {
            let rest = &line[line.find("\"parent\":").unwrap() + 9..];
            rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
        };
        let outer_start = body
            .lines()
            .find(|l| l.contains("\"t\":\"span_start\"") && l.contains("test.tree.outer"))
            .unwrap();
        let inner_start = body
            .lines()
            .find(|l| l.contains("\"t\":\"span_start\"") && l.contains("test.tree.inner"))
            .unwrap();
        assert_eq!(parent_of(inner_start), id_of(outer_start));
        assert_eq!(parent_of(outer_start), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adopted_parents_cross_threads() {
        let _g = lock_globals();
        let path = std::env::temp_dir().join("cloudalloc-telemetry-adopt.jsonl");
        init_jsonl(&path).expect("sink opens");
        let dispatch_id;
        {
            let dispatch = span!("test.adopt.dispatch");
            dispatch_id = dispatch.id();
            let handle = current_span();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(move || {
                        let _adopt = adopt_parent(handle);
                        let _lane = span!("test.adopt.lane");
                    });
                }
            });
        }
        close_sink();
        let body = std::fs::read_to_string(&path).expect("sink file exists");
        let lanes: Vec<&str> = body
            .lines()
            .filter(|l| l.contains("\"t\":\"span_start\"") && l.contains("test.adopt.lane"))
            .collect();
        assert_eq!(lanes.len(), 2);
        for l in lanes {
            assert!(
                l.contains(&format!("\"parent\":{dispatch_id}")),
                "worker lane not parented to the dispatch span: {l}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adopt_parent_restores_previous_cursor() {
        let _g = lock_globals();
        let outer = span!("test.adoptrestore.outer");
        let outer_handle = current_span();
        let inner = span!("test.adoptrestore.inner");
        let before = current_span();
        assert_ne!(before, outer_handle);
        {
            let _adopt = adopt_parent(outer_handle);
            assert_eq!(current_span(), outer_handle);
        }
        assert_eq!(current_span(), before);
        drop(inner);
        drop(outer);
    }

    #[test]
    fn memory_sampler_writes_mem_records() {
        let _g = lock_globals();
        let path = std::env::temp_dir().join("cloudalloc-telemetry-mem.jsonl");
        init_jsonl(&path).expect("sink opens");
        record_staging(12_345);
        record_staging(700);
        assert_eq!(staging_peak_bytes(), 12_345);
        start_memory_sampler(std::time::Duration::from_millis(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop_memory_sampler();
        close_sink();
        let body = std::fs::read_to_string(&path).expect("sink file exists");
        let mems: Vec<&str> = body.lines().filter(|l| l.contains("\"t\":\"mem\"")).collect();
        assert!(!mems.is_empty(), "sampler wrote no mem records: {body}");
        for m in &mems {
            assert!(m.contains("\"rss_bytes\":") && m.contains("\"hwm_bytes\":"));
            assert!(m.contains("\"staging_bytes\":700"));
            assert!(m.contains("\"staging_peak_bytes\":12345"));
        }
        reset_metrics();
        assert_eq!(staging_peak_bytes(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_metrics_zeroes_without_unregistering() {
        let _g = lock_globals();
        let c = counter!("test.reset.counter");
        c.add(7);
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(metric("test.reset.counter"), Some(MetricValue::Counter(0)));
        c.incr();
        assert_eq!(c.get(), 1);
    }
}
