//! Unit tests for the instrumentation layer.
//!
//! The cross-mode tests at the top compile and run under both feature
//! configurations — they pin the API contract that lets call sites stay
//! cfg-free. The `enabled_behavior` module needs real recording and only
//! builds with `--features enabled` (exercised by the CI telemetry job).

use super::*;

#[test]
fn api_is_callable_in_every_mode() {
    let c = counter!("test.api.counter");
    c.add(2);
    c.incr();
    float_counter!("test.api.float").add(1.5);
    histogram!("test.api.hist").record(7);
    {
        let _span = span!("test.api.span");
    }
    Event::new("test")
        .field_u64("u", 1)
        .field_i64("i", -1)
        .field_f64("f", 0.5)
        .field_str("s", "x")
        .field_bool("b", true)
        .emit();
    flush_metrics();
    close_sink();
    assert_eq!(ENABLED, cfg!(feature = "enabled"));
}

#[test]
fn disabled_mode_observes_nothing() {
    if ENABLED {
        return;
    }
    let c = counter!("test.noop.counter");
    c.add(41);
    c.incr();
    assert_eq!(c.get(), 0);
    assert!(!is_recording());
    assert!(!sink_active());
    assert!(snapshot().is_empty());
    // The sink claims success but never creates the file.
    let path = std::env::temp_dir().join("cloudalloc-telemetry-noop.jsonl");
    let _ = std::fs::remove_file(&path);
    init_jsonl(&path).expect("noop init reports success");
    assert!(!path.exists(), "disabled build must not touch the filesystem");
}

#[cfg(feature = "enabled")]
mod enabled_behavior {
    use std::sync::{Mutex, MutexGuard};

    use super::*;

    /// Recording/sink state is process-global; serialize the tests that
    /// mutate it (cargo runs tests on multiple threads).
    static GLOBALS: Mutex<()> = Mutex::new(());

    fn lock_globals() -> MutexGuard<'static, ()> {
        let guard = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(true);
        close_sink();
        guard
    }

    fn metric(name: &str) -> Option<MetricValue> {
        snapshot().into_iter().find(|m| m.name == name).map(|m| m.value)
    }

    #[test]
    fn counters_register_and_accumulate() {
        let _g = lock_globals();
        let c = counter!("test.reg.counter");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        assert_eq!(metric("test.reg.counter"), Some(MetricValue::Counter(4)));

        // One call site per metric name: the macro declares a static per
        // site, so reusing a name elsewhere would register a second metric.
        let f = float_counter!("test.reg.float");
        f.add(0.25);
        f.add(0.5);
        match metric("test.reg.float") {
            Some(MetricValue::Float(v)) => assert!((v - 0.75).abs() < 1e-12),
            other => panic!("expected float metric, got {other:?}"),
        }
    }

    #[test]
    fn recording_gate_suppresses_increments() {
        let _g = lock_globals();
        let c = counter!("test.gate.counter");
        c.add(5);
        set_recording(false);
        c.add(100);
        set_recording(true);
        c.incr();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_correct() {
        let _g = lock_globals();
        let h = histogram!("test.hist.quantiles");
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 90 * 100 + 10 * 100_000);
        assert_eq!(snap.max, 100_000);
        // Log-bucketed: within a factor of 2 of the true quantile.
        assert!(snap.p50 >= 64 && snap.p50 <= 200, "p50 = {}", snap.p50);
        assert!(snap.p99 >= 65_536 && snap.p99 <= 200_000, "p99 = {}", snap.p99);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let _g = lock_globals();
        let h = histogram!("test.hist.extremes");
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.p50, 0);
    }

    #[test]
    fn span_depth_tracks_nesting() {
        let _g = lock_globals();
        let outer = span!("test.span.outer");
        let inner = span!("test.span.inner");
        assert_eq!(outer.depth(), inner.depth().saturating_sub(1));
        drop(inner);
        let sibling = span!("test.span.sibling");
        assert_eq!(sibling.depth(), outer.depth() + 1);
    }

    #[test]
    fn sink_writes_parseable_jsonl() {
        let _g = lock_globals();
        let path = std::env::temp_dir().join("cloudalloc-telemetry-sink.jsonl");
        init_jsonl(&path).expect("sink opens");
        assert!(sink_active());

        counter!("test.sink.counter").add(9);
        {
            let _span = span!("test.sink.span");
        }
        Event::new("custom")
            .field_str("msg", "quote \" backslash \\ newline \n done")
            .field_f64("nan", f64::NAN)
            .field_bool("ok", true)
            .emit();
        emit_progress("phase 1/2");
        flush_metrics();
        close_sink();
        assert!(!sink_active());

        let body = std::fs::read_to_string(&path).expect("sink file exists");
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 5, "expected several records, got {body:?}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line:?}");
            assert!(line.contains("\"t\":"), "line lacks a type tag: {line:?}");
            assert!(line.contains("\"ts\":"), "line lacks a timestamp: {line:?}");
        }
        assert!(lines[0].contains("\"t\":\"meta\""));
        assert!(body.contains("\"t\":\"span\"") && body.contains("\"name\":\"test.sink.span\""));
        assert!(body.contains("\"t\":\"progress\"") && body.contains("phase 1/2"));
        assert!(body.contains("\"name\":\"test.sink.counter\""));
        // Escapes applied, raw specials absent.
        assert!(body.contains("quote \\\" backslash \\\\ newline \\n done"));
        // Non-finite floats become null.
        assert!(body.contains("\"nan\":null"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_metrics_zeroes_without_unregistering() {
        let _g = lock_globals();
        let c = counter!("test.reset.counter");
        c.add(7);
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(metric("test.reset.counter"), Some(MetricValue::Counter(0)));
        c.incr();
        assert_eq!(c.get(), 1);
    }
}
