//! The real instrumentation, compiled under `feature = "enabled"`.
//!
//! Everything funnels through three globals, all const-initialized so
//! metric statics can live at their call sites with no lazy-init
//! machinery: a registry of every metric touched so far, a recording
//! flag, and an optional JSONL sink. Hot-path operations are a relaxed
//! atomic load (the recording gate) plus one relaxed RMW.

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{HistogramSnapshot, MetricSnapshot, MetricValue};

// --- global state -------------------------------------------------------

/// Runtime gate: when false, metrics and events are skipped even though
/// the instrumentation is compiled in. Defaults to on.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Every metric static that has been touched at least once, in first-touch
/// order. Snapshots sort by name, so registration order never leaks into
/// output.
static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

/// The JSONL sink, if [`init_jsonl`] opened one. A plain `Mutex` (not a
/// `OnceLock`) so tests and multi-phase harnesses can re-target it.
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Fast-path mirror of `SINK.is_some()`, checked before taking the lock.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Process start reference for event timestamps (monotonic, ns).
static START: OnceLock<Instant> = OnceLock::new();

/// Process-unique span id allocator. Id 0 is reserved for "no span"
/// (the root of the causal forest), so allocation starts at 1.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique lane (thread) id allocator for trace records. Std's
/// `ThreadId` has no stable integer form, so the flight recorder hands
/// out its own small dense ids on first use per thread.
static NEXT_LANE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost open span on this thread (0 = none). Spans read it
    /// as their parent link on entry; [`adopt_parent`] re-seats it so a
    /// worker thread's spans nest under the dispatching span.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };

    /// This thread's lane id for trace records (0 = not yet assigned).
    static LANE_ID: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn lane_id() -> u64 {
    LANE_ID.with(|l| {
        let v = l.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_LANE_ID.fetch_add(1, Relaxed);
        l.set(v);
        v
    })
}

#[derive(Clone, Copy)]
enum MetricRef {
    Counter(&'static Counter),
    Float(&'static FloatCounter),
    Hist(&'static LogHistogram),
}

fn ts_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn register(metric: MetricRef) {
    REGISTRY.lock().expect("telemetry registry poisoned").push(metric);
}

/// Enables or disables recording at runtime (compiled-in builds only).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Relaxed);
}

/// Whether metric/event recording is currently active.
#[inline]
pub fn is_recording() -> bool {
    RECORDING.load(Relaxed)
}

// --- JSON formatting helpers -------------------------------------------

fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_json_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `Display` for f64 is shortest-roundtrip decimal — valid JSON.
        buf.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Inf; null keeps the line parseable.
        buf.push_str("null");
    }
}

fn write_line(line: &str) {
    let mut guard = SINK.lock().expect("telemetry sink poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

// --- counters -----------------------------------------------------------

/// Monotonic `u64` counter; declare via [`crate::counter!`].
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Const constructor for use in statics.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `n` (no-op while recording is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !RECORDING.load(Relaxed) {
            return;
        }
        if !self.registered.load(Relaxed) && !self.registered.swap(true, Relaxed) {
            register(MetricRef::Counter(self));
        }
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Accumulating `f64` counter (atomic bit-CAS); declare via
/// [`crate::float_counter!`]. Used for summed profit deltas where an
/// integer counter loses the signal.
pub struct FloatCounter {
    name: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl FloatCounter {
    /// Const constructor for use in statics.
    pub const fn new(name: &'static str) -> Self {
        FloatCounter {
            name,
            bits: AtomicU64::new(0), // 0u64 == 0.0f64 bit pattern
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `v` (no-op while recording is off).
    #[inline]
    pub fn add(&'static self, v: f64) {
        if !RECORDING.load(Relaxed) {
            return;
        }
        if !self.registered.load(Relaxed) && !self.registered.swap(true, Relaxed) {
            register(MetricRef::Float(self));
        }
        let mut cur = self.bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

// --- log-scale histogram ------------------------------------------------

/// Power-of-two-bucket histogram for `u64` samples (latencies in ns,
/// set sizes, depths); declare via [`crate::histogram!`]. Bucket `i`
/// holds samples in `[2^(i-1), 2^i)` (bucket 0 holds exactly 0), so 64
/// buckets cover the full range with ~2x relative quantile error —
/// plenty for "where does the time go" profiling.
pub struct LogHistogram {
    name: &'static str,
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(63)
}

fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1);
    let hi = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
    lo + (hi - lo) / 2
}

impl LogHistogram {
    /// Const constructor for use in statics.
    pub const fn new(name: &'static str) -> Self {
        LogHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; 64],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one sample (no-op while recording is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !RECORDING.load(Relaxed) {
            return;
        }
        if !self.registered.load(Relaxed) && !self.registered.swap(true, Relaxed) {
            register(MetricRef::Hist(self));
        }
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // Saturating sum: fetch_add wraps, but ns sums would need ~584
        // years of recorded time to do so; clamp on read instead.
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Point-in-time summary with approximate quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_mid(i);
                }
            }
            bucket_mid(63)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            max: self.max.load(Relaxed),
        }
    }
}

// --- spans --------------------------------------------------------------

thread_local! {
    /// Current span nesting depth on this thread; the "span stack" is
    /// implicit in the RAII guards, only its depth needs tracking.
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII span timer; open via [`crate::span!`], which pairs each site
/// with a dedicated [`LogHistogram`]. Every open span carries a
/// process-unique id and a parent link to the span that was innermost
/// on this thread at entry (or the adopted cross-thread parent — see
/// [`adopt_parent`]), forming a causal forest across `run_parallel`
/// fan-outs. When a sink is active, entry writes a
/// `{"t":"span_start","id":…,"parent":…,"name":…,"tid":…}` record and
/// drop writes the matching
/// `{"t":"span","name":…,"depth":…,"ns":…,"id":…,"parent":…,"tid":…}`
/// end record (the pre-flight-recorder fields stay, so old consumers
/// keep working).
#[must_use = "a span measures nothing unless bound to a live guard"]
pub struct Span {
    name: &'static str,
    hist: &'static LogHistogram,
    start: Option<Instant>,
    depth: usize,
    id: u64,
    parent: u64,
}

impl Span {
    /// Opens the span (records nothing while recording is off).
    #[inline]
    pub fn enter(name: &'static str, hist: &'static LogHistogram) -> Span {
        if !RECORDING.load(Relaxed) {
            return Span { name, hist, start: None, depth: 0, id: 0, parent: 0 };
        }
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let id = NEXT_SPAN_ID.fetch_add(1, Relaxed);
        let parent = CURRENT_SPAN.with(|c| {
            let p = c.get();
            c.set(id);
            p
        });
        if SINK_ACTIVE.load(Relaxed) {
            let mut buf = String::with_capacity(96);
            buf.push_str("{\"t\":\"span_start\",\"ts\":");
            buf.push_str(&ts_ns().to_string());
            buf.push_str(",\"id\":");
            buf.push_str(&id.to_string());
            buf.push_str(",\"parent\":");
            buf.push_str(&parent.to_string());
            buf.push_str(",\"name\":");
            push_json_str(&mut buf, name);
            buf.push_str(",\"tid\":");
            buf.push_str(&lane_id().to_string());
            buf.push('}');
            write_line(&buf);
        }
        Span { name, hist, start: Some(Instant::now()), depth, id, parent }
    }

    /// Nesting depth at entry (0 = top level) — test/report hook.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// This span's process-unique id (0 when recording was off at entry).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        CURRENT_SPAN.with(|c| c.set(self.parent));
        self.hist.record(ns);
        if SINK_ACTIVE.load(Relaxed) {
            let mut buf = String::with_capacity(128);
            buf.push_str("{\"t\":\"span\",\"ts\":");
            buf.push_str(&ts_ns().to_string());
            buf.push_str(",\"name\":");
            push_json_str(&mut buf, self.name);
            buf.push_str(",\"depth\":");
            buf.push_str(&self.depth.to_string());
            buf.push_str(",\"ns\":");
            buf.push_str(&ns.to_string());
            buf.push_str(",\"id\":");
            buf.push_str(&self.id.to_string());
            buf.push_str(",\"parent\":");
            buf.push_str(&self.parent.to_string());
            buf.push_str(",\"tid\":");
            buf.push_str(&lane_id().to_string());
            buf.push('}');
            write_line(&buf);
        }
    }
}

// --- cross-thread parent adoption ---------------------------------------

/// A copyable handle to a span's identity, safe to send to worker
/// threads so their spans can nest under the dispatching span. Obtain
/// via [`current_span`], consume via [`adopt_parent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(u64);

/// The innermost open span on the calling thread as a sendable handle
/// (the null handle when no span is open or recording is off).
#[inline]
pub fn current_span() -> SpanHandle {
    SpanHandle(CURRENT_SPAN.with(|c| c.get()))
}

/// Re-seats the calling thread's span cursor onto `handle`, so spans
/// opened while the returned guard lives become children of the
/// dispatching span instead of roots. The previous cursor is restored
/// on drop, making adoption safe on the dispatching thread itself and
/// across nested dispatches.
#[inline]
pub fn adopt_parent(handle: SpanHandle) -> ParentGuard {
    let prev = CURRENT_SPAN.with(|c| {
        let p = c.get();
        c.set(handle.0);
        p
    });
    ParentGuard { prev }
}

/// RAII guard of [`adopt_parent`]; restores the thread's previous span
/// cursor on drop.
#[must_use = "adoption ends when the guard drops"]
pub struct ParentGuard {
    prev: u64,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        CURRENT_SPAN.with(|c| c.set(self.prev));
    }
}

// --- events -------------------------------------------------------------

/// Builder for one structured JSONL record. Cheap when no sink is
/// active: `new` returns an inert builder and the field methods do
/// nothing.
pub struct Event {
    buf: Option<String>,
}

impl Event {
    /// Starts a record of type `ty` (the `"t"` field).
    #[inline]
    pub fn new(ty: &str) -> Event {
        if !SINK_ACTIVE.load(Relaxed) || !RECORDING.load(Relaxed) {
            return Event { buf: None };
        }
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"t\":");
        push_json_str(&mut buf, ty);
        buf.push_str(",\"ts\":");
        buf.push_str(&ts_ns().to_string());
        Event { buf: Some(buf) }
    }

    fn key(&mut self, k: &str) -> Option<&mut String> {
        let buf = self.buf.as_mut()?;
        buf.push(',');
        push_json_str(buf, k);
        buf.push(':');
        Some(buf)
    }

    /// Appends an unsigned integer field.
    pub fn field_u64(mut self, k: &str, v: u64) -> Self {
        if let Some(buf) = self.key(k) {
            buf.push_str(&v.to_string());
        }
        self
    }

    /// Appends a signed integer field.
    pub fn field_i64(mut self, k: &str, v: i64) -> Self {
        if let Some(buf) = self.key(k) {
            buf.push_str(&v.to_string());
        }
        self
    }

    /// Appends a float field (`null` for non-finite values).
    pub fn field_f64(mut self, k: &str, v: f64) -> Self {
        if let Some(buf) = self.key(k) {
            push_json_f64(buf, v);
        }
        self
    }

    /// Appends a string field.
    pub fn field_str(mut self, k: &str, v: &str) -> Self {
        if let Some(buf) = self.key(k) {
            push_json_str(buf, v);
        }
        self
    }

    /// Appends a boolean field.
    pub fn field_bool(mut self, k: &str, v: bool) -> Self {
        if let Some(buf) = self.key(k) {
            buf.push_str(if v { "true" } else { "false" });
        }
        self
    }

    /// Writes the record to the sink (drops it silently if none).
    pub fn emit(self) {
        if let Some(mut buf) = self.buf {
            buf.push('}');
            write_line(&buf);
        }
    }
}

/// Backing call of the [`crate::progress!`] macro: the stderr mirror has
/// already been printed; this adds the JSONL record when a sink exists.
pub fn emit_progress(msg: &str) {
    Event::new("progress").field_str("msg", msg).emit();
}

// --- memory timeline ----------------------------------------------------

/// Current streamed-compile staging bytes, as last reported by the
/// producer via [`record_staging`].
static STAGING_BYTES: AtomicU64 = AtomicU64::new(0);

/// High-watermark of [`STAGING_BYTES`] since process start (or the last
/// [`reset_metrics`]).
static STAGING_PEAK: AtomicU64 = AtomicU64::new(0);

/// The background memory sampler, if one is running.
static SAMPLER: Mutex<Option<SamplerHandle>> = Mutex::new(None);

struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<()>,
}

/// Reports the streaming producer's in-flight staging size (bytes).
/// Tracked as a current value plus a high-watermark; both ride along in
/// every `{"t":"mem",…}` sample so the memory timeline correlates RSS
/// with staging pressure.
#[inline]
pub fn record_staging(bytes: u64) {
    if !RECORDING.load(Relaxed) {
        return;
    }
    STAGING_BYTES.store(bytes, Relaxed);
    STAGING_PEAK.fetch_max(bytes, Relaxed);
}

/// High-watermark of staging bytes seen by [`record_staging`].
pub fn staging_peak_bytes() -> u64 {
    STAGING_PEAK.load(Relaxed)
}

/// Reads VmRSS/VmHWM from `/proc/self/status` in bytes; `(0, 0)` when
/// the proc filesystem is unavailable.
fn read_vm_bytes() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |key: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<u64>().ok())
            .map(|kb| kb * 1024)
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

/// Writes one `{"t":"mem",…}` timeline sample (no-op without an active
/// sink or with recording off).
pub fn emit_memory_sample() {
    if !SINK_ACTIVE.load(Relaxed) || !RECORDING.load(Relaxed) {
        return;
    }
    let (rss, hwm) = read_vm_bytes();
    Event::new("mem")
        .field_u64("rss_bytes", rss)
        .field_u64("hwm_bytes", hwm)
        .field_u64("staging_bytes", STAGING_BYTES.load(Relaxed))
        .field_u64("staging_peak_bytes", STAGING_PEAK.load(Relaxed))
        .emit();
}

/// Starts the background memory sampler: a named thread that writes a
/// `{"t":"mem",…}` record every `interval` until [`stop_memory_sampler`].
/// Idempotent — a second start while one is running does nothing.
pub fn start_memory_sampler(interval: Duration) {
    let mut guard = SAMPLER.lock().expect("telemetry sampler poisoned");
    if guard.is_some() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("telemetry-mem".into())
        .spawn(move || {
            // Slice the sleep so stop latency stays bounded even for
            // coarse sampling intervals.
            let slice = interval.min(Duration::from_millis(20));
            let mut since_sample = interval; // emit one sample immediately
            while !stop2.load(Relaxed) {
                if since_sample >= interval {
                    emit_memory_sample();
                    since_sample = Duration::ZERO;
                }
                std::thread::sleep(slice);
                since_sample += slice;
            }
        })
        .expect("spawning the telemetry memory sampler");
    *guard = Some(SamplerHandle { stop, join });
}

/// Stops the background sampler (if running), waits for it to exit, and
/// writes one final sample so the timeline always covers the stop point.
pub fn stop_memory_sampler() {
    let handle = SAMPLER.lock().expect("telemetry sampler poisoned").take();
    if let Some(h) = handle {
        h.stop.store(true, Relaxed);
        let _ = h.join.join();
        emit_memory_sample();
    }
}

// --- sink lifecycle -----------------------------------------------------

/// Opens (or re-targets) the JSONL sink at `path`, truncating any
/// existing file, and writes a `{"t":"meta",…}` header line.
pub fn init_jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut guard = SINK.lock().expect("telemetry sink poisoned");
    *guard = Some(BufWriter::new(file));
    SINK_ACTIVE.store(true, Relaxed);
    drop(guard);
    ts_ns(); // pin the timestamp origin no later than sink creation
    let mut buf = String::with_capacity(64);
    buf.push_str("{\"t\":\"meta\",\"ts\":");
    buf.push_str(&ts_ns().to_string());
    buf.push_str(",\"version\":1}");
    write_line(&buf);
    Ok(())
}

/// Whether a JSONL sink is currently open.
#[inline]
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Relaxed)
}

/// Writes one JSONL record per registered metric (`"counter"`,
/// `"fcounter"` and `"hist"` types), sorted by name. No-op without a
/// sink.
pub fn flush_metrics() {
    if !SINK_ACTIVE.load(Relaxed) {
        return;
    }
    for m in snapshot() {
        let mut buf = String::with_capacity(96);
        match m.value {
            MetricValue::Counter(v) => {
                buf.push_str("{\"t\":\"counter\",\"ts\":");
                buf.push_str(&ts_ns().to_string());
                buf.push_str(",\"name\":");
                push_json_str(&mut buf, m.name);
                buf.push_str(",\"value\":");
                buf.push_str(&v.to_string());
            }
            MetricValue::Float(v) => {
                buf.push_str("{\"t\":\"fcounter\",\"ts\":");
                buf.push_str(&ts_ns().to_string());
                buf.push_str(",\"name\":");
                push_json_str(&mut buf, m.name);
                buf.push_str(",\"value\":");
                push_json_f64(&mut buf, v);
            }
            MetricValue::Histogram(h) => {
                buf.push_str("{\"t\":\"hist\",\"ts\":");
                buf.push_str(&ts_ns().to_string());
                buf.push_str(",\"name\":");
                push_json_str(&mut buf, m.name);
                buf.push_str(&format!(
                    ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                    h.count, h.sum, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        buf.push('}');
        write_line(&buf);
    }
}

/// Flushes and closes the sink (idempotent).
pub fn close_sink() {
    let mut guard = SINK.lock().expect("telemetry sink poisoned");
    if let Some(mut w) = guard.take() {
        let _ = w.flush();
    }
    SINK_ACTIVE.store(false, Relaxed);
}

// --- in-process introspection ------------------------------------------

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let metrics: Vec<MetricRef> = REGISTRY.lock().expect("telemetry registry poisoned").clone();
    let mut out: Vec<MetricSnapshot> = metrics
        .into_iter()
        .map(|m| match m {
            MetricRef::Counter(c) => {
                MetricSnapshot { name: c.name, value: MetricValue::Counter(c.get()) }
            }
            MetricRef::Float(f) => {
                MetricSnapshot { name: f.name, value: MetricValue::Float(f.get()) }
            }
            MetricRef::Hist(h) => {
                MetricSnapshot { name: h.name, value: MetricValue::Histogram(h.snapshot()) }
            }
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// Zeroes every registered metric (counters, floats and histograms)
/// without unregistering them. Used by the bench overhead section to
/// isolate phases.
pub fn reset_metrics() {
    STAGING_BYTES.store(0, Relaxed);
    STAGING_PEAK.store(0, Relaxed);
    let metrics: Vec<MetricRef> = REGISTRY.lock().expect("telemetry registry poisoned").clone();
    for m in metrics {
        match m {
            MetricRef::Counter(c) => c.value.store(0, Relaxed),
            MetricRef::Float(f) => f.bits.store(0, Relaxed),
            MetricRef::Hist(h) => {
                for b in &h.buckets {
                    b.store(0, Relaxed);
                }
                h.count.store(0, Relaxed);
                h.sum.store(0, Relaxed);
                h.max.store(0, Relaxed);
            }
        }
    }
}
