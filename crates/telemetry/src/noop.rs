//! The no-op surface, compiled when `feature = "enabled"` is off.
//!
//! Every type here is zero-sized and every method an `#[inline(always)]`
//! empty body, so instrumented call sites vanish entirely from release
//! binaries: the statics declared by `counter!`/`span!` occupy no data,
//! the guards have no `Drop`, and the optimizer deletes the calls. This
//! is what guarantees bit-identical solver output and zero measurable
//! overhead for un-instrumented builds.
//!
//! Signatures must match `imp` exactly (same receiver forms included) so
//! call sites compile identically under both features; the parity test
//! in `tests.rs` pins this with fn-pointer coercions.

use std::path::Path;
use std::time::Duration;

use crate::{HistogramSnapshot, MetricSnapshot};

/// No-op counter stand-in (see `imp::Counter` for the real one).
pub struct Counter;

impl Counter {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        Counter
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&'static self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(&'static self) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op float counter stand-in.
pub struct FloatCounter;

impl FloatCounter {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        FloatCounter
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&'static self, _v: f64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram stand-in.
pub struct LogHistogram;

impl LogHistogram {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        LogHistogram
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record(&'static self, _v: u64) {}

    /// Always the all-zero snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, p50: 0, p90: 0, p99: 0, max: 0 }
    }
}

/// No-op span guard: zero-sized, no `Drop`, nothing to time.
#[must_use = "a span measures nothing unless bound to a live guard"]
pub struct Span;

impl Span {
    /// Returns the inert guard.
    #[inline(always)]
    pub fn enter(_name: &'static str, _hist: &'static LogHistogram) -> Span {
        Span
    }

    /// Always 0.
    #[inline(always)]
    pub fn depth(&self) -> usize {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn id(&self) -> u64 {
        0
    }
}

/// No-op span handle: zero-sized, nothing to link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle;

/// Always the null handle.
#[inline(always)]
pub fn current_span() -> SpanHandle {
    SpanHandle
}

/// Returns the inert guard.
#[inline(always)]
pub fn adopt_parent(_handle: SpanHandle) -> ParentGuard {
    ParentGuard
}

/// No-op adoption guard: zero-sized, no `Drop`.
#[must_use = "adoption ends when the guard drops"]
pub struct ParentGuard;

/// No-op event builder: the field chain evaluates its arguments (they
/// must stay cheap at call sites) but builds nothing.
pub struct Event;

impl Event {
    /// Returns the inert builder.
    #[inline(always)]
    pub fn new(_ty: &str) -> Event {
        Event
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_u64(self, _k: &str, _v: u64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_i64(self, _k: &str, _v: i64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_f64(self, _k: &str, _v: f64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_str(self, _k: &str, _v: &str) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_bool(self, _k: &str, _v: bool) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn emit(self) {}
}

/// Does nothing (the `progress!` stderr mirror already printed).
#[inline(always)]
pub fn emit_progress(_msg: &str) {}

/// Does nothing.
#[inline(always)]
pub fn record_staging(_bytes: u64) {}

/// Always 0.
#[inline(always)]
pub fn staging_peak_bytes() -> u64 {
    0
}

/// Does nothing.
#[inline(always)]
pub fn emit_memory_sample() {}

/// Does nothing — no thread is spawned in disabled builds.
#[inline(always)]
pub fn start_memory_sampler(_interval: Duration) {}

/// Does nothing.
#[inline(always)]
pub fn stop_memory_sampler() {}

/// Accepted but ignored: reports success so callers need no cfg.
#[inline(always)]
pub fn init_jsonl<P: AsRef<Path>>(_path: P) -> std::io::Result<()> {
    Ok(())
}

/// Always false.
#[inline(always)]
pub fn sink_active() -> bool {
    false
}

/// Does nothing.
#[inline(always)]
pub fn flush_metrics() {}

/// Does nothing.
#[inline(always)]
pub fn close_sink() {}

/// Does nothing.
#[inline(always)]
pub fn set_recording(_on: bool) {}

/// Always false.
#[inline(always)]
pub fn is_recording() -> bool {
    false
}

/// Always empty.
#[inline(always)]
pub fn snapshot() -> Vec<MetricSnapshot> {
    Vec::new()
}

/// Does nothing.
#[inline(always)]
pub fn reset_metrics() {}
