//! The no-op surface, compiled when `feature = "enabled"` is off.
//!
//! Every type here is zero-sized and every method an `#[inline(always)]`
//! empty body, so instrumented call sites vanish entirely from release
//! binaries: the statics declared by `counter!`/`span!` occupy no data,
//! the guards have no `Drop`, and the optimizer deletes the calls. This
//! is what guarantees bit-identical solver output and zero measurable
//! overhead for un-instrumented builds.

use std::path::Path;

use crate::MetricSnapshot;

/// No-op counter stand-in (see `imp::Counter` for the real one).
pub struct Counter;

impl Counter {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        Counter
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(&self) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op float counter stand-in.
pub struct FloatCounter;

impl FloatCounter {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        FloatCounter
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _v: f64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram stand-in.
pub struct LogHistogram;

impl LogHistogram {
    /// Const constructor for use in statics.
    pub const fn new(_name: &'static str) -> Self {
        LogHistogram
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
}

/// No-op span guard: zero-sized, no `Drop`, nothing to time.
#[must_use = "a span measures nothing unless bound to a live guard"]
pub struct Span;

impl Span {
    /// Returns the inert guard.
    #[inline(always)]
    pub fn enter(_name: &'static str, _hist: &'static LogHistogram) -> Span {
        Span
    }

    /// Always 0.
    #[inline(always)]
    pub fn depth(&self) -> usize {
        0
    }
}

/// No-op event builder: the field chain evaluates its arguments (they
/// must stay cheap at call sites) but builds nothing.
pub struct Event;

impl Event {
    /// Returns the inert builder.
    #[inline(always)]
    pub fn new(_ty: &str) -> Event {
        Event
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_u64(self, _k: &str, _v: u64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_i64(self, _k: &str, _v: i64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_f64(self, _k: &str, _v: f64) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_str(self, _k: &str, _v: &str) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn field_bool(self, _k: &str, _v: bool) -> Self {
        self
    }

    /// Does nothing.
    #[inline(always)]
    pub fn emit(self) {}
}

/// Does nothing (the `progress!` stderr mirror already printed).
#[inline(always)]
pub fn emit_progress(_msg: &str) {}

/// Accepted but ignored: reports success so callers need no cfg.
#[inline(always)]
pub fn init_jsonl<P: AsRef<Path>>(_path: P) -> std::io::Result<()> {
    Ok(())
}

/// Always false.
#[inline(always)]
pub fn sink_active() -> bool {
    false
}

/// Does nothing.
#[inline(always)]
pub fn flush_metrics() {}

/// Does nothing.
#[inline(always)]
pub fn close_sink() {}

/// Does nothing.
#[inline(always)]
pub fn set_recording(_on: bool) {}

/// Always false.
#[inline(always)]
pub fn is_recording() -> bool {
    false
}

/// Always empty.
#[inline(always)]
pub fn snapshot() -> Vec<MetricSnapshot> {
    Vec::new()
}

/// Does nothing.
#[inline(always)]
pub fn reset_metrics() {}
