//! Zero-dependency, feature-gated instrumentation for the cloudalloc
//! solver: RAII span timers over a thread-local span stack, a
//! process-wide registry of atomic counters and log-scale histograms,
//! and a structured JSONL event sink.
//!
//! # Two compilation modes
//!
//! With the `enabled` cargo feature **off** (the default) every type in
//! this crate is a zero-sized unit and every function an
//! `#[inline(always)]` empty body. Call sites — `counter!`, `span!`,
//! [`Event`] chains — compile away entirely, so solver binaries carry
//! no telemetry work and produce bit-identical results to a build that
//! never heard of this crate. With it **on**, metrics record through
//! relaxed atomics and events stream to an optional JSONL file.
//!
//! Instrumentation must never influence solver control flow: it only
//! ever *observes* values, which is what makes the bit-identical
//! guarantee trivial rather than something to re-verify per call site.
//!
//! # Usage
//!
//! ```
//! use cloudalloc_telemetry as telemetry;
//!
//! fn search_round() {
//!     let _span = telemetry::span!("solve.round");
//!     telemetry::counter!("op.reassign.tried").incr();
//!     telemetry::float_counter!("op.reassign.gain").add(0.25);
//!     telemetry::histogram!("incr.flush_clients").record(12);
//!     telemetry::Event::new("round").field_u64("round", 3).emit();
//! }
//! search_round();
//! ```
//!
//! Metric statics register themselves in a global registry on first
//! touch; [`flush_metrics`] writes a snapshot of all of them to the
//! sink and [`snapshot`] exposes the same data in-process.
//!
//! # Flight recorder
//!
//! When a JSONL sink is active, spans stream structured
//! `{"t":"span_start",…}` / `{"t":"span",…}` records carrying a
//! process-unique `id`, a `parent` link, and a per-thread lane id
//! (`tid`), forming a causal forest. Parallel dispatch sites capture
//! [`current_span`] and hand the [`SpanHandle`] to worker jobs, which
//! [`adopt_parent`] it so per-worker spans nest under the dispatching
//! span. A background sampler ([`start_memory_sampler`] /
//! [`stop_memory_sampler`]) writes `{"t":"mem",…}` records with
//! VmRSS/VmHWM and the streamed-compile staging watermark reported by
//! [`record_staging`]. The `trace-report` CLI mode reconstructs the
//! forest and exports a Chrome-trace/Perfetto timeline.
//!
//! # Recording gate
//!
//! Even when compiled in, recording can be switched off at runtime via
//! [`set_recording`]. The speedup bench uses this to measure overhead
//! (recording on vs. off) inside one binary, since an enabled and a
//! disabled build cannot be compared within a single process.

/// `true` when this build carries real instrumentation (`enabled`
/// feature), `false` when everything is a no-op.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Point snapshot of one registered metric (name + current value).
/// Returned by [`snapshot`]; always empty with the feature off.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's registration name, e.g. `"op.swap.accepted"`.
    pub name: &'static str,
    /// Its current value.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic integer counter.
    Counter(u64),
    /// Accumulating floating-point counter (e.g. summed profit deltas).
    Float(f64),
    /// Log-scale histogram summary.
    Histogram(HistogramSnapshot),
}

/// Summary of a [`LogHistogram`]: exact count/sum/max, quantiles
/// approximated from power-of-two bucket midpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Approximate median sample.
    pub p50: u64,
    /// Approximate 90th-percentile sample.
    pub p90: u64,
    /// Approximate 99th-percentile sample.
    pub p99: u64,
    /// Largest recorded sample (exact).
    pub max: u64,
}

/// Declares (once, at the call site) and returns a `&'static` [`Counter`].
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __COUNTER: $crate::Counter = $crate::Counter::new($name);
        &__COUNTER
    }};
}

/// Declares (once, at the call site) and returns a `&'static`
/// [`FloatCounter`].
#[macro_export]
macro_rules! float_counter {
    ($name:expr) => {{
        static __FLOAT_COUNTER: $crate::FloatCounter = $crate::FloatCounter::new($name);
        &__FLOAT_COUNTER
    }};
}

/// Declares (once, at the call site) and returns a `&'static`
/// [`LogHistogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __HISTOGRAM: $crate::LogHistogram = $crate::LogHistogram::new($name);
        &__HISTOGRAM
    }};
}

/// Opens an RAII timing span: bind the result (`let _span = span!(…);`)
/// and the elapsed nanoseconds are recorded into a per-site
/// [`LogHistogram`] named after the span — and streamed to the sink
/// with the current thread-local nesting depth — when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __SPAN_HIST: $crate::LogHistogram = $crate::LogHistogram::new($name);
        $crate::Span::enter($name, &__SPAN_HIST)
    }};
}

/// Progress line for long-running harnesses: always mirrors the
/// formatted message to stderr (like the `eprintln!` it replaces), and
/// additionally writes a `{"t":"progress",…}` JSONL record when a
/// telemetry sink is active.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {{
        let __msg = ::std::format!($($arg)*);
        ::std::eprintln!("{}", __msg);
        $crate::emit_progress(&__msg);
    }};
}

#[cfg(feature = "enabled")]
mod imp;
#[cfg(feature = "enabled")]
pub use imp::*;

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::*;

#[cfg(test)]
mod tests;
