//! Property tests for the fault-repair path of the epoch loop.
//!
//! Two families:
//!
//! * **safety** — on arbitrary random fault traces, a repaired plan never
//!   keeps any α/φ mass on a failed server, the masked planning system
//!   stays model-valid, and every repair is profit-monotone over both the
//!   naive drop-the-victims baseline and doing nothing;
//! * **quality** — the incremental repair never trails a from-scratch
//!   re-solve on the surviving servers by more than a documented
//!   relative band, and when the escalation state machine fires, the adopted
//!   plan is *bit-for-bit* no worse than the escalation re-solve itself
//!   (same seed, same masked system — the determinism makes the re-solve
//!   exactly reproducible outside the manager).

use proptest::prelude::*;

use cloudalloc_core::{ops, solve, SolverConfig, SolverCtx};
use cloudalloc_epoch::{EpochConfig, EpochManager, EwmaPredictor, RepairPolicy};
use cloudalloc_model::{Allocation, ClientId, CloudSystem, ScoredAllocation, ServerId};
use cloudalloc_workload::{generate, FaultPlan, FaultPlanConfig, ScenarioConfig};

/// How far below a from-scratch re-solve on the surviving servers the
/// bare incremental repair may land, relative to the profit scale. The
/// repair preserves the surviving placement structure instead of
/// re-searching it, so on small systems where a failure invalidates
/// half the plan it can trail a global re-solve by up to half the
/// profit — the regime the escalation state machine exists for (it
/// adopts the re-solve whenever the repair degrades past the policy
/// threshold; see the escalation property below). Exceeding the
/// re-solve is unbounded and benign: repair keeps structure a fast
/// re-solve may fail to rediscover.
const REPAIR_VS_RESOLVE_TOLERANCE: f64 = 0.5;

fn rebuild(system: &CloudSystem, alloc: &Allocation) -> Allocation {
    let mut fresh = Allocation::new(system);
    for i in 0..system.num_clients() {
        let client = ClientId(i);
        if let Some(cluster) = alloc.cluster_of(client) {
            fresh.assign_cluster(client, cluster);
            for &(server, placement) in alloc.placements(client) {
                fresh.place(system, client, server, placement);
            }
        }
    }
    fresh
}

fn manager(system: CloudSystem, policy: RepairPolicy, seed: u64) -> EpochManager<EwmaPredictor> {
    let base: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted).collect();
    let predictor = EwmaPredictor::new(0.4, &base);
    let config = EpochConfig { solver: SolverConfig::fast(), repair: policy, ..Default::default() };
    EpochManager::new(system, predictor, config, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary fault traces: after every step the plan holds no mass on
    /// any down server, the masked system still validates, and each
    /// repair respects the monotone rescue chain.
    #[test]
    fn random_fault_traces_leave_no_mass_on_failed_servers(
        clients in 6usize..12,
        seed in any::<u64>(),
        fail_probability in 0.1f64..0.5,
    ) {
        let system = generate(&ScenarioConfig::small(clients), seed);
        let epochs = 5;
        let plan = FaultPlan::random(
            &FaultPlanConfig { fail_probability, ..Default::default() },
            system.num_servers(),
            system.num_clients(),
            epochs,
            seed ^ 0xFA17,
        );
        prop_assert!(plan.validate(system.num_servers(), system.num_clients()).is_ok());
        let rates: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted).collect();
        let mut mgr = manager(system.clone(), RepairPolicy::default(), seed);
        for epoch in 0..epochs {
            let report = mgr.step_faulted(&rates, plan.events_at(epoch));
            let failed = mgr.failed_servers();
            // The masked planning system is still a valid model.
            let masked = system
                .with_predicted_rates(mgr.predicted_rates())
                .with_failed_servers(&failed);
            prop_assert!(masked.validate().is_ok(), "epoch {epoch}: masked system invalid");
            // No α/φ mass survives on a dead server, and the aggregates
            // agree with the placements they summarize.
            for &s in &failed {
                prop_assert!(
                    mgr.allocation().residents(s).is_empty(),
                    "epoch {epoch}: mass on failed server {s}"
                );
            }
            mgr.allocation().assert_consistent(&masked);
            if let Some(repair) = &report.repair {
                prop_assert!(repair.repaired_profit >= repair.naive_profit - 1e-9);
                prop_assert!(repair.naive_profit >= repair.stale_profit - 1e-9);
            }
        }
    }

    /// Incremental repair vs from-scratch re-solve on the survivors:
    /// same masked system, profits within the documented relative band.
    #[test]
    fn repair_tracks_a_fresh_resolve_within_tolerance(
        clients in 8usize..14,
        seed in any::<u64>(),
    ) {
        let system = generate(&ScenarioConfig::small(clients), seed);
        let config = SolverConfig::fast();
        let alloc = solve(&system, &config, seed).allocation;
        let active: Vec<ServerId> = alloc.active_servers().collect();
        prop_assume!(active.len() >= 2);
        let failed = &active[..active.len() / 2];

        let masked = system.with_failed_servers(failed);
        let ctx = SolverCtx::new(&masked, &config);
        let mut scored = ScoredAllocation::lowered(&ctx.compiled, rebuild(&masked, &alloc));
        ops::repair_failed_servers(&ctx, &mut scored, failed);
        ops::shed_unprofitable(&ctx, &mut scored);
        let repaired = scored.profit();

        let resolved = solve(&masked, &config, seed).report.profit;
        let scale = resolved.abs().max(repaired.abs()).max(1.0);
        prop_assert!(
            repaired - resolved >= -REPAIR_VS_RESOLVE_TOLERANCE * scale,
            "repair {repaired} trailed the fresh re-solve {resolved} \
             beyond the {REPAIR_VS_RESOLVE_TOLERANCE} band"
        );
    }

    /// Forced escalation: with `degradation_threshold = ∞` every repair
    /// escalates, and the adopted plan must be at least as good as the
    /// escalation re-solve — which the fixed escalation seed lets us
    /// reproduce bit-for-bit outside the manager.
    #[test]
    fn escalation_is_bit_for_bit_reproducible(
        clients in 6usize..11,
        seed in any::<u64>(),
    ) {
        let system = generate(&ScenarioConfig::small(clients), seed);
        let rates: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted).collect();
        let policy = RepairPolicy { degradation_threshold: f64::INFINITY, max_resolve_retries: 0 };
        let mut mgr = manager(system.clone(), policy, seed);
        let active: Vec<ServerId> = mgr.allocation().active_servers().collect();
        prop_assume!(!active.is_empty());
        let failed = vec![active[0]];

        // Reproduce the escalation re-solve exactly: the same masked
        // predicted system and the same derived seed the manager will use.
        let esc_seed = mgr.escalation_seed(0);
        let masked = system
            .with_predicted_rates(mgr.predicted_rates())
            .with_failed_servers(&failed);
        let expected = solve(&masked, &SolverConfig::fast(), esc_seed).report.profit;

        let events: Vec<_> = failed
            .iter()
            .map(|&server| cloudalloc_workload::FaultRecord {
                epoch: 0,
                event: cloudalloc_workload::FaultEvent::ServerFail { server },
            })
            .collect();
        let report = mgr.step_faulted(&rates, &events);
        let repair = report.repair.expect("failing an active server must repair");
        prop_assert!(repair.escalated, "∞ threshold must force escalation");
        prop_assert!(
            repair.repaired_profit >= expected - 1e-12,
            "adopted plan {} fell below the reproducible escalation re-solve {expected}",
            repair.repaired_profit
        );
    }
}
