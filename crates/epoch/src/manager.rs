//! The epoch loop: predict → (re-)allocate → realize → score — and, when
//! faults strike mid-epoch, repair → shed → escalate.

use serde::{Deserialize, Serialize};

use cloudalloc_core::{improve, ops, solve, SolverConfig, SolverCtx};
use cloudalloc_model::{evaluate, Allocation, ClientId, CloudSystem, ScoredAllocation, ServerId};
use cloudalloc_telemetry as telemetry;
use cloudalloc_workload::{FaultEvent, FaultRecord};

use crate::predictor::RatePredictor;

/// Configuration of the epoch manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Solver settings used for both full solves and warm re-optimizes.
    pub solver: SolverConfig,
    /// Relative change in total predicted processing demand that triggers
    /// a full re-solve instead of a warm-started local search — the
    /// paper's "large changes cannot be handled by the local managers".
    pub resolve_threshold: f64,
    /// Policy of the fault-repair state machine.
    pub repair: RepairPolicy,
}

impl Default for EpochConfig {
    fn default() -> Self {
        Self {
            solver: SolverConfig::default(),
            resolve_threshold: 0.15,
            repair: RepairPolicy::default(),
        }
    }
}

/// Policy of the repair → shed → escalate state machine that handles
/// server failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Escalate from incremental repair to a bounded full re-solve when
    /// the repaired profit falls below this fraction of the pre-fault
    /// expected profit (only meaningful when that reference is positive).
    pub degradation_threshold: f64,
    /// Extra escalation re-solves (each with a freshly derived seed)
    /// allowed after the first, stopping early once the degradation
    /// threshold is recovered — the retry/backoff budget.
    pub max_resolve_retries: usize,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self { degradation_threshold: 0.5, max_resolve_retries: 2 }
    }
}

/// What one mid-epoch repair did; attached to the [`EpochReport`] of the
/// epoch whose fault events triggered it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Servers down after applying this epoch's events.
    pub failed_servers: usize,
    /// Clients that held at least one placement on a dead server.
    pub victims: usize,
    /// Placements evicted from dead servers.
    pub evicted: usize,
    /// Victims rescued by re-dispersing their surviving branches.
    pub redispersed: usize,
    /// Victims rescued by full re-placement.
    pub replaced: usize,
    /// Victims shed because no profitable rescue existed.
    pub shed: usize,
    /// Clients shed by the follow-up admission sweep (lowest marginal
    /// utility first).
    pub shed_low_utility: usize,
    /// Expected profit of the *stale* allocation on the failed system —
    /// the "do nothing" outcome repair must beat.
    pub stale_profit: f64,
    /// Expected profit of the naive drop-every-victim baseline.
    pub naive_profit: f64,
    /// Expected profit after repair (and escalation, when triggered).
    pub repaired_profit: f64,
    /// Whether repair fell back to the naive baseline allocation.
    pub used_naive_fallback: bool,
    /// Whether profit degradation escalated repair to full re-solves.
    pub escalated: bool,
    /// Escalation re-solves actually attempted minus one (0-based retry
    /// counter; 0 when escalation stopped after its first solve).
    pub resolve_retries: usize,
}

/// Outcome of one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Whether a full re-solve ran (vs a warm-started local search).
    pub resolved_fully: bool,
    /// Profit the allocator *expected* under the predicted rates.
    pub predicted_profit: f64,
    /// Profit actually realized under the true rates.
    pub actual_profit: f64,
    /// Served clients whose queues turned unstable under the true rates
    /// (SLA blown because prediction under-shot).
    pub unstable_clients: usize,
    /// Active servers at the end of the epoch.
    pub active_servers: usize,
    /// Mean absolute relative prediction error of this epoch.
    pub prediction_error: f64,
    /// Present when fault events forced a mid-epoch repair.
    pub repair: Option<RepairReport>,
}

/// Runs the allocator across decision epochs.
///
/// Each [`EpochManager::step`] receives the rates that *actually*
/// materialized during the epoch, scores the standing allocation against
/// them, feeds the predictor, and prepares the next epoch's allocation —
/// warm-starting from the previous one unless predicted demand moved by
/// more than [`EpochConfig::resolve_threshold`].
#[derive(Debug)]
pub struct EpochManager<P> {
    base: CloudSystem,
    predictor: P,
    config: EpochConfig,
    allocation: Allocation,
    predicted: Vec<f64>,
    epoch: usize,
    seed: u64,
    /// Per-server down flags maintained from fault events.
    down: Vec<bool>,
}

impl<P: RatePredictor> EpochManager<P> {
    /// Creates a manager and computes the epoch-0 allocation from the
    /// predictor's initial rates.
    pub fn new(base: CloudSystem, predictor: P, config: EpochConfig, seed: u64) -> Self {
        let predicted = predictor.predict();
        let system = base.with_predicted_rates(&predicted);
        let result = solve(&system, &config.solver, seed);
        let down = vec![false; base.num_servers()];
        Self {
            base,
            predictor,
            config,
            allocation: result.allocation,
            predicted,
            epoch: 0,
            seed,
            down,
        }
    }

    /// The allocation currently in force (computed against the predicted
    /// rates of the ongoing epoch).
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The rates the current allocation was planned for.
    pub fn predicted_rates(&self) -> &[f64] {
        &self.predicted
    }

    /// Servers currently down (ascending id).
    pub fn failed_servers(&self) -> Vec<ServerId> {
        self.down.iter().enumerate().filter(|&(_, &d)| d).map(|(j, _)| ServerId(j)).collect()
    }

    /// Seed of the `retry`-th escalation re-solve of the *current* epoch.
    /// Public so tests can reproduce escalation results bit-for-bit.
    pub fn escalation_seed(&self, retry: u64) -> u64 {
        (self.seed ^ 0xFA17_5EED).wrapping_add(retry.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Closes the current epoch with the rates that actually occurred and
    /// prepares the next epoch's allocation.
    ///
    /// Equivalent to [`EpochManager::step_faulted`] with no fault events.
    ///
    /// # Panics
    ///
    /// Panics if `actual_rates` does not hold one positive rate per
    /// client.
    pub fn step(&mut self, actual_rates: &[f64]) -> EpochReport {
        self.step_faulted(actual_rates, &[])
    }

    /// Closes the current epoch under adversity: applies this epoch's
    /// fault events (failures flip servers down, recoveries bring them
    /// back, rate spikes multiply the *realized* rates), repairs the
    /// standing allocation in place when a failure strands clients, then
    /// runs the regular close-and-plan cycle against the masked system.
    ///
    /// With no events and no standing failures this is bit-identical to
    /// the fault-free [`EpochManager::step`].
    ///
    /// # Panics
    ///
    /// Panics if `actual_rates` does not hold one positive rate per
    /// client, an event references an out-of-range id, or a spike factor
    /// is not positive and finite.
    pub fn step_faulted(&mut self, actual_rates: &[f64], events: &[FaultRecord]) -> EpochReport {
        // 0. Apply the epoch's fault events.
        let mut spiked = actual_rates.to_vec();
        for rec in events {
            match rec.event {
                FaultEvent::ServerFail { server } => self.down[server.index()] = true,
                FaultEvent::ServerRecover { server } => self.down[server.index()] = false,
                FaultEvent::RateSpike { client, factor } => {
                    assert!(
                        factor.is_finite() && factor > 0.0,
                        "spike factor must be positive, got {factor}"
                    );
                    spiked[client.index()] *= factor;
                }
            }
        }
        let failed = self.failed_servers();

        // 1. Repair mid-epoch when the standing allocation still holds
        //    mass on a dead server (recoveries alone need no repair; the
        //    next planning step simply sees the capacity again).
        let repair = failed
            .iter()
            .any(|&s| !self.allocation.residents(s).is_empty())
            .then(|| self.repair(&failed));

        // 2. Score the (possibly repaired) allocation against reality.
        let predicted_system =
            self.base.with_predicted_rates(&self.predicted).with_failed_servers(&failed);
        let predicted_profit = evaluate(&predicted_system, &self.allocation).profit;
        let actual_system = self.base.with_predicted_rates(&spiked).with_failed_servers(&failed);
        let realized_alloc = self.allocation.replayed_onto(&actual_system);
        let actual_report = evaluate(&actual_system, &realized_alloc);
        let unstable_clients = actual_report
            .clients
            .iter()
            .enumerate()
            .filter(|(i, outcome)| {
                !realized_alloc.placements(ClientId(*i)).is_empty()
                    && !outcome.response_time.is_finite()
            })
            .count();
        // Error against the spiked reality: a spike the predictor did not
        // see is a prediction miss like any other.
        let prediction_error =
            self.predicted.iter().zip(&spiked).map(|(p, a)| (p - a).abs() / a).sum::<f64>()
                / spiked.len().max(1) as f64;

        let report = EpochReport {
            epoch: self.epoch,
            resolved_fully: false,
            predicted_profit,
            actual_profit: actual_report.profit,
            unstable_clients,
            active_servers: actual_report.active_servers,
            prediction_error,
            repair,
        };

        // 3. Learn and plan the next epoch. Spikes are transient, so the
        //    predictor learns the *base* realized rates; the down-set
        //    masks the planning system until recoveries clear it.
        self.predictor.observe(actual_rates);
        let next_predicted = self.predictor.predict();
        let old_demand: f64 = self.predicted.iter().sum();
        let new_demand: f64 = next_predicted.iter().sum();
        let shift = (new_demand - old_demand).abs() / old_demand.max(1e-9);
        let next_system =
            self.base.with_predicted_rates(&next_predicted).with_failed_servers(&failed);
        self.epoch += 1;
        self.seed = self.seed.wrapping_add(1);

        let mut resolved_fully = false;
        if shift > self.config.resolve_threshold {
            // Large change: full re-solve at the cloud level.
            telemetry::counter!("epoch.full_resolves").incr();
            resolved_fully = true;
            let _span = telemetry::span!("epoch.resolve");
            self.allocation = solve(&next_system, &self.config.solver, self.seed).allocation;
        } else {
            // Small change: keep the assignment, re-run the local search
            // from the previous epoch's state (the paper's warm start).
            // Building the context re-lowers the mutated system into its
            // compiled runtime view — the one lowering step of this epoch.
            telemetry::counter!("epoch.warm_starts").incr();
            let _span = telemetry::span!("epoch.warm_start");
            let ctx = SolverCtx::new(&next_system, &self.config.solver);
            let mut warm = self.allocation.replayed_onto(&next_system);
            improve(&ctx, &mut warm, self.seed);
            self.allocation = warm;
        }
        self.predicted = next_predicted;

        // Plan-vs-realized record, mirroring the fields `OperationsLog`
        // aggregates, so offline telemetry analysis sees the same signal.
        telemetry::Event::new("epoch")
            .field_u64("epoch", report.epoch as u64)
            .field_bool("resolved_fully", resolved_fully)
            .field_f64("predicted_profit", report.predicted_profit)
            .field_f64("actual_profit", report.actual_profit)
            .field_f64("prediction_error", report.prediction_error)
            .field_u64("unstable_clients", report.unstable_clients as u64)
            .field_u64("active_servers", report.active_servers as u64)
            .emit();

        EpochReport { resolved_fully, ..report }
    }

    /// The repair → shed → escalate state machine, run mid-epoch against
    /// the masked system:
    ///
    /// 1. **Repair**: evict victims from dead servers via the journaled
    ///    incremental evaluator and rescue each with the most profitable
    ///    of re-disperse / re-place / shed, then shed any remaining
    ///    clients whose presence costs more than they earn. The result is
    ///    floored at the naive drop-every-victim baseline (which itself
    ///    dominates doing nothing — stranded clients earn zero revenue
    ///    but still hold costly shares), so repaired profit is monotone
    ///    versus both.
    /// 2. **Escalate**: when the repaired profit falls below
    ///    `degradation_threshold ×` the pre-fault expected profit, run
    ///    bounded full re-solves with derived seeds, keeping the best
    ///    allocation and stopping as soon as the threshold is recovered.
    fn repair(&mut self, failed: &[ServerId]) -> RepairReport {
        let _span = telemetry::span!("epoch.repair");
        telemetry::counter!("epoch.repairs").incr();

        // Pre-fault reference: what this epoch was expected to earn.
        let pre_fault = self.base.with_predicted_rates(&self.predicted);
        let reference = evaluate(&pre_fault, &self.allocation).profit;
        let masked = pre_fault.with_failed_servers(failed);

        // Doing nothing: the stale allocation scored on the failed system.
        let stale = self.allocation.replayed_onto(&masked);
        let stale_profit = evaluate(&masked, &stale).profit;

        // Naive baseline: drop every client that touches a dead server.
        let mut dead = vec![false; masked.num_servers()];
        for &s in failed {
            dead[s.index()] = true;
        }
        let mut naive = stale.clone();
        for i in 0..masked.num_clients() {
            let client = ClientId(i);
            if naive.placements(client).iter().any(|&(s, _)| dead[s.index()]) {
                naive.clear_client(&masked, client);
            }
        }
        let naive_profit = evaluate(&masked, &naive).profit;

        // Incremental repair plus the admission-control sweep.
        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored = ScoredAllocation::lowered(&ctx.compiled, stale);
        let stats = ops::repair_failed_servers(&ctx, &mut scored, failed);
        let shed_low_utility = ops::shed_unprofitable(&ctx, &mut scored);
        let mut repaired_profit = scored.profit();
        let mut repaired = scored.into_allocation();
        let mut used_naive_fallback = false;
        if repaired_profit < naive_profit {
            repaired = naive;
            repaired_profit = naive_profit;
            used_naive_fallback = true;
        }

        let mut escalated = false;
        let mut resolve_retries = 0;
        let floor = self.config.repair.degradation_threshold * reference;
        if reference > 0.0 && repaired_profit < floor {
            escalated = true;
            telemetry::counter!("epoch.repair.escalations").incr();
            let _span = telemetry::span!("epoch.repair.escalate");
            for retry in 0..=self.config.repair.max_resolve_retries {
                resolve_retries = retry;
                let result =
                    solve(&masked, &self.config.solver, self.escalation_seed(retry as u64));
                let profit = evaluate(&masked, &result.allocation).profit;
                if profit > repaired_profit {
                    repaired_profit = profit;
                    repaired = result.allocation;
                    used_naive_fallback = false;
                }
                if repaired_profit >= floor {
                    break;
                }
            }
        }
        self.allocation = repaired;

        let report = RepairReport {
            failed_servers: failed.len(),
            victims: stats.victims,
            evicted: stats.evicted,
            redispersed: stats.redispersed,
            replaced: stats.replaced,
            shed: stats.shed,
            shed_low_utility,
            stale_profit,
            naive_profit,
            repaired_profit,
            used_naive_fallback,
            escalated,
            resolve_retries,
        };
        telemetry::Event::new("epoch.repair")
            .field_u64("epoch", self.epoch as u64)
            .field_u64("failed_servers", report.failed_servers as u64)
            .field_u64("victims", report.victims as u64)
            .field_u64("shed", (report.shed + report.shed_low_utility) as u64)
            .field_f64("stale_profit", report.stale_profit)
            .field_f64("naive_profit", report.naive_profit)
            .field_f64("repaired_profit", report.repaired_profit)
            .field_bool("escalated", report.escalated)
            .emit();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{DriftConfig, WorkloadDrift};
    use crate::predictor::EwmaPredictor;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};

    fn base_rates(system: &CloudSystem) -> Vec<f64> {
        system.clients().iter().map(|c| c.rate_predicted).collect()
    }

    fn manager(seed: u64) -> (EpochManager<EwmaPredictor>, Vec<f64>) {
        let system = generate(&ScenarioConfig::paper(15), seed);
        let rates = base_rates(&system);
        let predictor = EwmaPredictor::new(0.4, &rates);
        let config = EpochConfig { solver: SolverConfig::fast(), ..Default::default() };
        (EpochManager::new(system, predictor, config, seed), rates)
    }

    #[test]
    fn stable_workloads_warm_start_and_stay_profitable() {
        let (mut mgr, rates) = manager(301);
        for epoch in 0..4 {
            let report = mgr.step(&rates);
            assert_eq!(report.epoch, epoch);
            assert!(!report.resolved_fully, "no demand shift, no full solve");
            assert_eq!(report.unstable_clients, 0);
            assert!(report.actual_profit > 0.0);
            assert!(report.prediction_error < 1e-9);
        }
    }

    #[test]
    fn large_demand_shift_triggers_full_resolve() {
        let (mut mgr, rates) = manager(302);
        let surged: Vec<f64> = rates.iter().map(|r| r * 2.0).collect();
        let report = mgr.step(&surged);
        // The EWMA moved predictions by ~40% > threshold.
        assert!(report.resolved_fully);
        assert!((report.prediction_error - 0.5).abs() < 1e-9); // |r − 2r| / 2r
    }

    #[test]
    fn under_predicted_surges_blow_slas_then_recover() {
        let (mut mgr, rates) = manager(303);
        let surged: Vec<f64> = rates.iter().map(|r| r * 3.0).collect();
        // Epoch 0: the allocation was sized for the base rates, reality
        // tripled — some queues must collapse.
        let hit = mgr.step(&surged);
        assert!(hit.unstable_clients > 0, "tripled load should destabilize someone");
        // Keep the surge: the re-planned epoch absorbs it.
        let recovered = mgr.step(&surged);
        assert!(
            recovered.unstable_clients <= hit.unstable_clients,
            "re-planning must not make stability worse"
        );
        assert!(recovered.actual_profit >= hit.actual_profit - 1e-9);
    }

    #[test]
    fn allocations_stay_feasible_across_drifting_epochs() {
        let (mut mgr, rates) = manager(304);
        let mut drift = WorkloadDrift::new(DriftConfig::default(), &rates, 5);
        for _ in 0..5 {
            let actual = drift.step();
            let _ = mgr.step(&actual);
            // The standing allocation is always feasible for its
            // *predicted* system.
            let predicted_system = mgr.base.with_predicted_rates(mgr.predicted_rates());
            let violations = check_feasibility(&predicted_system, mgr.allocation());
            assert!(
                violations
                    .iter()
                    .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })),
                "violations: {violations:?}"
            );
        }
    }

    #[test]
    fn last_value_predictor_also_drives_the_manager() {
        use crate::predictor::LastValue;
        let system = generate(&ScenarioConfig::paper(10), 306);
        let rates = base_rates(&system);
        let config = EpochConfig { solver: SolverConfig::fast(), ..Default::default() };
        let mut mgr = EpochManager::new(system, LastValue::new(&rates), config, 1);
        let bumped: Vec<f64> = rates.iter().map(|r| r * 1.05).collect();
        let first = mgr.step(&bumped);
        assert!(first.prediction_error > 0.04);
        // After observing, last-value predicts the bumped rates exactly.
        let second = mgr.step(&bumped);
        assert!(second.prediction_error < 1e-9);
    }

    #[test]
    fn epoch_loop_is_deterministic() {
        let run = || {
            let (mut mgr, rates) = manager(305);
            let mut drift = WorkloadDrift::new(DriftConfig::default(), &rates, 9);
            (0..3).map(|_| mgr.step(&drift.step()).actual_profit).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_faulted_without_events_matches_step() {
        let (mut plain, rates) = manager(307);
        let (mut faulted, _) = manager(307);
        for _ in 0..3 {
            assert_eq!(plain.step(&rates), faulted.step_faulted(&rates, &[]));
        }
    }

    #[test]
    fn failures_trigger_repair_that_beats_the_naive_baseline() {
        let (mut mgr, rates) = manager(308);
        let failed: Vec<ServerId> = mgr.allocation.active_servers().take(2).collect();
        assert_eq!(failed.len(), 2, "scenario too small to fail two servers");
        let events: Vec<FaultRecord> = failed
            .iter()
            .map(|&server| FaultRecord { epoch: 0, event: FaultEvent::ServerFail { server } })
            .collect();
        let report = mgr.step_faulted(&rates, &events);
        let repair = report.repair.expect("stranded clients force a repair");
        assert_eq!(repair.failed_servers, 2);
        assert!(repair.victims > 0);
        assert_eq!(repair.redispersed + repair.replaced + repair.shed, repair.victims);
        // Profit monotone: repaired ≥ naive drop ≥ doing nothing.
        assert!(repair.naive_profit >= repair.stale_profit - 1e-9);
        assert!(repair.repaired_profit >= repair.naive_profit - 1e-9);
        // The next plan keeps dead servers empty.
        assert_eq!(mgr.failed_servers(), failed);
        for &s in &failed {
            assert!(mgr.allocation().residents(s).is_empty(), "plan placed load on dead {s}");
        }
    }

    #[test]
    fn rate_spikes_perturb_realized_rates_only() {
        let (mut mgr, rates) = manager(311);
        let spike = FaultRecord {
            epoch: 0,
            event: FaultEvent::RateSpike { client: ClientId(0), factor: 4.0 },
        };
        let report = mgr.step_faulted(&rates, &[spike]);
        assert!(report.repair.is_none(), "spikes alone never trigger server repair");
        // One client spiked 4x: its relative error is 0.75, averaged over n.
        let expect = 0.75 / rates.len() as f64;
        assert!((report.prediction_error - expect).abs() < 1e-9);
    }

    #[test]
    fn recovery_restores_capacity_and_profit() {
        let (mut mgr, rates) = manager(309);
        let active: Vec<ServerId> = mgr.allocation.active_servers().collect();
        let subset = &active[..active.len() / 2];
        let fail: Vec<FaultRecord> = subset
            .iter()
            .map(|&server| FaultRecord { epoch: 0, event: FaultEvent::ServerFail { server } })
            .collect();
        let hit = mgr.step_faulted(&rates, &fail);
        assert!(!mgr.failed_servers().is_empty());
        let recover: Vec<FaultRecord> = subset
            .iter()
            .map(|&server| FaultRecord { epoch: 1, event: FaultEvent::ServerRecover { server } })
            .collect();
        mgr.step_faulted(&rates, &recover);
        assert!(mgr.failed_servers().is_empty());
        // With every server back and demand unchanged, the re-planned
        // epoch earns at least what the degraded one did.
        let healed = mgr.step(&rates);
        assert!(healed.actual_profit >= hit.actual_profit - 1e-9);
    }

    #[test]
    fn escalation_adopts_the_full_resolve_or_keeps_a_better_repair() {
        let (mut mgr, rates) = manager(312);
        mgr.config.repair =
            RepairPolicy { degradation_threshold: f64::INFINITY, max_resolve_retries: 0 };
        let failed: Vec<ServerId> = mgr.allocation.active_servers().collect();
        let masked =
            mgr.base.with_predicted_rates(mgr.predicted_rates()).with_failed_servers(&failed);
        let esc_seed = mgr.escalation_seed(0);
        let solver = mgr.config.solver.clone();
        let events: Vec<FaultRecord> = failed
            .iter()
            .map(|&server| FaultRecord { epoch: 0, event: FaultEvent::ServerFail { server } })
            .collect();
        let report = mgr.step_faulted(&rates, &events);
        let repair = report.repair.expect("failing every active server strands everyone");
        assert!(repair.escalated, "an infinite threshold always escalates");
        assert_eq!(repair.resolve_retries, 0);
        // The escalation solve is reproducible from the documented seed:
        // either it won and the standing-at-repair-time allocation IS its
        // result bit-for-bit, or the incremental repair was at least as
        // good and was kept.
        let resolve = solve(&masked, &solver, esc_seed);
        let resolve_profit = evaluate(&masked, &resolve.allocation).profit;
        assert!(
            repair.repaired_profit >= resolve_profit - 1e-9,
            "escalation must keep the best of repair and re-solve"
        );
    }
}
