//! The epoch loop: predict → (re-)allocate → realize → score.

use serde::{Deserialize, Serialize};

use cloudalloc_core::{improve, solve, SolverConfig, SolverCtx};
use cloudalloc_model::{evaluate, Allocation, ClientId, CloudSystem};
use cloudalloc_telemetry as telemetry;

use crate::predictor::RatePredictor;

/// Configuration of the epoch manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochConfig {
    /// Solver settings used for both full solves and warm re-optimizes.
    pub solver: SolverConfig,
    /// Relative change in total predicted processing demand that triggers
    /// a full re-solve instead of a warm-started local search — the
    /// paper's "large changes cannot be handled by the local managers".
    pub resolve_threshold: f64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        Self { solver: SolverConfig::default(), resolve_threshold: 0.15 }
    }
}

/// Outcome of one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Whether a full re-solve ran (vs a warm-started local search).
    pub resolved_fully: bool,
    /// Profit the allocator *expected* under the predicted rates.
    pub predicted_profit: f64,
    /// Profit actually realized under the true rates.
    pub actual_profit: f64,
    /// Served clients whose queues turned unstable under the true rates
    /// (SLA blown because prediction under-shot).
    pub unstable_clients: usize,
    /// Active servers at the end of the epoch.
    pub active_servers: usize,
    /// Mean absolute relative prediction error of this epoch.
    pub prediction_error: f64,
}

/// Runs the allocator across decision epochs.
///
/// Each [`EpochManager::step`] receives the rates that *actually*
/// materialized during the epoch, scores the standing allocation against
/// them, feeds the predictor, and prepares the next epoch's allocation —
/// warm-starting from the previous one unless predicted demand moved by
/// more than [`EpochConfig::resolve_threshold`].
#[derive(Debug)]
pub struct EpochManager<P> {
    base: CloudSystem,
    predictor: P,
    config: EpochConfig,
    allocation: Allocation,
    predicted: Vec<f64>,
    epoch: usize,
    seed: u64,
}

/// Rebuilds an allocation's derived aggregates against a re-parameterized
/// system (placements and assignments carry over verbatim; per-server
/// work totals depend on the rates and must be recomputed).
fn rebuild(system: &CloudSystem, alloc: &Allocation) -> Allocation {
    let mut fresh = Allocation::new(system);
    for i in 0..system.num_clients() {
        let client = ClientId(i);
        if let Some(cluster) = alloc.cluster_of(client) {
            fresh.assign_cluster(client, cluster);
            for &(server, placement) in alloc.placements(client) {
                fresh.place(system, client, server, placement);
            }
        }
    }
    fresh
}

impl<P: RatePredictor> EpochManager<P> {
    /// Creates a manager and computes the epoch-0 allocation from the
    /// predictor's initial rates.
    pub fn new(base: CloudSystem, predictor: P, config: EpochConfig, seed: u64) -> Self {
        let predicted = predictor.predict();
        let system = base.with_predicted_rates(&predicted);
        let result = solve(&system, &config.solver, seed);
        Self { base, predictor, config, allocation: result.allocation, predicted, epoch: 0, seed }
    }

    /// The allocation currently in force (computed against the predicted
    /// rates of the ongoing epoch).
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The rates the current allocation was planned for.
    pub fn predicted_rates(&self) -> &[f64] {
        &self.predicted
    }

    /// Closes the current epoch with the rates that actually occurred and
    /// prepares the next epoch's allocation.
    ///
    /// # Panics
    ///
    /// Panics if `actual_rates` does not hold one positive rate per
    /// client.
    pub fn step(&mut self, actual_rates: &[f64]) -> EpochReport {
        // 1. Score the standing allocation against reality.
        let predicted_system = self.base.with_predicted_rates(&self.predicted);
        let predicted_profit = evaluate(&predicted_system, &self.allocation).profit;
        let actual_system = self.base.with_predicted_rates(actual_rates);
        let realized_alloc = rebuild(&actual_system, &self.allocation);
        let actual_report = evaluate(&actual_system, &realized_alloc);
        let unstable_clients = actual_report
            .clients
            .iter()
            .enumerate()
            .filter(|(i, outcome)| {
                !realized_alloc.placements(ClientId(*i)).is_empty()
                    && !outcome.response_time.is_finite()
            })
            .count();
        let prediction_error =
            self.predicted.iter().zip(actual_rates).map(|(p, a)| (p - a).abs() / a).sum::<f64>()
                / actual_rates.len().max(1) as f64;

        let report = EpochReport {
            epoch: self.epoch,
            resolved_fully: false,
            predicted_profit,
            actual_profit: actual_report.profit,
            unstable_clients,
            active_servers: actual_report.active_servers,
            prediction_error,
        };

        // 2. Learn and plan the next epoch.
        self.predictor.observe(actual_rates);
        let next_predicted = self.predictor.predict();
        let old_demand: f64 = self.predicted.iter().sum();
        let new_demand: f64 = next_predicted.iter().sum();
        let shift = (new_demand - old_demand).abs() / old_demand.max(1e-9);
        let next_system = self.base.with_predicted_rates(&next_predicted);
        self.epoch += 1;
        self.seed = self.seed.wrapping_add(1);

        let mut resolved_fully = false;
        if shift > self.config.resolve_threshold {
            // Large change: full re-solve at the cloud level.
            telemetry::counter!("epoch.full_resolves").incr();
            resolved_fully = true;
            let _span = telemetry::span!("epoch.resolve");
            self.allocation = solve(&next_system, &self.config.solver, self.seed).allocation;
        } else {
            // Small change: keep the assignment, re-run the local search
            // from the previous epoch's state (the paper's warm start).
            // Building the context re-lowers the mutated system into its
            // compiled runtime view — the one lowering step of this epoch.
            telemetry::counter!("epoch.warm_starts").incr();
            let _span = telemetry::span!("epoch.warm_start");
            let ctx = SolverCtx::new(&next_system, &self.config.solver);
            let mut warm = rebuild(&next_system, &self.allocation);
            improve(&ctx, &mut warm, self.seed);
            self.allocation = warm;
        }
        self.predicted = next_predicted;

        // Plan-vs-realized record, mirroring the fields `OperationsLog`
        // aggregates, so offline telemetry analysis sees the same signal.
        telemetry::Event::new("epoch")
            .field_u64("epoch", report.epoch as u64)
            .field_bool("resolved_fully", resolved_fully)
            .field_f64("predicted_profit", report.predicted_profit)
            .field_f64("actual_profit", report.actual_profit)
            .field_f64("prediction_error", report.prediction_error)
            .field_u64("unstable_clients", report.unstable_clients as u64)
            .field_u64("active_servers", report.active_servers as u64)
            .emit();

        EpochReport { resolved_fully, ..report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{DriftConfig, WorkloadDrift};
    use crate::predictor::EwmaPredictor;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};

    fn base_rates(system: &CloudSystem) -> Vec<f64> {
        system.clients().iter().map(|c| c.rate_predicted).collect()
    }

    fn manager(seed: u64) -> (EpochManager<EwmaPredictor>, Vec<f64>) {
        let system = generate(&ScenarioConfig::paper(15), seed);
        let rates = base_rates(&system);
        let predictor = EwmaPredictor::new(0.4, &rates);
        let config = EpochConfig { solver: SolverConfig::fast(), ..Default::default() };
        (EpochManager::new(system, predictor, config, seed), rates)
    }

    #[test]
    fn stable_workloads_warm_start_and_stay_profitable() {
        let (mut mgr, rates) = manager(301);
        for epoch in 0..4 {
            let report = mgr.step(&rates);
            assert_eq!(report.epoch, epoch);
            assert!(!report.resolved_fully, "no demand shift, no full solve");
            assert_eq!(report.unstable_clients, 0);
            assert!(report.actual_profit > 0.0);
            assert!(report.prediction_error < 1e-9);
        }
    }

    #[test]
    fn large_demand_shift_triggers_full_resolve() {
        let (mut mgr, rates) = manager(302);
        let surged: Vec<f64> = rates.iter().map(|r| r * 2.0).collect();
        let report = mgr.step(&surged);
        // The EWMA moved predictions by ~40% > threshold.
        assert!(report.resolved_fully);
        assert!((report.prediction_error - 0.5).abs() < 1e-9); // |r − 2r| / 2r
    }

    #[test]
    fn under_predicted_surges_blow_slas_then_recover() {
        let (mut mgr, rates) = manager(303);
        let surged: Vec<f64> = rates.iter().map(|r| r * 3.0).collect();
        // Epoch 0: the allocation was sized for the base rates, reality
        // tripled — some queues must collapse.
        let hit = mgr.step(&surged);
        assert!(hit.unstable_clients > 0, "tripled load should destabilize someone");
        // Keep the surge: the re-planned epoch absorbs it.
        let recovered = mgr.step(&surged);
        assert!(
            recovered.unstable_clients <= hit.unstable_clients,
            "re-planning must not make stability worse"
        );
        assert!(recovered.actual_profit >= hit.actual_profit - 1e-9);
    }

    #[test]
    fn allocations_stay_feasible_across_drifting_epochs() {
        let (mut mgr, rates) = manager(304);
        let mut drift = WorkloadDrift::new(DriftConfig::default(), &rates, 5);
        for _ in 0..5 {
            let actual = drift.step();
            let _ = mgr.step(&actual);
            // The standing allocation is always feasible for its
            // *predicted* system.
            let predicted_system = mgr.base.with_predicted_rates(mgr.predicted_rates());
            let violations = check_feasibility(&predicted_system, mgr.allocation());
            assert!(
                violations
                    .iter()
                    .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })),
                "violations: {violations:?}"
            );
        }
    }

    #[test]
    fn last_value_predictor_also_drives_the_manager() {
        use crate::predictor::LastValue;
        let system = generate(&ScenarioConfig::paper(10), 306);
        let rates = base_rates(&system);
        let config = EpochConfig { solver: SolverConfig::fast(), ..Default::default() };
        let mut mgr = EpochManager::new(system, LastValue::new(&rates), config, 1);
        let bumped: Vec<f64> = rates.iter().map(|r| r * 1.05).collect();
        let first = mgr.step(&bumped);
        assert!(first.prediction_error > 0.04);
        // After observing, last-value predicts the bumped rates exactly.
        let second = mgr.step(&bumped);
        assert!(second.prediction_error < 1e-9);
    }

    #[test]
    fn epoch_loop_is_deterministic() {
        let run = || {
            let (mut mgr, rates) = manager(305);
            let mut drift = WorkloadDrift::new(DriftConfig::default(), &rates, 9);
            (0..3).map(|_| mgr.step(&drift.step()).actual_profit).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
