//! Decision-epoch management.
//!
//! The paper allocates resources once per **decision epoch**: "the
//! solution found by the presented algorithm is acceptable only as long
//! as the parameters used to find the solution are approximately valid",
//! predicted request rates drive the allocation while agreed rates drive
//! revenue, and the greedy pass starts from "the state of the cluster at
//! the end of the previous epoch". The paper scopes out the estimation
//! and prediction machinery; this crate supplies it so the allocator can
//! actually be operated over time:
//!
//! * [`RatePredictor`] — arrival-rate predictors ([`EwmaPredictor`] and
//!   the naive [`LastValue`] baseline),
//! * [`WorkloadDrift`] — a synthetic workload process (multiplicative
//!   random walk with occasional surges) standing in for real traces,
//! * [`EpochManager`] — runs the allocator epoch by epoch: re-predicts
//!   rates, warm-starts the local search from the previous allocation,
//!   falls back to a full re-solve when the workload moved too much, and
//!   scores each epoch against the *actual* (realized) rates. Under
//!   injected fault events
//!   ([`FaultPlan`](cloudalloc_workload::FaultPlan)) it additionally
//!   runs the repair → shed → escalate state machine ([`RepairPolicy`])
//!   to rescue clients stranded on failed servers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drift;
mod log;
mod manager;
mod predictor;

pub use drift::{DriftConfig, WorkloadDrift};
pub use log::{OperationsLog, OperationsSummary};
pub use manager::{EpochConfig, EpochManager, EpochReport, RepairPolicy, RepairReport};
pub use predictor::{EwmaPredictor, LastValue, RatePredictor};
