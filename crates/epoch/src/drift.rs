//! Synthetic workload evolution between epochs.
//!
//! Stands in for production traces (per the reproduction's substitution
//! rule): each client's true arrival rate follows a clamped
//! multiplicative random walk, with occasional surges — the "large and
//! sudden change in the service generation characteristics of a client"
//! the paper says must be handled at the cloud (not cluster) level.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the workload process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Standard deviation of the per-epoch log-rate step (e.g. 0.1).
    pub volatility: f64,
    /// Probability a client surges in a given epoch.
    pub surge_probability: f64,
    /// Multiplicative surge factor (applied for exactly one epoch).
    pub surge_factor: f64,
    /// Hard clamp on rates, as multiples of each client's base rate.
    pub clamp: (f64, f64),
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self { volatility: 0.08, surge_probability: 0.02, surge_factor: 2.5, clamp: (0.25, 4.0) }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain fields.
    pub fn validate(&self) {
        assert!(self.volatility >= 0.0 && self.volatility.is_finite());
        assert!((0.0..=1.0).contains(&self.surge_probability));
        assert!(self.surge_factor.is_finite() && self.surge_factor > 0.0);
        assert!(self.clamp.0 > 0.0 && self.clamp.1 >= self.clamp.0);
    }
}

/// A deterministic (per seed) workload process over epochs.
#[derive(Debug, Clone)]
pub struct WorkloadDrift {
    config: DriftConfig,
    base: Vec<f64>,
    current: Vec<f64>,
    rng: StdRng,
}

impl WorkloadDrift {
    /// Creates a process anchored at the clients' base rates.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or any base rate is not positive.
    pub fn new(config: DriftConfig, base_rates: &[f64], seed: u64) -> Self {
        config.validate();
        for &r in base_rates {
            assert!(r.is_finite() && r > 0.0, "base rates must be positive, got {r}");
        }
        Self {
            config,
            base: base_rates.to_vec(),
            current: base_rates.to_vec(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Rates in effect right now.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// Advances one epoch and returns the new actual rates. Surges apply
    /// for a single epoch on top of the random walk.
    pub fn step(&mut self) -> Vec<f64> {
        let cfg = self.config;
        for (i, rate) in self.current.iter_mut().enumerate() {
            // Box–Muller from two uniforms keeps us on plain `rand`.
            let u1: f64 = self.rng.gen::<f64>().max(1e-12);
            let u2: f64 = self.rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *rate *= (cfg.volatility * z).exp();
            let (lo, hi) = (self.base[i] * cfg.clamp.0, self.base[i] * cfg.clamp.1);
            *rate = rate.clamp(lo, hi);
        }
        let mut out = self.current.clone();
        for rate in &mut out {
            if self.rng.gen::<f64>() < cfg.surge_probability {
                *rate = (*rate * cfg.surge_factor).min(*rate / self.config.clamp.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_stay_positive_and_clamped() {
        let base = vec![1.0, 2.0, 0.5];
        let mut drift = WorkloadDrift::new(DriftConfig::default(), &base, 1);
        for _ in 0..200 {
            let rates = drift.step();
            for (r, b) in rates.iter().zip(&base) {
                assert!(*r > 0.0 && r.is_finite());
                // Surge can exceed the walk clamp by at most the factor.
                assert!(*r <= b * 4.0 * 2.5 + 1e-9);
            }
        }
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let base = vec![1.5; 4];
        let mut a = WorkloadDrift::new(DriftConfig::default(), &base, 9);
        let mut b = WorkloadDrift::new(DriftConfig::default(), &base, 9);
        for _ in 0..10 {
            assert_eq!(a.step(), b.step());
        }
        let mut c = WorkloadDrift::new(DriftConfig::default(), &base, 10);
        let differs = (0..10).any(|_| a.step() != c.step());
        assert!(differs);
    }

    #[test]
    fn zero_volatility_without_surges_is_constant() {
        let config = DriftConfig { volatility: 0.0, surge_probability: 0.0, ..Default::default() };
        let base = vec![2.0, 3.0];
        let mut drift = WorkloadDrift::new(config, &base, 3);
        for _ in 0..5 {
            assert_eq!(drift.step(), base);
        }
    }

    #[test]
    fn surges_fire_at_the_configured_probability() {
        let config = DriftConfig {
            volatility: 0.0,
            surge_probability: 0.5,
            surge_factor: 2.0,
            ..Default::default()
        };
        let base = vec![1.0; 1000];
        let mut drift = WorkloadDrift::new(config, &base, 7);
        let rates = drift.step();
        let surged = rates.iter().filter(|&&r| r > 1.5).count();
        assert!((300..700).contains(&surged), "surged {surged}/1000");
    }
}
