//! Arrival-rate predictors.
//!
//! The paper allocates with *predicted* rates ("requests for each client
//! are assumed to follow a Poisson distribution with mean predicted based
//! on the behavior of the client") but leaves prediction out of scope.
//! These are the standard online estimators an operator would plug in.

use serde::{Deserialize, Serialize};

/// An online per-client arrival-rate predictor.
pub trait RatePredictor {
    /// Feeds the rates actually observed during the finished epoch.
    fn observe(&mut self, actual: &[f64]);

    /// Predicted rates for the next epoch. Must return one positive rate
    /// per client once at least one observation was fed.
    fn predict(&self) -> Vec<f64>;
}

/// Exponentially-weighted moving average: `r̂ ← (1−a)·r̂ + a·observed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwmaPredictor {
    alpha: f64,
    estimate: Vec<f64>,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor seeded with `initial` rates.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]` or any initial rate is not positive.
    pub fn new(alpha: f64, initial: &[f64]) -> Self {
        assert!(
            alpha.is_finite() && 0.0 < alpha && alpha <= 1.0,
            "alpha must lie in (0,1], got {alpha}"
        );
        for &r in initial {
            assert!(r.is_finite() && r > 0.0, "initial rates must be positive, got {r}");
        }
        Self { alpha, estimate: initial.to_vec() }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl RatePredictor for EwmaPredictor {
    fn observe(&mut self, actual: &[f64]) {
        assert_eq!(actual.len(), self.estimate.len(), "client count changed mid-flight");
        for (e, &a) in self.estimate.iter_mut().zip(actual) {
            assert!(a.is_finite() && a > 0.0, "observed rates must be positive, got {a}");
            *e = (1.0 - self.alpha) * *e + self.alpha * a;
        }
    }

    fn predict(&self) -> Vec<f64> {
        self.estimate.clone()
    }
}

/// The naive baseline: next epoch looks exactly like the last one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LastValue {
    last: Vec<f64>,
}

impl LastValue {
    /// Creates a last-value predictor seeded with `initial` rates.
    ///
    /// # Panics
    ///
    /// Panics if any initial rate is not positive.
    pub fn new(initial: &[f64]) -> Self {
        for &r in initial {
            assert!(r.is_finite() && r > 0.0, "initial rates must be positive, got {r}");
        }
        Self { last: initial.to_vec() }
    }
}

impl RatePredictor for LastValue {
    fn observe(&mut self, actual: &[f64]) {
        assert_eq!(actual.len(), self.last.len(), "client count changed mid-flight");
        self.last.copy_from_slice(actual);
    }

    fn predict(&self) -> Vec<f64> {
        self.last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_a_constant_signal() {
        let mut p = EwmaPredictor::new(0.5, &[1.0]);
        for _ in 0..20 {
            p.observe(&[3.0]);
        }
        assert!((p.predict()[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn ewma_smooths_noise_more_than_last_value() {
        let signal = [2.0, 4.0, 2.0, 4.0, 2.0, 4.0];
        let mut ewma = EwmaPredictor::new(0.2, &[3.0]);
        let mut last = LastValue::new(&[3.0]);
        let mut ewma_err = 0.0;
        let mut last_err = 0.0;
        // True mean is 3; compare squared error of the forecasts.
        for &s in &signal {
            ewma_err += (ewma.predict()[0] - 3.0_f64).powi(2);
            last_err += (last.predict()[0] - 3.0_f64).powi(2);
            ewma.observe(&[s]);
            last.observe(&[s]);
        }
        assert!(ewma_err < last_err, "EWMA {ewma_err} vs last-value {last_err}");
    }

    #[test]
    fn alpha_one_equals_last_value() {
        let mut e = EwmaPredictor::new(1.0, &[1.0, 2.0]);
        let mut l = LastValue::new(&[1.0, 2.0]);
        for obs in [[2.5, 0.5], [1.5, 4.0]] {
            e.observe(&obs);
            l.observe(&obs);
            assert_eq!(e.predict(), l.predict());
        }
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (0,1]")]
    fn rejects_zero_alpha() {
        let _ = EwmaPredictor::new(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "client count changed")]
    fn rejects_mismatched_observation_length() {
        let mut p = EwmaPredictor::new(0.5, &[1.0]);
        p.observe(&[1.0, 2.0]);
    }
}
