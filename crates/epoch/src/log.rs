//! Accumulated epoch history: the operator's view of how the allocator
//! performed over a day/week of epochs.

use serde::{Deserialize, Serialize};

use crate::manager::EpochReport;

/// A rolling log of epoch reports with summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OperationsLog {
    reports: Vec<EpochReport>,
}

/// Aggregate view over a span of epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationsSummary {
    /// Epochs recorded.
    pub epochs: usize,
    /// Total realized profit.
    pub total_profit: f64,
    /// Mean per-epoch gap between planned and realized profit,
    /// relative to the planned magnitude (`(planned − realized)/|planned|`);
    /// positive means systematic over-promising.
    pub mean_plan_gap: f64,
    /// Fraction of epochs that needed a full re-solve.
    pub replan_rate: f64,
    /// Fraction of (client, epoch) pairs whose SLA blew up
    /// (served-but-unstable under realized rates).
    pub instability_rate: f64,
    /// Mean absolute relative prediction error across epochs.
    pub mean_prediction_error: f64,
    /// Fraction of epochs that needed a mid-epoch fault repair.
    pub repair_rate: f64,
    /// Clients shed across all repairs (victims without a profitable
    /// rescue plus admission-control sheds).
    pub total_shed: usize,
    /// Repairs that escalated to full re-solves.
    pub escalations: usize,
}

impl OperationsLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch's report.
    pub fn record(&mut self, report: EpochReport) {
        self.reports.push(report);
    }

    /// The raw reports, in arrival order.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Summarizes the recorded span for `num_clients` clients.
    ///
    /// # Panics
    ///
    /// Panics when the log is empty or `num_clients == 0`.
    pub fn summary(&self, num_clients: usize) -> OperationsSummary {
        assert!(!self.reports.is_empty(), "cannot summarize an empty log");
        assert!(num_clients > 0, "need at least one client");
        let n = self.reports.len() as f64;
        let total_profit: f64 = self.reports.iter().map(|r| r.actual_profit).sum();
        let mean_plan_gap = self
            .reports
            .iter()
            .map(|r| (r.predicted_profit - r.actual_profit) / r.predicted_profit.abs().max(1e-9))
            .sum::<f64>()
            / n;
        let replan_rate = self.reports.iter().filter(|r| r.resolved_fully).count() as f64 / n;
        let instability_rate = self
            .reports
            .iter()
            .map(|r| r.unstable_clients as f64 / num_clients as f64)
            .sum::<f64>()
            / n;
        let mean_prediction_error =
            self.reports.iter().map(|r| r.prediction_error).sum::<f64>() / n;
        let repairs: Vec<_> = self.reports.iter().filter_map(|r| r.repair.as_ref()).collect();
        let repair_rate = repairs.len() as f64 / n;
        let total_shed = repairs.iter().map(|r| r.shed + r.shed_low_utility).sum();
        let escalations = repairs.iter().filter(|r| r.escalated).count();
        OperationsSummary {
            epochs: self.reports.len(),
            total_profit,
            mean_plan_gap,
            replan_rate,
            instability_rate,
            mean_prediction_error,
            repair_rate,
            total_shed,
            escalations,
        }
    }
}

impl Extend<EpochReport> for OperationsLog {
    fn extend<I: IntoIterator<Item = EpochReport>>(&mut self, iter: I) {
        self.reports.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: usize, planned: f64, actual: f64, unstable: usize, full: bool) -> EpochReport {
        EpochReport {
            epoch,
            resolved_fully: full,
            predicted_profit: planned,
            actual_profit: actual,
            unstable_clients: unstable,
            active_servers: 10,
            prediction_error: 0.1,
            repair: None,
        }
    }

    #[test]
    fn summary_aggregates_the_span() {
        let mut log = OperationsLog::new();
        log.extend([report(0, 10.0, 8.0, 1, false), report(1, 10.0, 12.0, 0, true)]);
        let s = log.summary(10);
        assert_eq!(s.epochs, 2);
        assert!((s.total_profit - 20.0).abs() < 1e-12);
        // Gaps: (10−8)/10 = 0.2 and (10−12)/10 = −0.2 → mean 0.
        assert!(s.mean_plan_gap.abs() < 1e-12);
        assert!((s.replan_rate - 0.5).abs() < 1e-12);
        assert!((s.instability_rate - 0.05).abs() < 1e-12);
        assert!((s.mean_prediction_error - 0.1).abs() < 1e-12);
        assert_eq!(s.repair_rate, 0.0);
        assert_eq!((s.total_shed, s.escalations), (0, 0));
    }

    #[test]
    fn summary_aggregates_repairs() {
        use crate::manager::RepairReport;
        let mut log = OperationsLog::new();
        let mut faulted = report(0, 10.0, 8.0, 0, false);
        faulted.repair = Some(RepairReport {
            failed_servers: 2,
            victims: 3,
            evicted: 4,
            redispersed: 1,
            replaced: 1,
            shed: 1,
            shed_low_utility: 2,
            stale_profit: 3.0,
            naive_profit: 5.0,
            repaired_profit: 7.0,
            used_naive_fallback: false,
            escalated: true,
            resolve_retries: 1,
        });
        log.extend([faulted, report(1, 10.0, 9.0, 0, false)]);
        let s = log.summary(10);
        assert!((s.repair_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.total_shed, 3);
        assert_eq!(s.escalations, 1);
    }

    #[test]
    fn log_tracks_length() {
        let mut log = OperationsLog::new();
        assert!(log.is_empty());
        log.record(report(0, 1.0, 1.0, 0, false));
        assert_eq!(log.len(), 1);
        assert_eq!(log.reports()[0].epoch, 0);
    }

    #[test]
    #[should_panic(expected = "empty log")]
    fn empty_summary_panics() {
        OperationsLog::new().summary(5);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = OperationsLog::new();
        log.record(report(0, 2.0, 1.5, 2, true));
        let json = serde_json::to_string(&log).unwrap();
        assert_eq!(serde_json::from_str::<OperationsLog>(&json).unwrap(), log);
    }
}
