//! Property tests pinning the [`CompiledSystem`] lowering to the
//! [`CloudSystem`] frontend accessors: on arbitrary built systems, every
//! compiled field must agree — bit-for-bit for cached floats — with the
//! frontend value it replaces, and re-lowering after a system mutation
//! (`with_predicted_rates`) must stay consistent with the mutated model.

use cloudalloc_model::{
    BackgroundLoad, Client, ClientId, CloudSystem, Cluster, ClusterId, CompiledSystem, Server,
    ServerClass, ServerClassId, ServerId, UtilityClass, UtilityClassId, UtilityFunction,
};
use proptest::prelude::*;

/// One server row of a [`SystemSpec`]: (class index, cluster index,
/// optional background `(φ^p, φ^c)`).
type ServerSpec = (usize, usize, Option<(f64, f64)>);

/// Compact recipe for one arbitrary system; kept as plain data so shrunk
/// counterexamples print readably.
#[derive(Debug, Clone)]
struct SystemSpec {
    classes: Vec<(f64, f64, f64, f64, f64)>,
    utilities: Vec<(f64, f64)>,
    servers: Vec<ServerSpec>,
    num_clusters: usize,
    /// Per client: (utility index, λ, λ̃, t̄p, t̄c, storage).
    clients: Vec<(usize, f64, f64, f64, f64, f64)>,
}

fn build(spec: &SystemSpec) -> CloudSystem {
    let classes: Vec<ServerClass> = spec
        .classes
        .iter()
        .enumerate()
        .map(|(i, &(cp, cs, cc, p0, p1))| ServerClass::new(ServerClassId(i), cp, cs, cc, p0, p1))
        .collect();
    let utilities: Vec<UtilityClass> = spec
        .utilities
        .iter()
        .enumerate()
        .map(|(i, &(intercept, slope))| {
            UtilityClass::new(UtilityClassId(i), UtilityFunction::linear(intercept, slope))
        })
        .collect();
    let mut sys = CloudSystem::new(classes, utilities);
    for k in 0..spec.num_clusters {
        sys.add_cluster(Cluster::new(ClusterId(k)));
    }
    for &(class, cluster, bg) in &spec.servers {
        let class = ServerClassId(class % spec.classes.len());
        let cluster = ClusterId(cluster % spec.num_clusters);
        match bg {
            None => sys.add_server(Server::new(class, cluster)),
            Some((phi_p, phi_c)) => sys.add_server_with_background(
                Server::new(class, cluster),
                BackgroundLoad::new(phi_p, phi_c, 0.0),
            ),
        };
    }
    for (i, &(util, rate_p, rate_a, exec_p, exec_c, storage)) in spec.clients.iter().enumerate() {
        sys.add_client(Client::new(
            ClientId(i),
            UtilityClassId(util % spec.utilities.len()),
            rate_p,
            rate_a,
            exec_p,
            exec_c,
            storage,
        ));
    }
    sys
}

fn arb_spec() -> impl Strategy<Value = SystemSpec> {
    let pos = 0.1f64..8.0;
    let classes = proptest::collection::vec(
        (pos.clone(), pos.clone(), pos.clone(), 0.0f64..4.0, 0.0f64..2.0),
        1..4,
    );
    let utilities = proptest::collection::vec((0.5f64..5.0, 0.05f64..2.0), 1..3);
    let servers = proptest::collection::vec(
        (0usize..8, 0usize..8, any::<bool>(), 0.0f64..0.5, 0.0f64..0.5),
        1..10,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(class, cluster, has_bg, phi_p, phi_c)| {
                (class, cluster, has_bg.then_some((phi_p, phi_c)))
            })
            .collect::<Vec<_>>()
    });
    let clients = proptest::collection::vec(
        (0usize..8, pos.clone(), pos.clone(), pos.clone(), pos, 0.0f64..2.0),
        0..8,
    );
    (classes, utilities, servers, 1usize..4, clients).prop_map(
        |(classes, utilities, servers, num_clusters, clients)| SystemSpec {
            classes,
            utilities,
            servers,
            num_clusters,
            clients,
        },
    )
}

/// Every compiled field must agree with the frontend accessor it caches;
/// float caches must agree bit-for-bit.
fn assert_agreement(sys: &CloudSystem, cs: &CompiledSystem<'_>) {
    assert_eq!(cs.num_clients(), sys.num_clients());
    assert_eq!(cs.num_servers(), sys.num_servers());
    assert_eq!(cs.num_clusters(), sys.num_clusters());

    for j in 0..sys.num_servers() {
        let id = ServerId(j);
        let class = sys.class_of(id);
        assert_eq!(cs.class_index(id), sys.server(id).class.index());
        assert_eq!(cs.cluster_index(id), sys.server(id).cluster.index());
        assert!(std::ptr::eq(cs.class_of(id), class), "server {j}: class identity");
        assert_eq!(cs.cap_processing(id).to_bits(), class.cap_processing.to_bits());
        assert_eq!(cs.cap_communication(id).to_bits(), class.cap_communication.to_bits());
        assert_eq!(cs.cap_storage(id).to_bits(), class.cap_storage.to_bits());
        assert_eq!(cs.cost_fixed(id).to_bits(), class.cost_fixed.to_bits());
        assert_eq!(cs.cost_per_utilization(id).to_bits(), class.cost_per_utilization.to_bits());
        assert_eq!(cs.background(id), sys.background(id));
        let sref = cs.server_ref(id);
        assert_eq!(sref.id, id);
        assert!(std::ptr::eq(sref.class, class));
    }

    for k in 0..sys.num_clusters() {
        let cluster = ClusterId(k);
        let frontend: Vec<ServerId> = sys.servers_in(cluster).map(|s| s.id).collect();
        assert_eq!(cs.cluster_servers(cluster), &frontend[..], "cluster {k}: scan order");
        let compiled: Vec<ServerId> = cs.servers_in(cluster).map(|s| s.id).collect();
        assert_eq!(compiled, frontend, "cluster {k}: servers_in order");
    }

    for c in sys.clients() {
        assert_eq!(cs.rate_predicted(c.id).to_bits(), c.rate_predicted.to_bits());
        assert_eq!(cs.rate_agreed(c.id).to_bits(), c.rate_agreed.to_bits());
        assert_eq!(cs.exec_processing(c.id).to_bits(), c.exec_processing.to_bits());
        assert_eq!(cs.exec_communication(c.id).to_bits(), c.exec_communication.to_bits());
        assert_eq!(cs.client_storage(c.id).to_bits(), c.storage.to_bits());
        assert_eq!(cs.utility_index(c.id), c.utility_class.index());
        assert!(std::ptr::eq(cs.utility(c.id), sys.utility_of(c.id)), "{}: utility", c.id);
        let marginal = c.rate_agreed * sys.utility_of(c.id).reference_slope();
        assert_eq!(cs.ref_marginal(c.id).to_bits(), marginal.to_bits());
        assert_eq!(cs.ref_weight(c.id).to_bits(), marginal.max(1e-9).to_bits());
        for (ci, class) in sys.server_classes().iter().enumerate() {
            let m_p = class.cap_processing / c.exec_processing;
            let m_c = class.cap_communication / c.exec_communication;
            assert_eq!(cs.m_p(ci, c.id).to_bits(), m_p.to_bits(), "m_p[{ci}][{}]", c.id);
            assert_eq!(cs.m_c(ci, c.id).to_bits(), m_c.to_bits(), "m_c[{ci}][{}]", c.id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lowering an arbitrary built system reproduces every frontend fact.
    #[test]
    fn compiled_fields_agree_with_frontend(spec in arb_spec()) {
        let sys = build(&spec);
        prop_assert!(sys.validate().is_ok(), "generated system must be valid");
        let cs = CompiledSystem::new(&sys);
        assert_agreement(&sys, &cs);
    }

    /// Mutating the system (new predicted rates per epoch) and re-lowering
    /// stays consistent: the new view reflects the mutation and the old
    /// system is untouched.
    #[test]
    fn relowering_after_mutation_stays_consistent(
        spec in arb_spec(),
        scale in 0.25f64..4.0,
    ) {
        let sys = build(&spec);
        let rates: Vec<f64> =
            sys.clients().iter().map(|c| c.rate_predicted * scale).collect();
        let mutated = sys.with_predicted_rates(&rates);
        let cs = CompiledSystem::new(&mutated);
        assert_agreement(&mutated, &cs);
        for (c, &rate) in mutated.clients().iter().zip(&rates) {
            prop_assert_eq!(cs.rate_predicted(c.id).to_bits(), rate.to_bits());
        }
        // The original system still lowers to its own (unscaled) rates.
        let original = CompiledSystem::new(&sys);
        assert_agreement(&sys, &original);
    }
}
