//! The [`CloudSystem`]: the full static description of one decision epoch.

use serde::{Deserialize, Serialize};

use crate::client::Client;
use crate::cluster::{BackgroundLoad, Cluster};
use crate::error::ModelError;
use crate::ids::{ClientId, ClusterId, ServerClassId, ServerId, UtilityClassId};
use crate::server::{Server, ServerClass, ServerRef};
use crate::utility::{UtilityClass, UtilityFunction};

/// Everything the resource manager knows at the start of a decision epoch:
/// the hardware catalog, the cluster topology, the pre-existing background
/// load, and the client population with its SLAs.
///
/// `CloudSystem` is immutable during optimization; all decisions live in a
/// separate [`crate::Allocation`]. Entities are stored densely and addressed
/// by their typed ids, which double as indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudSystem {
    server_classes: Vec<ServerClass>,
    utility_classes: Vec<UtilityClass>,
    clusters: Vec<Cluster>,
    servers: Vec<Server>,
    background: Vec<BackgroundLoad>,
    clients: Vec<Client>,
}

impl CloudSystem {
    /// Creates a system from a hardware catalog and an SLA catalog,
    /// reporting catalog-position mismatches as typed errors.
    pub fn try_new(
        server_classes: Vec<ServerClass>,
        utility_classes: Vec<UtilityClass>,
    ) -> Result<Self, ModelError> {
        for (pos, sc) in server_classes.iter().enumerate() {
            if sc.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "server class",
                    slot: "catalog",
                    declared: sc.id.index(),
                    position: pos,
                });
            }
        }
        for (pos, uc) in utility_classes.iter().enumerate() {
            if uc.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "utility class",
                    slot: "catalog",
                    declared: uc.id.index(),
                    position: pos,
                });
            }
        }
        Ok(Self {
            server_classes,
            utility_classes,
            clusters: Vec::new(),
            servers: Vec::new(),
            background: Vec::new(),
            clients: Vec::new(),
        })
    }

    /// Creates a system from a hardware catalog and an SLA catalog.
    ///
    /// # Panics
    ///
    /// Panics if any catalog entry's id does not match its position.
    pub fn new(server_classes: Vec<ServerClass>, utility_classes: Vec<UtilityClass>) -> Self {
        Self::try_new(server_classes, utility_classes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a cluster, returning its id, or a typed error when the
    /// declared id does not match its position or the cluster already
    /// lists servers (servers are attached via [`CloudSystem::add_server`]).
    pub fn try_add_cluster(&mut self, cluster: Cluster) -> Result<ClusterId, ModelError> {
        if cluster.id.index() != self.clusters.len() {
            return Err(ModelError::IdMismatch {
                kind: "cluster",
                slot: "insertion",
                declared: cluster.id.index(),
                position: self.clusters.len(),
            });
        }
        if !cluster.is_empty() {
            return Err(ModelError::NonEmptyCluster);
        }
        let id = cluster.id;
        self.clusters.push(cluster);
        Ok(id)
    }

    /// Adds a cluster, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the cluster's declared id does not match its position or
    /// it already lists servers (servers are attached via [`add_server`]).
    ///
    /// [`add_server`]: CloudSystem::add_server
    pub fn add_cluster(&mut self, cluster: Cluster) -> ClusterId {
        self.try_add_cluster(cluster).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a server with no background load, returning its global id or
    /// a typed error for unknown class/cluster references.
    pub fn try_add_server(&mut self, server: Server) -> Result<ServerId, ModelError> {
        self.try_add_server_with_background(server, BackgroundLoad::default())
    }

    /// Adds a server with no background load, returning its global id.
    ///
    /// # Panics
    ///
    /// Panics if the server references an unknown class or cluster.
    pub fn add_server(&mut self, server: Server) -> ServerId {
        self.try_add_server(server).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a server that already carries background load, returning a
    /// typed error for unknown references or background storage that does
    /// not fit the class.
    pub fn try_add_server_with_background(
        &mut self,
        server: Server,
        background: BackgroundLoad,
    ) -> Result<ServerId, ModelError> {
        let class =
            self.server_classes.get(server.class.index()).ok_or(ModelError::UnknownEntity {
                kind: "server class",
                index: server.class.index(),
            })?;
        if background.storage > class.cap_storage {
            return Err(ModelError::BackgroundStorageOverflow {
                used: background.storage,
                capacity: class.cap_storage,
            });
        }
        if server.cluster.index() >= self.clusters.len() {
            return Err(ModelError::UnknownEntity {
                kind: "cluster",
                index: server.cluster.index(),
            });
        }
        let id = ServerId(self.servers.len());
        self.clusters[server.cluster.index()].servers.push(id);
        self.servers.push(server);
        self.background.push(background);
        Ok(id)
    }

    /// Adds a server that already carries background load.
    ///
    /// # Panics
    ///
    /// Panics if the server references an unknown class or cluster, or the
    /// background storage exceeds the class's storage capacity.
    pub fn add_server_with_background(
        &mut self,
        server: Server,
        background: BackgroundLoad,
    ) -> ServerId {
        self.try_add_server_with_background(server, background).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a client, returning its id or a typed error when the declared
    /// id does not match its position or the utility class is unknown.
    pub fn try_add_client(&mut self, client: Client) -> Result<ClientId, ModelError> {
        if client.id.index() != self.clients.len() {
            return Err(ModelError::IdMismatch {
                kind: "client",
                slot: "insertion",
                declared: client.id.index(),
                position: self.clients.len(),
            });
        }
        if client.utility_class.index() >= self.utility_classes.len() {
            return Err(ModelError::UnknownEntity {
                kind: "utility class",
                index: client.utility_class.index(),
            });
        }
        let id = client.id;
        self.clients.push(client);
        Ok(id)
    }

    /// Adds a client, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the client's declared id does not match its position or it
    /// references an unknown utility class.
    pub fn add_client(&mut self, client: Client) -> ClientId {
        self.try_add_client(client).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reserves exact capacity for `additional` further clients, so a
    /// streaming producer that knows its population up front appends
    /// without amortized-doubling overshoot (at a million clients the
    /// doubling transiently holds ~1.5× the final vector).
    pub fn reserve_clients(&mut self, additional: usize) {
        self.clients.reserve_exact(additional);
    }

    /// Full consistency check for systems that *bypassed* the fallible
    /// constructors — serde derives on the private fields mean a
    /// deserialized JSON scenario never went through `try_add_*`. The CLI
    /// calls this right after loading untrusted input.
    ///
    /// Verifies the structural invariants (ids match positions, every
    /// reference resolves, cluster membership lists agree with the server
    /// records) and the numeric domains every panicking constructor
    /// enforces.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (pos, sc) in self.server_classes.iter().enumerate() {
            if sc.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "server class",
                    slot: "catalog",
                    declared: sc.id.index(),
                    position: pos,
                });
            }
            sc.validate()?;
        }
        for (pos, uc) in self.utility_classes.iter().enumerate() {
            if uc.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "utility class",
                    slot: "catalog",
                    declared: uc.id.index(),
                    position: pos,
                });
            }
            uc.function.validate()?;
        }
        if self.background.len() != self.servers.len() {
            return Err(ModelError::Inconsistent {
                what: format!(
                    "{} background entries for {} servers",
                    self.background.len(),
                    self.servers.len()
                ),
            });
        }
        for (pos, cluster) in self.clusters.iter().enumerate() {
            if cluster.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "cluster",
                    slot: "insertion",
                    declared: cluster.id.index(),
                    position: pos,
                });
            }
        }
        let mut listed = vec![false; self.servers.len()];
        for cluster in &self.clusters {
            for &sid in &cluster.servers {
                let Some(server) = self.servers.get(sid.index()) else {
                    return Err(ModelError::UnknownEntity { kind: "server", index: sid.index() });
                };
                if server.cluster != cluster.id {
                    return Err(ModelError::Inconsistent {
                        what: format!(
                            "{sid} is listed by {} but records {}",
                            cluster.id, server.cluster
                        ),
                    });
                }
                if std::mem::replace(&mut listed[sid.index()], true) {
                    return Err(ModelError::Inconsistent {
                        what: format!("{sid} appears twice in cluster membership lists"),
                    });
                }
            }
        }
        if let Some(unlisted) = listed.iter().position(|&seen| !seen) {
            return Err(ModelError::Inconsistent {
                what: format!("s{unlisted} is missing from its cluster's membership list"),
            });
        }
        for (server, background) in self.servers.iter().zip(&self.background) {
            let class =
                self.server_classes.get(server.class.index()).ok_or(ModelError::UnknownEntity {
                    kind: "server class",
                    index: server.class.index(),
                })?;
            if server.cluster.index() >= self.clusters.len() {
                return Err(ModelError::UnknownEntity {
                    kind: "cluster",
                    index: server.cluster.index(),
                });
            }
            background.validate()?;
            if background.storage > class.cap_storage {
                return Err(ModelError::BackgroundStorageOverflow {
                    used: background.storage,
                    capacity: class.cap_storage,
                });
            }
        }
        for (pos, client) in self.clients.iter().enumerate() {
            if client.id.index() != pos {
                return Err(ModelError::IdMismatch {
                    kind: "client",
                    slot: "insertion",
                    declared: client.id.index(),
                    position: pos,
                });
            }
            if client.utility_class.index() >= self.utility_classes.len() {
                return Err(ModelError::UnknownEntity {
                    kind: "utility class",
                    index: client.utility_class.index(),
                });
            }
            client.validate()?;
        }
        Ok(())
    }

    /// The hardware catalog.
    pub fn server_classes(&self) -> &[ServerClass] {
        &self.server_classes
    }

    /// The SLA catalog.
    pub fn utility_classes(&self) -> &[UtilityClass] {
        &self.utility_classes
    }

    /// All clusters in id order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All servers in global-id order.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// All clients in id order.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of servers across all clusters.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Looks up a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// Looks up a server.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.index()]
    }

    /// Looks up a client.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn client(&self, id: ClientId) -> &Client {
        &self.clients[id.index()]
    }

    /// Looks up a server class.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server_class(&self, id: ServerClassId) -> &ServerClass {
        &self.server_classes[id.index()]
    }

    /// Looks up a utility class.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn utility_class(&self, id: UtilityClassId) -> &UtilityClass {
        &self.utility_classes[id.index()]
    }

    /// Resolved hardware class of server `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn class_of(&self, id: ServerId) -> &ServerClass {
        self.server_class(self.server(id).class)
    }

    /// Utility function of client `id`'s SLA class.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn utility_of(&self, id: ClientId) -> &UtilityFunction {
        &self.utility_class(self.client(id).utility_class).function
    }

    /// Background load of server `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn background(&self, id: ServerId) -> BackgroundLoad {
        self.background[id.index()]
    }

    /// Resolved view of server `id` — the shared [`ServerRef`]
    /// construction site used by every iteration helper.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server_ref(&self, id: ServerId) -> ServerRef<'_> {
        let server = self.server(id);
        ServerRef { id, server, class: self.server_class(server.class) }
    }

    /// Iterates over the servers of cluster `cluster` with resolved classes.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn servers_in(&self, cluster: ClusterId) -> impl Iterator<Item = ServerRef<'_>> + '_ {
        self.clusters[cluster.index()].servers.iter().map(move |&id| self.server_ref(id))
    }

    /// Iterates over every server in the system with resolved classes.
    pub fn all_servers(&self) -> impl Iterator<Item = ServerRef<'_>> + '_ {
        (0..self.servers.len()).map(move |idx| self.server_ref(ServerId(idx)))
    }

    /// Total raw processing capacity of the datacenter (sum of `C^p` over
    /// all servers), a quick sizing aid for workload generators.
    pub fn total_processing_capacity(&self) -> f64 {
        self.servers.iter().map(|s| self.server_class(s.class).cap_processing).sum()
    }

    /// Total predicted processing demand `Σ_i λ_i t̄^p_i` of all clients.
    pub fn total_processing_demand(&self) -> f64 {
        self.clients.iter().map(Client::min_processing_capacity).sum()
    }

    /// A copy of the system with every client's *predicted* arrival rate
    /// replaced (contract/agreed rates unchanged) — how a new decision
    /// epoch re-parameterizes the allocation problem.
    ///
    /// # Panics
    ///
    /// Panics if `rates` does not hold one positive rate per client.
    pub fn with_predicted_rates(&self, rates: &[f64]) -> CloudSystem {
        assert_eq!(rates.len(), self.clients.len(), "one rate per client required");
        let mut next = self.clone();
        for (client, &rate) in next.clients.iter_mut().zip(rates) {
            assert!(rate.is_finite() && rate > 0.0, "rates must be positive, got {rate}");
            client.rate_predicted = rate;
        }
        next
    }

    /// A copy of the system with the client population *replaced* — the
    /// admission server's population seam. The hardware catalog, cluster
    /// topology and background load carry over verbatim while the set of
    /// clients under contract changes between requests; each client is
    /// re-admitted through [`CloudSystem::try_add_client`], so id-equals-
    /// position and utility-class references are re-checked and any
    /// mismatch surfaces as a typed error instead of a panic.
    pub fn try_with_clients(&self, clients: Vec<Client>) -> Result<CloudSystem, ModelError> {
        let mut next = self.clone();
        next.clients.clear();
        next.clients.reserve_exact(clients.len());
        for client in clients {
            client.validate()?;
            next.try_add_client(client)?;
        }
        Ok(next)
    }

    /// A copy of the system where each listed server is *dead*: its class
    /// is swapped for a zero-cost twin with vanishing processing and
    /// communication capacity, and its background load saturates both
    /// shares and all storage.
    ///
    /// This masking keeps every hot path honest without special-casing
    /// failure anywhere: the saturated background leaves no free share or
    /// storage, so candidate search can never place new load on a dead
    /// server; a stale placement that still points at one sees a vanishing
    /// service rate, making its queue unstable — the client earns zero
    /// revenue until repaired; and the zero-cost twin means a dead server
    /// charges nothing whether or not stale shares keep it nominally ON.
    /// The masked copy passes [`CloudSystem::validate`] (dead twins are
    /// appended to the catalog, preserving id-equals-position).
    ///
    /// An empty `failed` list returns a plain clone, so fault-free paths
    /// stay bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn with_failed_servers(&self, failed: &[ServerId]) -> CloudSystem {
        // Small enough to starve any queue, large enough that derived
        // quantities (inverse service rates, utilizations) stay finite.
        const DEAD_CAPACITY: f64 = 1e-12;
        if failed.is_empty() {
            return self.clone();
        }
        let mut next = self.clone();
        // One dead twin per distinct original class, minted on demand.
        let mut dead_twin: Vec<Option<ServerClassId>> = vec![None; self.server_classes.len()];
        for &sid in failed {
            let orig = next.servers[sid.index()].class;
            if orig.index() >= dead_twin.len() {
                // Already repointed at a twin (duplicate id in `failed`).
                continue;
            }
            let twin = *dead_twin[orig.index()].get_or_insert_with(|| {
                let id = ServerClassId(next.server_classes.len());
                let original = &next.server_classes[orig.index()];
                next.server_classes.push(ServerClass {
                    id,
                    cap_processing: DEAD_CAPACITY,
                    cap_storage: original.cap_storage,
                    cap_communication: DEAD_CAPACITY,
                    cost_fixed: 0.0,
                    cost_per_utilization: 0.0,
                });
                id
            });
            next.servers[sid.index()].class = twin;
            let storage = next.server_classes[twin.index()].cap_storage;
            next.background[sid.index()] = BackgroundLoad::new(1.0, 1.0, storage);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_system() -> CloudSystem {
        let classes = vec![
            ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5),
            ServerClass::new(ServerClassId(1), 2.0, 6.0, 3.0, 2.0, 1.0),
        ];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = sys.add_cluster(Cluster::new(ClusterId(1)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server(Server::new(ServerClassId(1), k0));
        sys.add_server(Server::new(ServerClassId(0), k1));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 1.0));
        sys
    }

    #[test]
    fn servers_are_attached_to_their_clusters() {
        let sys = two_cluster_system();
        assert_eq!(sys.num_servers(), 3);
        assert_eq!(sys.cluster(ClusterId(0)).servers, vec![ServerId(0), ServerId(1)]);
        assert_eq!(sys.cluster(ClusterId(1)).servers, vec![ServerId(2)]);
        assert_eq!(sys.server(ServerId(2)).cluster, ClusterId(1));
    }

    #[test]
    fn servers_in_resolves_classes() {
        let sys = two_cluster_system();
        let caps: Vec<f64> = sys.servers_in(ClusterId(0)).map(|s| s.class.cap_processing).collect();
        assert_eq!(caps, vec![4.0, 2.0]);
        assert_eq!(sys.all_servers().count(), 3);
    }

    #[test]
    fn capacity_and_demand_totals() {
        let sys = two_cluster_system();
        assert!((sys.total_processing_capacity() - 10.0).abs() < 1e-12);
        assert!((sys.total_processing_demand() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lookups_resolve_client_utility() {
        let sys = two_cluster_system();
        assert_eq!(sys.utility_of(ClientId(0)).value(0.0), 2.0);
        assert_eq!(sys.class_of(ServerId(1)).cap_storage, 6.0);
        assert!(sys.background(ServerId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "client id must match")]
    fn rejects_out_of_order_client_ids() {
        let mut sys = two_cluster_system();
        sys.add_client(Client::new(ClientId(5), UtilityClassId(0), 1.0, 1.0, 1.0, 1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "unknown server class")]
    fn rejects_unknown_server_class() {
        let mut sys = two_cluster_system();
        sys.add_server(Server::new(ServerClassId(9), ClusterId(0)));
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn rejects_unknown_cluster() {
        let mut sys = two_cluster_system();
        sys.add_server(Server::new(ServerClassId(0), ClusterId(9)));
    }

    #[test]
    #[should_panic(expected = "background storage")]
    fn rejects_oversized_background_storage() {
        let mut sys = two_cluster_system();
        sys.add_server_with_background(
            Server::new(ServerClassId(0), ClusterId(0)),
            BackgroundLoad::new(0.0, 0.0, 100.0),
        );
    }

    #[test]
    fn serde_round_trip() {
        let sys = two_cluster_system();
        let json = serde_json::to_string(&sys).unwrap();
        assert_eq!(serde_json::from_str::<CloudSystem>(&json).unwrap(), sys);
    }

    #[test]
    fn validate_accepts_constructed_systems() {
        two_cluster_system().validate().expect("constructed systems are consistent");
    }

    #[test]
    fn try_constructors_report_typed_errors() {
        let mut sys = two_cluster_system();
        assert!(matches!(
            sys.try_add_server(Server::new(ServerClassId(9), ClusterId(0))),
            Err(ModelError::UnknownEntity { kind: "server class", index: 9 })
        ));
        assert!(matches!(
            sys.try_add_server(Server::new(ServerClassId(0), ClusterId(9))),
            Err(ModelError::UnknownEntity { kind: "cluster", index: 9 })
        ));
        assert!(matches!(
            sys.try_add_cluster(Cluster::new(ClusterId(7))),
            Err(ModelError::IdMismatch { kind: "cluster", .. })
        ));
        assert!(matches!(
            sys.try_add_client(Client::new(
                ClientId(5),
                UtilityClassId(0),
                1.0,
                1.0,
                1.0,
                1.0,
                0.0
            )),
            Err(ModelError::IdMismatch { kind: "client", .. })
        ));
        assert!(matches!(
            sys.try_add_server_with_background(
                Server::new(ServerClassId(0), ClusterId(0)),
                BackgroundLoad::new(0.0, 0.0, 100.0),
            ),
            Err(ModelError::BackgroundStorageOverflow { .. })
        ));
        // Failed attempts must not have mutated the system.
        sys.validate().expect("rejected inserts leave the system consistent");
        assert_eq!(sys.num_servers(), 3);
        assert_eq!(sys.num_clients(), 1);
    }

    #[test]
    fn validate_catches_serde_smuggled_domain_violations() {
        // Serde derives bypass the fallible constructors entirely, so a
        // JSON scenario can smuggle out-of-domain numbers; validate() is
        // the CLI's defense. Corrupt a distinctive value in transit.
        let mut sys = two_cluster_system();
        sys.add_client(Client::new(ClientId(1), UtilityClassId(0), 7.25, 1.0, 0.5, 0.5, 1.0));
        let json = serde_json::to_string(&sys).unwrap();
        let bad = json.replace("7.25", "-7.25");
        let smuggled: CloudSystem = serde_json::from_str(&bad).unwrap();
        assert!(matches!(
            smuggled.validate(),
            Err(ModelError::OutOfRange { field: "rate_predicted", .. })
        ));
    }

    #[test]
    fn validate_catches_serde_smuggled_membership_corruption() {
        let sys = two_cluster_system();
        let json = serde_json::to_string(&sys).unwrap();
        // Cluster 1 owns server 2; rewriting the membership list to claim
        // server 0 (owned by cluster 0) must be caught.
        let corrupted = json.replacen("[2]", "[0]", 1);
        assert_ne!(corrupted, json, "fixture drifted: cluster 1 no longer serializes as [2]");
        let smuggled: CloudSystem = serde_json::from_str(&corrupted).unwrap();
        assert!(matches!(smuggled.validate(), Err(ModelError::Inconsistent { .. })));
    }

    #[test]
    fn server_ref_resolves_id_record_and_class() {
        let sys = two_cluster_system();
        let r = sys.server_ref(ServerId(1));
        assert_eq!(r.id, ServerId(1));
        assert!(std::ptr::eq(r.server, sys.server(ServerId(1))));
        assert!(std::ptr::eq(r.class, sys.class_of(ServerId(1))));
    }

    #[test]
    fn failed_server_masking_starves_and_uncosts_dead_servers() {
        let sys = two_cluster_system();
        let masked = sys.with_failed_servers(&[ServerId(0), ServerId(2)]);
        masked.validate().unwrap();
        // Both dead servers share class 0, so exactly one twin is minted.
        assert_eq!(masked.server_classes().len(), sys.server_classes().len() + 1);
        for sid in [ServerId(0), ServerId(2)] {
            let class = masked.class_of(sid);
            assert!(class.cap_processing < 1e-9);
            assert!(class.cap_communication < 1e-9);
            assert_eq!(class.cost_fixed, 0.0);
            assert_eq!(class.cost_per_utilization, 0.0);
            let bg = masked.background(sid);
            assert_eq!(bg.phi_p, 1.0);
            assert_eq!(bg.phi_c, 1.0);
            assert_eq!(bg.storage, class.cap_storage);
        }
        // Survivors are untouched.
        assert_eq!(masked.class_of(ServerId(1)), sys.class_of(ServerId(1)));
        assert_eq!(masked.background(ServerId(1)), sys.background(ServerId(1)));
        // Duplicate ids are a no-op on top of the first failure.
        assert_eq!(masked, sys.with_failed_servers(&[ServerId(0), ServerId(2), ServerId(0)]));
    }

    #[test]
    fn failed_server_masking_with_empty_list_is_a_plain_clone() {
        let sys = two_cluster_system();
        assert_eq!(sys.with_failed_servers(&[]), sys);
    }
}
