//! Memory-budgeted client lowering for streaming scenario construction.
//!
//! [`crate::CompiledSystem`] lowers a complete [`CloudSystem`] in one
//! pass, which requires the full AoS client population to exist first.
//! At the million-client scale targeted by the E5i bench that staging
//! order is the wrong way round: the generator can produce clients in id
//! order one chunk at a time, and everything the solver reads about a
//! client is already captured by the flat per-client arrays.
//!
//! [`LoweredClients`] is the owned, incrementally-fillable form of the
//! client side of the compiled view. A producer (the workload crate's
//! `ScenarioStream`) pushes clients chunk-by-chunk via
//! [`LoweredClients::push_chunk`]; each push evaluates the *same
//! floating-point expressions* as the batch lowering, writing class-major
//! service-rate columns directly into their pre-sized slots, so the
//! finished arrays are bit-for-bit identical to a batch compile. Once the
//! declared population is complete, [`crate::compile_streamed`] moves the
//! arrays into a [`crate::CompiledSystem`] without re-deriving anything.
//!
//! The chunk size — the only staging the producer keeps in flight — is
//! chosen by a [`MemoryBudget`], so peak *transient* memory is bounded by
//! the budget instead of the client count.

use cloudalloc_telemetry as telemetry;

use crate::client::Client;
use crate::compiled::CompiledSystem;
use crate::ids::ClientId;
use crate::server::ServerClass;
use crate::utility::UtilityClass;

/// A cap on the transient staging memory a streaming producer may hold.
///
/// The budget buys AoS [`Client`] staging slots: a producer sizes its
/// chunks with [`MemoryBudget::chunk_clients`] so the in-flight chunk
/// never exceeds the budget, regardless of the total population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// Staging bytes one in-flight client occupies (its AoS struct).
    pub const STAGING_BYTES_PER_CLIENT: usize = std::mem::size_of::<Client>();

    /// A budget of `bytes` bytes of staging memory.
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is zero.
    pub fn from_bytes(bytes: usize) -> Self {
        assert!(bytes > 0, "memory budget must be positive");
        Self { bytes }
    }

    /// A budget of `mib` mebibytes of staging memory.
    ///
    /// # Panics
    ///
    /// Panics when `mib` is zero.
    pub fn from_mib(mib: usize) -> Self {
        Self::from_bytes(mib << 20)
    }

    /// The budget in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Largest chunk (in clients) that fits the budget; at least one, so
    /// a pathologically small budget degrades to client-at-a-time
    /// streaming instead of deadlock.
    pub fn chunk_clients(&self) -> usize {
        (self.bytes / Self::STAGING_BYTES_PER_CLIENT).max(1)
    }
}

/// The client side of a [`crate::CompiledSystem`], owned and fillable in
/// id-order chunks.
///
/// Arrays are allocated exact-size up front from the declared population
/// (`num_clients`) and catalog size, so filling never reallocates; the
/// class-major `m^p`/`m^c` tables are written column-chunk-wise as
/// clients arrive. See the module docs for the bit-identity contract.
#[derive(Debug, Clone)]
pub struct LoweredClients {
    num_clients: usize,
    num_classes: usize,
    filled: usize,
    pub(crate) rate_predicted: Vec<f64>,
    pub(crate) rate_agreed: Vec<f64>,
    pub(crate) exec_processing: Vec<f64>,
    pub(crate) exec_communication: Vec<f64>,
    pub(crate) client_storage: Vec<f64>,
    pub(crate) utility_index: Vec<usize>,
    pub(crate) ref_weight: Vec<f64>,
    pub(crate) ref_marginal: Vec<f64>,
    pub(crate) m_p: Vec<f64>,
    pub(crate) m_c: Vec<f64>,
}

impl LoweredClients {
    /// Pre-sizes the arrays for `num_clients` clients against a catalog
    /// of `num_classes` server classes.
    pub fn new(num_clients: usize, num_classes: usize) -> Self {
        Self {
            num_clients,
            num_classes,
            filled: 0,
            rate_predicted: Vec::with_capacity(num_clients),
            rate_agreed: Vec::with_capacity(num_clients),
            exec_processing: Vec::with_capacity(num_clients),
            exec_communication: Vec::with_capacity(num_clients),
            client_storage: Vec::with_capacity(num_clients),
            utility_index: Vec::with_capacity(num_clients),
            ref_weight: Vec::with_capacity(num_clients),
            ref_marginal: Vec::with_capacity(num_clients),
            m_p: vec![0.0; num_classes * num_clients],
            m_c: vec![0.0; num_classes * num_clients],
        }
    }

    /// Lowers one id-ordered chunk of clients into the arrays.
    ///
    /// The expressions are exactly those of the batch lowering
    /// (`CompiledSystem::new`), so each slot is bit-identical to what a
    /// one-shot compile of the finished system would produce.
    ///
    /// # Panics
    ///
    /// Panics when the catalog size disagrees with construction or the
    /// chunk would overflow the declared population; debug builds also
    /// check that client ids arrive densely in order.
    pub fn push_chunk(
        &mut self,
        classes: &[ServerClass],
        utilities: &[UtilityClass],
        chunk: &[Client],
    ) {
        assert_eq!(classes.len(), self.num_classes, "server-class catalog changed mid-stream");
        assert!(
            self.filled + chunk.len() <= self.num_clients,
            "chunk overflows the declared population of {} clients",
            self.num_clients
        );
        telemetry::counter!("compile.stream.chunks").incr();
        telemetry::histogram!("compile.stream.chunk_clients").record(chunk.len() as u64);
        for c in chunk {
            let i = self.filled;
            debug_assert_eq!(c.id.index(), i, "clients must arrive densely in id order");
            let u = &utilities[c.utility_class.index()].function;
            self.rate_predicted.push(c.rate_predicted);
            self.rate_agreed.push(c.rate_agreed);
            self.exec_processing.push(c.exec_processing);
            self.exec_communication.push(c.exec_communication);
            self.client_storage.push(c.storage);
            self.utility_index.push(c.utility_class.index());
            self.ref_weight.push((c.rate_agreed * u.reference_slope()).max(1e-9));
            self.ref_marginal.push(c.rate_agreed * u.reference_slope());
            for (ci, class) in classes.iter().enumerate() {
                self.m_p[ci * self.num_clients + i] = class.cap_processing / c.exec_processing;
                self.m_c[ci * self.num_clients + i] =
                    class.cap_communication / c.exec_communication;
            }
            self.filled += 1;
        }
    }

    /// Verbatim sub-lowering used by [`crate::compile_group`]: copies the
    /// already-lowered slots of `members` out of a parent compiled view,
    /// renumbering them densely in member order. No floating-point
    /// expression is re-evaluated — every slot (including the class-major
    /// `m^p`/`m^c` columns) is moved bit-for-bit, so the result is
    /// indistinguishable from lowering the members from scratch while
    /// costing only the copies.
    pub(crate) fn copy_members(parent: &CompiledSystem<'_>, members: &[ClientId]) -> Self {
        let num_classes = parent.server_classes().len();
        let n = members.len();
        let mut out = Self::new(n, num_classes);
        for (new_i, &orig) in members.iter().enumerate() {
            out.rate_predicted.push(parent.rate_predicted(orig));
            out.rate_agreed.push(parent.rate_agreed(orig));
            out.exec_processing.push(parent.exec_processing(orig));
            out.exec_communication.push(parent.exec_communication(orig));
            out.client_storage.push(parent.client_storage(orig));
            out.utility_index.push(parent.utility_index(orig));
            out.ref_weight.push(parent.ref_weight(orig));
            out.ref_marginal.push(parent.ref_marginal(orig));
            for ci in 0..num_classes {
                out.m_p[ci * n + new_i] = parent.m_p(ci, orig);
                out.m_c[ci * n + new_i] = parent.m_c(ci, orig);
            }
        }
        out.filled = n;
        out
    }

    /// Clients lowered so far.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when nothing has been lowered yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// The declared total population.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// True once every declared client has been lowered.
    pub fn is_complete(&self) -> bool {
        self.filled == self.num_clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, ServerClassId, UtilityClassId};
    use crate::utility::UtilityFunction;

    fn catalogs() -> (Vec<ServerClass>, Vec<UtilityClass>) {
        let classes = vec![
            ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5),
            ServerClass::new(ServerClassId(1), 2.0, 6.0, 3.0, 2.0, 1.0),
        ];
        let utils = vec![
            UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5)),
            UtilityClass::new(UtilityClassId(1), UtilityFunction::linear(3.0, 0.25)),
        ];
        (classes, utils)
    }

    fn client(i: usize, class: usize) -> Client {
        Client::new(ClientId(i), UtilityClassId(class), 1.0 + i as f64, 1.5, 0.5, 0.25, 1.0)
    }

    #[test]
    fn chunked_fill_matches_one_shot_fill() {
        let (classes, utils) = catalogs();
        let population: Vec<Client> = (0..7).map(|i| client(i, i % 2)).collect();

        let mut one_shot = LoweredClients::new(7, 2);
        one_shot.push_chunk(&classes, &utils, &population);

        let mut chunked = LoweredClients::new(7, 2);
        for chunk in population.chunks(3) {
            chunked.push_chunk(&classes, &utils, chunk);
        }

        assert!(one_shot.is_complete() && chunked.is_complete());
        for (a, b) in one_shot.m_p.iter().zip(&chunked.m_p) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in one_shot.ref_weight.iter().zip(&chunked.ref_weight) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(one_shot.utility_index, chunked.utility_index);
    }

    #[test]
    #[should_panic(expected = "overflows the declared population")]
    fn overflow_is_rejected() {
        let (classes, utils) = catalogs();
        let mut lowered = LoweredClients::new(1, 2);
        lowered.push_chunk(&classes, &utils, &[client(0, 0), client(1, 1)]);
    }

    #[test]
    fn budget_translates_to_chunk_sizes() {
        let per_client = MemoryBudget::STAGING_BYTES_PER_CLIENT;
        assert_eq!(MemoryBudget::from_bytes(10 * per_client).chunk_clients(), 10);
        // A budget below one client degrades to client-at-a-time.
        assert_eq!(MemoryBudget::from_bytes(1).chunk_clients(), 1);
        assert_eq!(MemoryBudget::from_mib(1).bytes(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_budget_is_rejected() {
        let _ = MemoryBudget::from_bytes(0);
    }
}
