//! Strongly-typed identifiers for the entities of the cloud model.
//!
//! Every entity is addressed by a dense `usize` index wrapped in a newtype
//! so that a client index can never be confused with a server index
//! (C-NEWTYPE). All ids are assigned by [`crate::CloudSystem`] in insertion
//! order and are valid as direct indices into the system's entity vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(value: usize) -> Self {
                Self(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> usize {
                value.0
            }
        }
    };
}

define_id!(
    /// Identifier of a client (an application workload with an SLA).
    ClientId,
    "c"
);
define_id!(
    /// Identifier of a physical server inside the datacenter.
    ///
    /// Server ids are global across clusters; [`crate::Server::cluster`]
    /// records which cluster owns the machine.
    ServerId,
    "s"
);
define_id!(
    /// Identifier of a cluster (a group of servers behind one dispatcher).
    ClusterId,
    "k"
);
define_id!(
    /// Identifier of a server *class* (hardware model in the catalog).
    ServerClassId,
    "sc"
);
define_id!(
    /// Identifier of a utility (SLA) class shared by many clients.
    UtilityClassId,
    "u"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_short_prefixes() {
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(ServerId(0).to_string(), "s0");
        assert_eq!(ClusterId(7).to_string(), "k7");
        assert_eq!(ServerClassId(1).to_string(), "sc1");
        assert_eq!(UtilityClassId(4).to_string(), "u4");
    }

    #[test]
    fn ids_round_trip_through_usize() {
        let id = ServerId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ClientId(1) < ClientId(2));
        assert_eq!(ClusterId(5), ClusterId(5));
    }

    #[test]
    fn ids_serialize_transparently() {
        let json = serde_json::to_string(&ClientId(9)).unwrap();
        assert_eq!(json, "9");
        let back: ClientId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ClientId(9));
    }
}
