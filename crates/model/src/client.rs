//! Clients: application workloads with Poisson request streams and SLAs.

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, UtilityClassId};

/// An application workload hosted by the cloud.
///
/// Requests of client *i* arrive as a Poisson stream. The *predicted* rate
/// `λ_i` drives resource allocation (queue stability) while the *agreed*
/// contract rate `λ̃_i` drives revenue — the paper exploits the gap to pack
/// resources more tightly when actual traffic is known to run below
/// contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Client {
    /// Identifier assigned by [`crate::CloudSystem::add_client`].
    pub id: ClientId,
    /// SLA class of this client (`c(i)` in the paper).
    pub utility_class: UtilityClassId,
    /// Predicted mean request arrival rate `λ_i` (requests/unit time, `> 0`).
    pub rate_predicted: f64,
    /// Agreed (contract) arrival rate `λ̃_i` used for pricing (`> 0`).
    pub rate_agreed: f64,
    /// Mean processing time `t̄^p_i` of one request on a *unit* of
    /// processing capacity (`> 0`); the service rate on share `φ` of a
    /// server with capacity `C^p` is `φ·C^p / t̄^p_i`.
    pub exec_processing: f64,
    /// Mean communication time `t̄^c_i` of one request on a unit of
    /// communication capacity (`> 0`).
    pub exec_communication: f64,
    /// Constant data-storage requirement `m_i` that must fit on every
    /// server holding a positive portion of this client's requests (`>= 0`).
    pub storage: f64,
}

impl Client {
    /// Creates a client.
    ///
    /// # Panics
    ///
    /// Panics if rates or execution times are not strictly positive, the
    /// storage need is negative, or any argument is non-finite.
    pub fn new(
        id: ClientId,
        utility_class: UtilityClassId,
        rate_predicted: f64,
        rate_agreed: f64,
        exec_processing: f64,
        exec_communication: f64,
        storage: f64,
    ) -> Self {
        for (name, v) in [
            ("rate_predicted", rate_predicted),
            ("rate_agreed", rate_agreed),
            ("exec_processing", exec_processing),
            ("exec_communication", exec_communication),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive and finite, got {v}");
        }
        assert!(
            storage.is_finite() && storage >= 0.0,
            "storage must be non-negative and finite, got {storage}"
        );
        Self {
            id,
            utility_class,
            rate_predicted,
            rate_agreed,
            exec_processing,
            exec_communication,
            storage,
        }
    }

    /// Domain check for deserialized clients, which bypass [`Self::new`].
    pub(crate) fn validate(&self) -> Result<(), crate::ModelError> {
        for (field, v) in [
            ("rate_predicted", self.rate_predicted),
            ("rate_agreed", self.rate_agreed),
            ("exec_processing", self.exec_processing),
            ("exec_communication", self.exec_communication),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(crate::ModelError::OutOfRange { field, value: v });
            }
        }
        if !(self.storage.is_finite() && self.storage >= 0.0) {
            return Err(crate::ModelError::OutOfRange { field: "storage", value: self.storage });
        }
        Ok(())
    }

    /// Minimum total processing capacity (in normalized units) needed to
    /// serve this client's predicted traffic with a stable queue:
    /// `λ_i · t̄^p_i`.
    pub fn min_processing_capacity(&self) -> f64 {
        self.rate_predicted * self.exec_processing
    }

    /// Minimum total communication capacity needed for stability:
    /// `λ_i · t̄^c_i`.
    pub fn min_communication_capacity(&self) -> f64 {
        self.rate_predicted * self.exec_communication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> Client {
        Client::new(ClientId(0), UtilityClassId(1), 2.0, 2.5, 0.5, 0.4, 1.0)
    }

    #[test]
    fn stability_floors_are_rate_times_exec() {
        let c = client();
        assert!((c.min_processing_capacity() - 1.0).abs() < 1e-12);
        assert!((c.min_communication_capacity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn agreed_and_predicted_rates_are_independent() {
        let c = client();
        assert_eq!(c.rate_predicted, 2.0);
        assert_eq!(c.rate_agreed, 2.5);
    }

    #[test]
    #[should_panic(expected = "rate_predicted must be positive")]
    fn rejects_zero_rate() {
        let _ = Client::new(ClientId(0), UtilityClassId(0), 0.0, 1.0, 1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "storage must be non-negative")]
    fn rejects_negative_storage() {
        let _ = Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 1.0, 1.0, -0.1);
    }

    #[test]
    fn zero_storage_is_allowed() {
        let c = Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 1.0, 1.0, 0.0);
        assert_eq!(c.storage, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let c = client();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Client>(&json).unwrap(), c);
    }
}
