//! Group sub-problems lowered straight from a compiled parent system.
//!
//! The hierarchical solver (DESIGN.md §3k) partitions clusters into
//! contiguous groups and runs the flat solver on each group's
//! self-contained sub-system. Historically the extraction walked the
//! frontend AoS model once per group and every sub-solve then re-lowered
//! its clients from scratch; [`compile_group`] instead reads the parent's
//! [`CompiledSystem`] arrays. The sub-system is constructed densely
//! renumbered as before, and the client side of its lowering is a
//! verbatim slot-for-slot copy of the parent's — no floating-point
//! expression is re-evaluated, so bit-identity with a from-scratch
//! lowering is structural (the parent slots were produced by the exact
//! expressions a fresh lowering would run).
//!
//! Extraction is intended to happen *per solve wave*: a caller under a
//! [`crate::MemoryBudget`] extracts only the groups of the current wave
//! (sized via [`GroupProblem::estimated_bytes`]), solves them, stitches
//! the results out and drops the sub-problems before the next wave, so a
//! group's working set exists only while its solve runs.

use std::ops::Range;

use crate::client::Client;
use crate::cluster::{BackgroundLoad, Cluster};
use crate::compiled::CompiledSystem;
use crate::ids::{ClientId, ClusterId, ServerId};
use crate::server::Server;
use crate::streamed::LoweredClients;
use crate::system::CloudSystem;

/// One cluster group's self-contained sub-problem: a dense renumbering
/// of its clusters, servers and assigned clients, the pre-lowered client
/// arrays, and the maps back to the original ids.
#[derive(Debug, Clone)]
pub struct GroupProblem {
    /// The sub-system: same catalogs as the parent; clusters, servers and
    /// clients renumbered densely from zero in their original order.
    pub system: CloudSystem,
    /// The sub-system's client lowering, copied verbatim from the parent
    /// compiled view (feed to [`crate::compile_streamed`] to solve
    /// without re-lowering).
    pub clients: LoweredClients,
    /// Original server id of each sub-system server, by new id index.
    pub server_ids: Vec<ServerId>,
    /// Original client id of each sub-system client, by new id index.
    pub client_ids: Vec<ClientId>,
}

impl GroupProblem {
    /// Estimated resident bytes of one extracted sub-problem holding
    /// `num_servers` servers and `num_clients` clients against a catalog
    /// of `num_classes` hardware classes. The wave scheduler of the
    /// hierarchical solve sizes its solve waves with this: clients charge
    /// their AoS struct plus the lowered columns (eight scalar columns
    /// and the two class-major service-rate rows), servers their struct,
    /// background load, cluster-list slot and original-id map entry.
    pub fn estimated_bytes(num_servers: usize, num_clients: usize, num_classes: usize) -> usize {
        let per_client =
            std::mem::size_of::<Client>() + (8 + 2 * num_classes) * std::mem::size_of::<f64>();
        let per_server = std::mem::size_of::<Server>()
            + std::mem::size_of::<BackgroundLoad>()
            + 2 * std::mem::size_of::<ServerId>();
        num_clients * per_client + num_servers * per_server
    }
}

/// Extracts the sub-problem of the contiguous cluster range `clusters`
/// with the routed client set `members`, reading every fact from the
/// parent's compiled arrays.
///
/// Catalogs are copied whole, so class and utility ids — and therefore
/// every derived float — are unchanged. Clusters, servers and clients are
/// renumbered densely in their original order, which preserves the
/// solver's scan-order tie-breaks within the group; with `clusters`
/// spanning the whole parent and `members` listing every client in id
/// order, the sub-system is an id-identical copy.
///
/// # Panics
///
/// Panics if `clusters` is out of range or a member id is out of range.
pub fn compile_group(
    parent: &CompiledSystem<'_>,
    clusters: Range<usize>,
    members: &[ClientId],
) -> GroupProblem {
    let system = parent.system();
    let mut sub =
        CloudSystem::new(system.server_classes().to_vec(), system.utility_classes().to_vec());
    for new_k in 0..clusters.len() {
        sub.add_cluster(Cluster::new(ClusterId(new_k)));
    }
    let mut server_ids = Vec::new();
    for (new_k, orig_k) in clusters.enumerate() {
        for &server in parent.cluster_servers(ClusterId(orig_k)) {
            sub.add_server_with_background(
                Server::new(parent.server_ref(server).server.class, ClusterId(new_k)),
                parent.background(server),
            );
            server_ids.push(server);
        }
    }
    sub.reserve_clients(members.len());
    let mut client_ids = Vec::with_capacity(members.len());
    for (new_i, &orig) in members.iter().enumerate() {
        let c = parent.client(orig);
        sub.add_client(Client::new(
            ClientId(new_i),
            c.utility_class,
            c.rate_predicted,
            c.rate_agreed,
            c.exec_processing,
            c.exec_communication,
            c.storage,
        ));
        client_ids.push(orig);
    }
    let clients = LoweredClients::copy_members(parent, members);
    GroupProblem { system: sub, clients, server_ids, client_ids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::compile_streamed;
    use crate::ids::{ServerClassId, UtilityClassId};
    use crate::server::ServerClass;
    use crate::utility::{UtilityClass, UtilityFunction};

    fn sample_system() -> CloudSystem {
        let classes = vec![
            ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5),
            ServerClass::new(ServerClassId(1), 2.0, 6.0, 3.0, 2.0, 1.0),
        ];
        let utils = vec![
            UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5)),
            UtilityClass::new(UtilityClassId(1), UtilityFunction::linear(3.0, 0.25)),
        ];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = sys.add_cluster(Cluster::new(ClusterId(1)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server_with_background(
            Server::new(ServerClassId(1), k0),
            BackgroundLoad::new(0.25, 0.125, 1.0),
        );
        sys.add_server(Server::new(ServerClassId(0), k1));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(1), 1.0, 1.5, 0.5, 0.25, 1.0));
        sys.add_client(Client::new(ClientId(1), UtilityClassId(0), 2.0, 2.0, 0.25, 0.5, 0.5));
        sys.add_client(Client::new(ClientId(2), UtilityClassId(1), 1.5, 1.75, 0.4, 0.3, 0.25));
        sys
    }

    #[test]
    fn full_range_group_is_an_id_identical_copy() {
        let sys = sample_system();
        let parent = CompiledSystem::new(&sys);
        let members: Vec<ClientId> = (0..sys.num_clients()).map(ClientId).collect();
        let group = compile_group(&parent, 0..sys.num_clusters(), &members);
        assert_eq!(group.system.num_clusters(), sys.num_clusters());
        assert_eq!(group.system.servers(), sys.servers());
        assert_eq!(group.system.clients(), sys.clients());
        for j in 0..sys.num_servers() {
            assert_eq!(group.server_ids[j], ServerId(j));
            assert_eq!(group.system.background(ServerId(j)), sys.background(ServerId(j)));
        }
        assert_eq!(group.client_ids, members);
    }

    #[test]
    fn sub_range_group_renumbers_densely_in_original_order() {
        let sys = sample_system();
        let parent = CompiledSystem::new(&sys);
        // Only cluster 1 and the last client.
        let group = compile_group(&parent, 1..2, &[ClientId(2)]);
        assert_eq!(group.system.num_clusters(), 1);
        assert_eq!(group.system.num_servers(), 1);
        assert_eq!(group.server_ids, vec![ServerId(2)]);
        assert_eq!(group.system.server(ServerId(0)).class, ServerClassId(0));
        assert_eq!(group.system.num_clients(), 1);
        assert_eq!(group.client_ids, vec![ClientId(2)]);
        let c = &group.system.clients()[0];
        assert_eq!(c.id, ClientId(0));
        assert_eq!(c.rate_predicted.to_bits(), 1.5f64.to_bits());
    }

    #[test]
    fn copied_lowering_is_bit_identical_to_a_fresh_one() {
        let sys = sample_system();
        let parent = CompiledSystem::new(&sys);
        let members = [ClientId(2), ClientId(0)];
        let group = compile_group(&parent, 0..2, &members);
        // Lowering the extracted sub-system from scratch must agree with
        // the verbatim copy in every slot.
        let copied = compile_streamed(&group.system, group.clients.clone());
        let fresh = CompiledSystem::new(&group.system);
        for i in 0..group.system.num_clients() {
            let id = ClientId(i);
            assert_eq!(copied.rate_predicted(id).to_bits(), fresh.rate_predicted(id).to_bits());
            assert_eq!(copied.ref_weight(id).to_bits(), fresh.ref_weight(id).to_bits());
            assert_eq!(copied.ref_marginal(id).to_bits(), fresh.ref_marginal(id).to_bits());
            assert_eq!(copied.utility_index(id), fresh.utility_index(id));
            for ci in 0..sys.server_classes().len() {
                assert_eq!(copied.m_p(ci, id).to_bits(), fresh.m_p(ci, id).to_bits());
                assert_eq!(copied.m_c(ci, id).to_bits(), fresh.m_c(ci, id).to_bits());
            }
        }
    }

    #[test]
    fn estimated_bytes_scales_with_population_and_catalog() {
        let small = GroupProblem::estimated_bytes(10, 100, 2);
        let more_clients = GroupProblem::estimated_bytes(10, 200, 2);
        let more_classes = GroupProblem::estimated_bytes(10, 100, 8);
        assert!(more_clients > small);
        assert!(more_classes > small);
        assert_eq!(GroupProblem::estimated_bytes(0, 0, 4), 0);
    }
}
