//! Domain model for SLA-driven, profit-maximizing cloud resource allocation.
//!
//! This crate defines the entities of the system studied in *"Maximizing
//! Profit in Cloud Computing System via Resource Allocation"* (Goudarzi &
//! Pedram, 2011):
//!
//! * a [`CloudSystem`] made of [`Cluster`]s of heterogeneous [`Server`]s
//!   drawn from a catalog of [`ServerClass`]es,
//! * [`Client`]s with Poisson request streams and per-class SLA
//!   [`UtilityFunction`]s of mean response time,
//! * an [`Allocation`] mapping clients to clusters (`x`), dispersing their
//!   requests over servers (`α`) and granting GPS resource shares (`φ`),
//! * and an evaluator ([`evaluate`], [`check_feasibility`]) computing the
//!   total profit `Σ_i λ̃_i·U_i(R_i) − Σ_j y_j·(P0_j + P1_j·ρ_j)` together
//!   with every constraint of the paper's optimization problem (2).
//!
//! The model is deliberately independent of any solver: optimizers
//! (`cloudalloc-core`, `cloudalloc-baselines`) and the discrete-event
//! simulator (`cloudalloc-simulator`) all consume these types.
//!
//! # Example
//!
//! ```
//! use cloudalloc_model::{
//!     Allocation, Client, ClientId, CloudSystem, Cluster, ClusterId, Placement,
//!     Server, ServerClass, ServerClassId, UtilityClass, UtilityClassId,
//!     UtilityFunction,
//! };
//!
//! // One cluster with one server, one client taking all of it.
//! let class = ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5);
//! let utility = UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5));
//! let mut system = CloudSystem::new(vec![class], vec![utility]);
//! let cluster = system.add_cluster(Cluster::new(ClusterId(0)));
//! let server = system.add_server(Server::new(ServerClassId(0), cluster));
//! system.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 0.4));
//!
//! let mut alloc = Allocation::new(&system);
//! alloc.assign_cluster(ClientId(0), cluster);
//! alloc.place(&system, ClientId(0), server, Placement { alpha: 1.0, phi_p: 1.0, phi_c: 1.0 });
//!
//! let report = cloudalloc_model::evaluate(&system, &alloc);
//! assert!(report.profit.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod builder;
mod client;
mod cluster;
mod compiled;
mod error;
mod eval;
mod group;
mod ids;
mod incremental;
mod server;
mod streamed;
mod system;
mod utility;

pub use allocation::{Allocation, ClusterSlack, Placement, ServerLoad};
pub use builder::SystemBuilder;
pub use client::Client;
pub use cluster::{BackgroundLoad, Cluster};
pub use compiled::{compile_streamed, CompiledSystem};
pub use error::ModelError;
pub use eval::{
    check_feasibility, evaluate, evaluate_client, is_stable, placement_response_time,
    ClientOutcome, ProfitReport, Violation, FEASIBILITY_TOL,
};
pub use group::{compile_group, GroupProblem};
pub use ids::{ClientId, ClusterId, ServerClassId, ServerId, UtilityClassId};
pub use incremental::{AllocationDelta, Savepoint, ScoredAllocation};
pub use server::{Server, ServerClass, ServerRef};
pub use streamed::{LoweredClients, MemoryBudget};
pub use system::CloudSystem;
pub use utility::{UtilityClass, UtilityFunction};

/// Smallest resource share a client with positive traffic may hold on a
/// server (the paper's `ε` in constraint (7)).
///
/// Shares below this are treated as "no allocation"; solvers use it as a
/// lower clamp so that M/M/1 service rates stay bounded away from zero.
pub const MIN_SHARE: f64 = 1e-6;
