//! Server classes (the hardware catalog) and server instances.

use serde::{Deserialize, Serialize};

use crate::ids::{ClusterId, ServerClassId, ServerId};

/// A hardware model in the datacenter catalog.
///
/// The paper models each server class by its processing capacity `C^p`
/// (normalized by a defined unit), local data-storage capacity `C^m`,
/// communication capacity `C^c`, and an operation cost that is a constant
/// `P0` plus a term `P1 · ρ` linear in the processing-domain utilization
/// `ρ` of the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerClass {
    /// Identifier within the [`crate::CloudSystem`] catalog.
    pub id: ServerClassId,
    /// Processing capacity `C^p` in normalized units (`> 0`).
    pub cap_processing: f64,
    /// Data-storage capacity `C^m` in normalized units (`> 0`).
    pub cap_storage: f64,
    /// Communication capacity `C^c` in normalized units (`> 0`).
    pub cap_communication: f64,
    /// Constant operation cost `P0` paid while the server is ON (`>= 0`).
    pub cost_fixed: f64,
    /// Cost `P1` per unit of processing utilization (`>= 0`).
    pub cost_per_utilization: f64,
}

impl ServerClass {
    /// Creates a server class.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is not strictly positive or any cost is
    /// negative (or any argument is non-finite).
    pub fn new(
        id: ServerClassId,
        cap_processing: f64,
        cap_storage: f64,
        cap_communication: f64,
        cost_fixed: f64,
        cost_per_utilization: f64,
    ) -> Self {
        for (name, v) in [
            ("cap_processing", cap_processing),
            ("cap_storage", cap_storage),
            ("cap_communication", cap_communication),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive and finite, got {v}");
        }
        for (name, v) in
            [("cost_fixed", cost_fixed), ("cost_per_utilization", cost_per_utilization)]
        {
            assert!(v.is_finite() && v >= 0.0, "{name} must be non-negative and finite, got {v}");
        }
        Self {
            id,
            cap_processing,
            cap_storage,
            cap_communication,
            cost_fixed,
            cost_per_utilization,
        }
    }

    /// Domain check for deserialized classes, which bypass [`Self::new`].
    pub(crate) fn validate(&self) -> Result<(), crate::ModelError> {
        for (field, v) in [
            ("cap_processing", self.cap_processing),
            ("cap_storage", self.cap_storage),
            ("cap_communication", self.cap_communication),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(crate::ModelError::OutOfRange { field, value: v });
            }
        }
        for (field, v) in
            [("cost_fixed", self.cost_fixed), ("cost_per_utilization", self.cost_per_utilization)]
        {
            if !(v.is_finite() && v >= 0.0) {
                return Err(crate::ModelError::OutOfRange { field, value: v });
            }
        }
        Ok(())
    }

    /// Operation cost of an ON server of this class running at processing
    /// utilization `rho ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is NaN or negative. Values slightly above 1 are
    /// accepted (they can arise from feasibility tolerances) and charged
    /// linearly.
    pub fn operation_cost(&self, rho: f64) -> f64 {
        assert!(!rho.is_nan() && rho >= 0.0, "utilization must be >= 0, got {rho}");
        self.cost_fixed + self.cost_per_utilization * rho
    }
}

/// A physical server: an instance of a [`ServerClass`] owned by a cluster.
///
/// The global [`ServerId`] is assigned by [`crate::CloudSystem::add_server`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// Hardware model of this machine.
    pub class: ServerClassId,
    /// Cluster that owns this machine.
    pub cluster: ClusterId,
}

impl Server {
    /// Creates a server of class `class` inside cluster `cluster`.
    pub fn new(class: ServerClassId, cluster: ClusterId) -> Self {
        Self { class, cluster }
    }
}

/// A server together with its resolved id; convenience view returned by
/// iteration helpers on [`crate::CloudSystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerRef<'a> {
    /// Global id of the server.
    pub id: ServerId,
    /// The server record.
    pub server: &'a Server,
    /// Its resolved hardware class.
    pub class: &'a ServerClass,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> ServerClass {
        ServerClass::new(ServerClassId(0), 4.0, 3.0, 5.0, 2.0, 1.5)
    }

    #[test]
    fn operation_cost_is_affine_in_utilization() {
        let c = class();
        assert_eq!(c.operation_cost(0.0), 2.0);
        assert_eq!(c.operation_cost(1.0), 3.5);
        assert!((c.operation_cost(0.5) - 2.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cap_processing must be positive")]
    fn rejects_zero_processing_capacity() {
        let _ = ServerClass::new(ServerClassId(0), 0.0, 1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cost_fixed must be non-negative")]
    fn rejects_negative_fixed_cost() {
        let _ = ServerClass::new(ServerClassId(0), 1.0, 1.0, 1.0, -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "utilization must be >= 0")]
    fn cost_rejects_nan_utilization() {
        let _ = class().operation_cost(f64::NAN);
    }

    #[test]
    fn server_records_class_and_cluster() {
        let s = Server::new(ServerClassId(3), ClusterId(1));
        assert_eq!(s.class, ServerClassId(3));
        assert_eq!(s.cluster, ClusterId(1));
    }

    #[test]
    fn serde_round_trip() {
        let c = class();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ServerClass>(&json).unwrap(), c);
    }
}
