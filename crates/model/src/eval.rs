//! Profit evaluation and feasibility checking for allocations.
//!
//! This module is the single source of truth for the paper's objective
//! function (problem (2)) and its constraints (3)–(12). Every solver and
//! baseline scores candidate allocations through [`evaluate`]; tests verify
//! solver-internal incremental bookkeeping against it.

use crate::allocation::{Allocation, Placement};
use crate::client::Client;
use crate::ids::{ClientId, ServerId};
use crate::server::ServerClass;
use crate::system::CloudSystem;

/// Tolerance used by [`check_feasibility`] for share sums, dispersion sums
/// and storage fit, absorbing float accumulation from incremental solvers.
pub const FEASIBILITY_TOL: f64 = 1e-6;

/// True when an M/M/1 queue with service rate `service` and arrival rate
/// `arrival` is strictly stable (`service > arrival > = 0`).
pub fn is_stable(service: f64, arrival: f64) -> bool {
    service.is_finite() && arrival >= 0.0 && service > arrival
}

/// Mean time a request of `client` spends on `server` (queueing + service)
/// under `placement`: the two M/M/1 terms of paper Eq. (1),
/// `1/(φ^p μ^p C^p − αλ) + 1/(φ^c μ^c C^c − αλ)`.
///
/// Returns `f64::INFINITY` when either queue is unstable or has no
/// capacity, which makes the corresponding utility collapse to zero instead
/// of producing negative "response times" that would corrupt the profit.
pub fn placement_response_time(class: &ServerClass, client: &Client, placement: Placement) -> f64 {
    let arrival = placement.alpha * client.rate_predicted;
    let service_p = placement.phi_p * class.cap_processing / client.exec_processing;
    let service_c = placement.phi_c * class.cap_communication / client.exec_communication;
    if !is_stable(service_p, arrival) || !is_stable(service_c, arrival) {
        return f64::INFINITY;
    }
    1.0 / (service_p - arrival) + 1.0 / (service_c - arrival)
}

/// Outcome of one client under an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientOutcome {
    /// Mean response time `R_i = Σ_j α_{ij}·(t^p_{ij} + t^c_{ij})`;
    /// `f64::INFINITY` when unserved or unstable anywhere.
    pub response_time: f64,
    /// Revenue `λ̃_i · U_{c(i)}(R_i)`.
    pub revenue: f64,
}

/// Computes the response time and revenue of a single client.
///
/// A client with no placements (or `Σα < 1`, i.e. traffic that is dropped)
/// is charged an infinite response time and earns zero revenue; partial
/// allocations therefore never look better than complete ones.
pub fn evaluate_client(
    system: &CloudSystem,
    alloc: &Allocation,
    client: ClientId,
) -> ClientOutcome {
    let c = system.client(client);
    let placements = alloc.placements(client);
    let total_alpha: f64 = placements.iter().map(|&(_, p)| p.alpha).sum();
    if placements.is_empty() || total_alpha < 1.0 - FEASIBILITY_TOL {
        return ClientOutcome { response_time: f64::INFINITY, revenue: 0.0 };
    }
    let mut r = 0.0;
    for &(server, p) in placements {
        let t = placement_response_time(system.class_of(server), c, p);
        if !t.is_finite() {
            return ClientOutcome { response_time: f64::INFINITY, revenue: 0.0 };
        }
        r += p.alpha * t;
    }
    let revenue = c.rate_agreed * system.utility_of(client).value(r);
    ClientOutcome { response_time: r, revenue }
}

/// Full profit breakdown of an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfitReport {
    /// Total revenue `Σ_i λ̃_i·U_i(R_i)`.
    pub revenue: f64,
    /// Total operation cost `Σ_j y_j·(P0_j + P1_j·ρ_j)`.
    pub cost: f64,
    /// `revenue − cost`, the paper's objective.
    pub profit: f64,
    /// Per-client outcomes, indexed by client id.
    pub clients: Vec<ClientOutcome>,
    /// Number of active (ON) servers.
    pub active_servers: usize,
}

/// Evaluates the paper's objective for `alloc`: total revenue minus the
/// operation cost of every active server.
///
/// The result is always finite: unstable or unserved clients earn zero
/// revenue rather than propagating infinities.
pub fn evaluate(system: &CloudSystem, alloc: &Allocation) -> ProfitReport {
    let mut revenue = 0.0;
    let clients: Vec<ClientOutcome> = (0..system.num_clients())
        .map(|i| {
            let outcome = evaluate_client(system, alloc, ClientId(i));
            revenue += outcome.revenue;
            outcome
        })
        .collect();

    let mut cost = 0.0;
    let mut active_servers = 0;
    for j in 0..system.num_servers() {
        let sid = ServerId(j);
        let load = alloc.load(sid);
        if load.is_on() {
            active_servers += 1;
            let class = system.class_of(sid);
            let rho = load.work_processing / class.cap_processing;
            cost += class.operation_cost(rho);
        }
    }
    ProfitReport { revenue, cost, profit: revenue - cost, clients, active_servers }
}

/// A violated constraint of the paper's optimization problem.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// `Σ_i φ^p_{ij} > 1` on a server (constraint (4)).
    ProcessingShareOverflow {
        /// Offending server.
        server: ServerId,
        /// Total granted share (background included).
        total: f64,
    },
    /// `Σ_i φ^c_{ij} > 1` on a server (constraint (4)).
    CommunicationShareOverflow {
        /// Offending server.
        server: ServerId,
        /// Total granted share (background included).
        total: f64,
    },
    /// Committed storage exceeds `C^m_j` (constraints (5)/(8)).
    StorageOverflow {
        /// Offending server.
        server: ServerId,
        /// Committed storage in capacity units.
        used: f64,
        /// The server's storage capacity.
        capacity: f64,
    },
    /// A client is not assigned to any cluster (constraint (6)).
    Unassigned {
        /// Offending client.
        client: ClientId,
    },
    /// `Σ_j α_{ij} ≠ 1` for an assigned client (constraint (6)).
    IncompleteDispersion {
        /// Offending client.
        client: ClientId,
        /// Its current dispersion total.
        total: f64,
    },
    /// A placement lives on a server outside the client's cluster.
    CrossClusterPlacement {
        /// Offending client.
        client: ClientId,
        /// The foreign server.
        server: ServerId,
    },
    /// A queue with positive traffic is not strictly stable.
    UnstableQueue {
        /// Offending client.
        client: ClientId,
        /// Server hosting the unstable queue.
        server: ServerId,
    },
    /// A positive-traffic placement holds less than [`crate::MIN_SHARE`]
    /// of a resource (constraint (7)).
    ShareBelowMinimum {
        /// Offending client.
        client: ClientId,
        /// Server hosting the placement.
        server: ServerId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ProcessingShareOverflow { server, total } => {
                write!(f, "processing shares on {server} sum to {total:.6} > 1")
            }
            Self::CommunicationShareOverflow { server, total } => {
                write!(f, "communication shares on {server} sum to {total:.6} > 1")
            }
            Self::StorageOverflow { server, used, capacity } => {
                write!(f, "storage on {server} uses {used:.3} of {capacity:.3}")
            }
            Self::Unassigned { client } => write!(f, "{client} is not assigned to any cluster"),
            Self::IncompleteDispersion { client, total } => {
                write!(f, "{client} disperses {total:.6} of its traffic instead of 1")
            }
            Self::CrossClusterPlacement { client, server } => {
                write!(f, "{client} holds a placement on {server} outside its cluster")
            }
            Self::UnstableQueue { client, server } => {
                write!(f, "{client} has an unstable queue on {server}")
            }
            Self::ShareBelowMinimum { client, server } => {
                write!(f, "{client} holds a below-minimum share on {server}")
            }
        }
    }
}

/// Checks every constraint of the paper's problem for `alloc` and returns
/// all violations (empty means feasible).
pub fn check_feasibility(system: &CloudSystem, alloc: &Allocation) -> Vec<Violation> {
    let mut violations = Vec::new();

    for j in 0..system.num_servers() {
        let sid = ServerId(j);
        let load = alloc.load(sid);
        let class = system.class_of(sid);
        if load.phi_p > 1.0 + FEASIBILITY_TOL {
            violations.push(Violation::ProcessingShareOverflow { server: sid, total: load.phi_p });
        }
        if load.phi_c > 1.0 + FEASIBILITY_TOL {
            violations
                .push(Violation::CommunicationShareOverflow { server: sid, total: load.phi_c });
        }
        if load.storage > class.cap_storage + FEASIBILITY_TOL {
            violations.push(Violation::StorageOverflow {
                server: sid,
                used: load.storage,
                capacity: class.cap_storage,
            });
        }
    }

    for i in 0..system.num_clients() {
        let cid = ClientId(i);
        let Some(cluster) = alloc.cluster_of(cid) else {
            violations.push(Violation::Unassigned { client: cid });
            continue;
        };
        let total = alloc.total_alpha(cid);
        if (total - 1.0).abs() > FEASIBILITY_TOL {
            violations.push(Violation::IncompleteDispersion { client: cid, total });
        }
        let c = system.client(cid);
        for &(server, p) in alloc.placements(cid) {
            if system.server(server).cluster != cluster {
                violations.push(Violation::CrossClusterPlacement { client: cid, server });
            }
            if p.phi_p < crate::MIN_SHARE || p.phi_c < crate::MIN_SHARE {
                violations.push(Violation::ShareBelowMinimum { client: cid, server });
            }
            if !placement_response_time(system.class_of(server), c, p).is_finite() {
                violations.push(Violation::UnstableQueue { client: cid, server });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClusterId, ServerClassId, UtilityClassId};
    use crate::server::Server;
    use crate::{Cluster, UtilityClass, UtilityFunction};

    fn system() -> CloudSystem {
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 2.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = sys.add_cluster(Cluster::new(ClusterId(1)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server(Server::new(ServerClassId(0), k1));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 2.0, 0.5, 0.5, 1.0));
        sys
    }

    fn full_placement() -> Placement {
        Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 }
    }

    fn assigned() -> (CloudSystem, Allocation) {
        let sys = system();
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(&sys, ClientId(0), ServerId(0), full_placement());
        (sys, alloc)
    }

    #[test]
    fn response_time_matches_mm1_formula() {
        let (sys, alloc) = assigned();
        // service_p = 0.5*4/0.5 = 4, service_c = 0.5*4/0.5 = 4, arrival = 1
        // R = 1/3 + 1/3
        let outcome = evaluate_client(&sys, &alloc, ClientId(0));
        assert!((outcome.response_time - 2.0 / 3.0).abs() < 1e-12);
        // revenue = agreed(2) * U(2/3) = 2 * (2 - 0.5*2/3)
        assert!((outcome.revenue - 2.0 * (2.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn profit_subtracts_affine_server_cost() {
        let (sys, alloc) = assigned();
        let report = evaluate(&sys, &alloc);
        // rho = work/C^p = (1*1*0.5)/4 = 0.125 ; cost = 1 + 0.5*0.125
        assert!((report.cost - 1.0625).abs() < 1e-12);
        assert!((report.profit - (report.revenue - report.cost)).abs() < 1e-12);
        assert_eq!(report.active_servers, 1);
        assert!(check_feasibility(&sys, &alloc).is_empty());
    }

    #[test]
    fn unstable_queue_yields_infinite_response_zero_revenue() {
        let sys = system();
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        // service_p = 0.1*4/0.5 = 0.8 < arrival 1.0 → unstable.
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: 0.1, phi_c: 0.5 },
        );
        let outcome = evaluate_client(&sys, &alloc, ClientId(0));
        assert_eq!(outcome.response_time, f64::INFINITY);
        assert_eq!(outcome.revenue, 0.0);
        assert!(check_feasibility(&sys, &alloc)
            .iter()
            .any(|v| matches!(v, Violation::UnstableQueue { .. })));
        // Profit stays finite: the server still costs money.
        let report = evaluate(&sys, &alloc);
        assert!(report.profit.is_finite());
        assert!(report.profit < 0.0);
    }

    #[test]
    fn unassigned_and_partial_clients_earn_nothing() {
        let sys = system();
        let alloc = Allocation::new(&sys);
        let report = evaluate(&sys, &alloc);
        assert_eq!(report.revenue, 0.0);
        assert_eq!(report.cost, 0.0);
        let violations = check_feasibility(&sys, &alloc);
        assert!(violations.iter().any(|v| matches!(v, Violation::Unassigned { .. })));

        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 0.5, phi_p: 0.5, phi_c: 0.5 },
        );
        assert_eq!(evaluate_client(&sys, &alloc, ClientId(0)).revenue, 0.0);
        assert!(check_feasibility(&sys, &alloc)
            .iter()
            .any(|v| matches!(v, Violation::IncompleteDispersion { .. })));
    }

    #[test]
    fn share_overflow_is_reported() {
        // Background load of 0.5 plus a client share of 0.8 overflows both
        // the processing and communication share budgets.
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 2.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server_with_background(
            Server::new(ServerClassId(0), k0),
            crate::BackgroundLoad::new(0.5, 0.5, 0.0),
        );
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 1.0));
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: 0.8, phi_c: 0.8 },
        );
        let violations = check_feasibility(&sys, &alloc);
        assert!(violations.iter().any(|v| matches!(v, Violation::ProcessingShareOverflow { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::CommunicationShareOverflow { .. })));
    }

    #[test]
    fn storage_overflow_is_reported() {
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 0.5, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 1.0));
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(&sys, ClientId(0), ServerId(0), full_placement());
        assert!(check_feasibility(&sys, &alloc)
            .iter()
            .any(|v| matches!(v, Violation::StorageOverflow { .. })));
    }

    #[test]
    fn min_share_constraint_is_reported() {
        let (sys, mut alloc) = assigned();
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: 1e-9, phi_c: 0.5 },
        );
        assert!(check_feasibility(&sys, &alloc)
            .iter()
            .any(|v| matches!(v, Violation::ShareBelowMinimum { .. })));
    }

    #[test]
    fn violations_render_readably() {
        let texts = [
            Violation::ProcessingShareOverflow { server: ServerId(1), total: 1.2 }.to_string(),
            Violation::Unassigned { client: ClientId(3) }.to_string(),
            Violation::IncompleteDispersion { client: ClientId(0), total: 0.5 }.to_string(),
            Violation::UnstableQueue { client: ClientId(2), server: ServerId(4) }.to_string(),
        ];
        assert!(texts[0].contains("s1") && texts[0].contains("1.2"));
        assert!(texts[1].contains("c3"));
        assert!(texts[2].contains("0.5"));
        assert!(texts[3].contains("unstable"));
        for t in &texts {
            // Lowercase, no trailing punctuation (C-GOOD-ERR style).
            assert!(!t.ends_with('.'));
        }
    }

    #[test]
    fn is_stable_boundary() {
        assert!(is_stable(1.0, 0.5));
        assert!(!is_stable(1.0, 1.0));
        assert!(!is_stable(0.0, 0.0));
        assert!(!is_stable(f64::INFINITY, 0.0));
        assert!(!is_stable(1.0, -0.1));
    }
}
