//! Clusters and their pre-existing (background) load.

use serde::{Deserialize, Serialize};

use crate::ids::{ClusterId, ServerId};

/// Resources of one server already committed before the decision epoch.
///
/// The paper's greedy phase starts from "the state of the cluster at the end
/// of the previous epoch": shares `φ̂` held by previously placed clients or
/// by applications outside the cloud system. Background load reduces the
/// capacity available to the allocator but does not contribute revenue.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BackgroundLoad {
    /// Fraction of the server's processing capacity already taken (`[0,1]`).
    pub phi_p: f64,
    /// Fraction of the communication capacity already taken (`[0,1]`).
    pub phi_c: f64,
    /// Absolute storage (in the same units as `C^m`) already taken (`>= 0`).
    pub storage: f64,
}

impl BackgroundLoad {
    /// Creates a background load record.
    ///
    /// # Panics
    ///
    /// Panics if the share fractions fall outside `[0, 1]` or the storage
    /// amount is negative (or any argument is non-finite).
    pub fn new(phi_p: f64, phi_c: f64, storage: f64) -> Self {
        for (name, v) in [("phi_p", phi_p), ("phi_c", phi_c)] {
            assert!(v.is_finite() && (0.0..=1.0).contains(&v), "{name} must lie in [0,1], got {v}");
        }
        assert!(
            storage.is_finite() && storage >= 0.0,
            "storage must be non-negative and finite, got {storage}"
        );
        Self { phi_p, phi_c, storage }
    }

    /// True when the server carries no background load at all.
    pub fn is_empty(&self) -> bool {
        self.phi_p == 0.0 && self.phi_c == 0.0 && self.storage == 0.0
    }

    /// Domain check for deserialized loads, which bypass [`Self::new`].
    pub(crate) fn validate(&self) -> Result<(), crate::ModelError> {
        for (field, v) in [("background phi_p", self.phi_p), ("background phi_c", self.phi_c)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(crate::ModelError::OutOfRange { field, value: v });
            }
        }
        if !(self.storage.is_finite() && self.storage >= 0.0) {
            return Err(crate::ModelError::OutOfRange {
                field: "background storage",
                value: self.storage,
            });
        }
        Ok(())
    }
}

/// A cluster: a set of servers behind one request dispatcher.
///
/// Server membership is maintained by [`crate::CloudSystem::add_server`];
/// the ids recorded here always refer to servers whose
/// [`crate::Server::cluster`] equals this cluster's id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Identifier of this cluster.
    pub id: ClusterId,
    /// Global ids of the servers this cluster owns, in insertion order.
    pub servers: Vec<ServerId>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(id: ClusterId) -> Self {
        Self { id, servers: Vec::new() }
    }

    /// Number of servers in the cluster.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the cluster owns no servers.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_load_default_is_empty() {
        assert!(BackgroundLoad::default().is_empty());
        assert!(!BackgroundLoad::new(0.1, 0.0, 0.0).is_empty());
        assert!(!BackgroundLoad::new(0.0, 0.0, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "phi_p must lie in [0,1]")]
    fn background_load_rejects_over_unity_share() {
        let _ = BackgroundLoad::new(1.5, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "storage must be non-negative")]
    fn background_load_rejects_negative_storage() {
        let _ = BackgroundLoad::new(0.0, 0.0, -1.0);
    }

    #[test]
    fn cluster_starts_empty() {
        let c = Cluster::new(ClusterId(2));
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.id, ClusterId(2));
    }

    #[test]
    fn serde_round_trip() {
        let mut c = Cluster::new(ClusterId(0));
        c.servers.push(ServerId(4));
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<Cluster>(&json).unwrap(), c);
    }
}
