//! SLA utility functions: non-increasing maps from mean response time to the
//! per-request price a client pays.
//!
//! The paper defines each client class by "a pre-defined utility function
//! based on their response time requirements" and later linearizes it for
//! the greedy construction phase. We provide the linear form as the default
//! plus a discrete step form (the paper's "discrete utility functions") and
//! a smooth exponential form used in ablations.

use serde::{Deserialize, Serialize};

use crate::ids::UtilityClassId;

/// A non-increasing utility (price) function of mean response time.
///
/// All variants guarantee `value(r) >= 0` and monotone non-increase in `r`;
/// [`UtilityFunction::value`] returns the price earned *per request* when
/// the client's average response time is `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UtilityFunction {
    /// `max(0, u0 − slope·r)` — the linearized utility used by the paper's
    /// greedy phase and the default for generated scenarios.
    Linear {
        /// Price per request at zero response time (`u0 > 0`).
        intercept: f64,
        /// Price lost per unit of response time (`slope >= 0`).
        slope: f64,
    },
    /// A right-continuous step function: pays `levels[n].1` for the first
    /// threshold `levels[n].0 >= r`, and `0` beyond the last threshold.
    ///
    /// Thresholds must be strictly increasing and values non-increasing —
    /// the paper's "discrete utility functions" (citing Zhang & Ardagna).
    Step {
        /// `(response-time threshold, price)` pairs, thresholds increasing.
        levels: Vec<(f64, f64)>,
    },
    /// `u0 · exp(−r / tau)` — smooth strictly-decreasing utility used to
    /// exercise the solvers on non-linear SLAs.
    Exponential {
        /// Price per request at zero response time.
        intercept: f64,
        /// Decay time constant (`tau > 0`).
        tau: f64,
    },
}

impl UtilityFunction {
    /// Creates the linear utility `max(0, intercept − slope·r)`.
    ///
    /// # Panics
    ///
    /// Panics if `intercept <= 0`, `slope < 0`, or either is non-finite.
    pub fn linear(intercept: f64, slope: f64) -> Self {
        assert!(
            intercept.is_finite() && intercept > 0.0,
            "utility intercept must be positive and finite, got {intercept}"
        );
        assert!(
            slope.is_finite() && slope >= 0.0,
            "utility slope must be non-negative and finite, got {slope}"
        );
        Self::Linear { intercept, slope }
    }

    /// Creates a discrete step utility from `(threshold, price)` levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, thresholds are not strictly increasing
    /// and positive, or prices are negative or increasing.
    pub fn step(levels: Vec<(f64, f64)>) -> Self {
        assert!(!levels.is_empty(), "step utility needs at least one level");
        let mut prev_t = 0.0;
        let mut prev_v = f64::INFINITY;
        for &(t, v) in &levels {
            assert!(
                t.is_finite() && t > prev_t,
                "step thresholds must be positive and strictly increasing"
            );
            assert!(
                v.is_finite() && v >= 0.0 && v <= prev_v,
                "step prices must be non-negative and non-increasing"
            );
            prev_t = t;
            prev_v = v;
        }
        Self::Step { levels }
    }

    /// Creates the exponential utility `intercept · exp(−r/tau)`.
    ///
    /// # Panics
    ///
    /// Panics if `intercept <= 0` or `tau <= 0`, or either is non-finite.
    pub fn exponential(intercept: f64, tau: f64) -> Self {
        assert!(
            intercept.is_finite() && intercept > 0.0,
            "utility intercept must be positive and finite, got {intercept}"
        );
        assert!(tau.is_finite() && tau > 0.0, "utility tau must be positive and finite, got {tau}");
        Self::Exponential { intercept, tau }
    }

    /// Domain check for deserialized functions, which bypass the
    /// panicking constructors.
    pub(crate) fn validate(&self) -> Result<(), crate::ModelError> {
        use crate::ModelError;
        match self {
            Self::Linear { intercept, slope } => {
                if !(intercept.is_finite() && *intercept > 0.0) {
                    return Err(ModelError::OutOfRange {
                        field: "utility intercept",
                        value: *intercept,
                    });
                }
                if !(slope.is_finite() && *slope >= 0.0) {
                    return Err(ModelError::OutOfRange { field: "utility slope", value: *slope });
                }
            }
            Self::Step { levels } => {
                if levels.is_empty() {
                    return Err(ModelError::Inconsistent {
                        what: "step utility needs at least one level".into(),
                    });
                }
                let mut prev_t = 0.0;
                let mut prev_v = f64::INFINITY;
                for &(t, v) in levels {
                    if !(t.is_finite() && t > prev_t) {
                        return Err(ModelError::Inconsistent {
                            what: "step thresholds must be positive and strictly increasing".into(),
                        });
                    }
                    if !(v.is_finite() && v >= 0.0 && v <= prev_v) {
                        return Err(ModelError::Inconsistent {
                            what: "step prices must be non-negative and non-increasing".into(),
                        });
                    }
                    prev_t = t;
                    prev_v = v;
                }
            }
            Self::Exponential { intercept, tau } => {
                if !(intercept.is_finite() && *intercept > 0.0) {
                    return Err(ModelError::OutOfRange {
                        field: "utility intercept",
                        value: *intercept,
                    });
                }
                if !(tau.is_finite() && *tau > 0.0) {
                    return Err(ModelError::OutOfRange { field: "utility tau", value: *tau });
                }
            }
        }
        Ok(())
    }

    /// Price earned per request at mean response time `r`.
    ///
    /// Returns `0.0` for infinite `r` (an unserved client earns nothing).
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or NaN.
    pub fn value(&self, r: f64) -> f64 {
        assert!(!r.is_nan() && r >= 0.0, "response time must be >= 0, got {r}");
        if r == f64::INFINITY {
            return 0.0;
        }
        match self {
            Self::Linear { intercept, slope } => (intercept - slope * r).max(0.0),
            Self::Step { levels } => {
                levels.iter().find(|&&(t, _)| r <= t).map(|&(_, v)| v).unwrap_or(0.0)
            }
            Self::Exponential { intercept, tau } => intercept * (-r / tau).exp(),
        }
    }

    /// Price at zero response time — the most a request of this class can
    /// ever earn.
    pub fn max_value(&self) -> f64 {
        self.value(0.0)
    }

    /// Magnitude of the local decrease rate `−dU/dr` at response time `r`.
    ///
    /// For the step form this is the *average* slope of the surrounding
    /// step, which is what the paper's linearization needs; beyond the last
    /// threshold it is `0`.
    pub fn slope_at(&self, r: f64) -> f64 {
        assert!(!r.is_nan() && r >= 0.0, "response time must be >= 0, got {r}");
        match self {
            Self::Linear { intercept, slope } => {
                if *slope * r >= *intercept {
                    0.0
                } else {
                    *slope
                }
            }
            Self::Step { levels } => {
                let mut prev_t = 0.0;
                let mut prev_v = self.max_value();
                for &(t, v) in levels {
                    if r <= t {
                        let drop = prev_v - v;
                        let width = t - prev_t;
                        // First step: charge its own drop over its width so
                        // tight SLAs look steep to the linearization.
                        let own = (self.max_value() - v).max(drop);
                        return if width > 0.0 { own / width } else { 0.0 };
                    }
                    prev_t = t;
                    prev_v = v;
                }
                0.0
            }
            Self::Exponential { intercept, tau } => intercept / tau * (-r / tau).exp(),
        }
    }

    /// The "reference" slope: the utility's average decrease rate over its
    /// active range, `U(0)/horizon`, falling back to the initial local
    /// slope for functions that never reach zero.
    ///
    /// This is the linearization scale solvers use before a response time
    /// is known. A purely local `slope_at(0)` would be wrong for step
    /// utilities (flat inside the first band, so a fully-satisfied *and* a
    /// hopelessly-starved client would both look weightless); the secant
    /// over the whole range is positive whenever the SLA pays anything.
    pub fn reference_slope(&self) -> f64 {
        let horizon = self.horizon();
        if horizon.is_finite() && horizon > 0.0 {
            self.max_value() / horizon
        } else {
            self.slope_at(0.0)
        }
    }

    /// Largest response time at which the utility is still positive, or
    /// `f64::INFINITY` if it never reaches zero (exponential form).
    pub fn horizon(&self) -> f64 {
        match self {
            Self::Linear { intercept, slope } => {
                if *slope == 0.0 {
                    f64::INFINITY
                } else {
                    intercept / slope
                }
            }
            Self::Step { levels } => {
                levels.iter().rev().find(|&&(_, v)| v > 0.0).map(|&(t, _)| t).unwrap_or(0.0)
            }
            Self::Exponential { .. } => f64::INFINITY,
        }
    }
}

/// A utility (SLA) class: an id plus the utility function every client of
/// the class shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityClass {
    /// Identifier of this class within the [`crate::CloudSystem`] catalog.
    pub id: UtilityClassId,
    /// The price function of mean response time.
    pub function: UtilityFunction,
}

impl UtilityClass {
    /// Creates a utility class.
    pub fn new(id: UtilityClassId, function: UtilityFunction) -> Self {
        Self { id, function }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_clamps_to_zero() {
        let u = UtilityFunction::linear(2.0, 0.5);
        assert_eq!(u.value(0.0), 2.0);
        assert_eq!(u.value(2.0), 1.0);
        assert_eq!(u.value(4.0), 0.0);
        assert_eq!(u.value(100.0), 0.0);
        assert_eq!(u.value(f64::INFINITY), 0.0);
    }

    #[test]
    fn linear_slope_vanishes_past_horizon() {
        let u = UtilityFunction::linear(2.0, 0.5);
        assert_eq!(u.slope_at(1.0), 0.5);
        assert_eq!(u.slope_at(10.0), 0.0);
        assert_eq!(u.horizon(), 4.0);
    }

    #[test]
    fn step_lookup_is_right_continuous() {
        let u = UtilityFunction::step(vec![(1.0, 3.0), (2.0, 1.0), (5.0, 0.5)]);
        assert_eq!(u.value(0.0), 3.0);
        assert_eq!(u.value(1.0), 3.0);
        assert_eq!(u.value(1.5), 1.0);
        assert_eq!(u.value(4.9), 0.5);
        assert_eq!(u.value(5.1), 0.0);
        assert_eq!(u.horizon(), 5.0);
    }

    #[test]
    fn exponential_decays_smoothly() {
        let u = UtilityFunction::exponential(1.0, 2.0);
        assert!((u.value(2.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(u.horizon(), f64::INFINITY);
        assert!(u.slope_at(0.0) > u.slope_at(5.0));
    }

    #[test]
    fn all_forms_are_non_increasing() {
        let funcs = [
            UtilityFunction::linear(2.0, 0.7),
            UtilityFunction::step(vec![(0.5, 2.0), (1.5, 1.0)]),
            UtilityFunction::exponential(2.0, 1.0),
        ];
        for f in &funcs {
            let mut prev = f.value(0.0);
            for step in 1..200 {
                let r = step as f64 * 0.05;
                let v = f.value(r);
                assert!(v <= prev + 1e-12, "{f:?} increased at r={r}");
                assert!(v >= 0.0);
                prev = v;
            }
        }
    }

    #[test]
    fn max_value_is_value_at_zero() {
        let u = UtilityFunction::step(vec![(1.0, 4.0)]);
        assert_eq!(u.max_value(), 4.0);
    }

    #[test]
    fn reference_slope_is_the_average_decrease() {
        // Step: max value over the horizon.
        let u = UtilityFunction::step(vec![(1.0, 4.0), (2.0, 1.0)]);
        assert_eq!(u.reference_slope(), 4.0 / 2.0);
        // Linear: recovers the literal slope.
        let u = UtilityFunction::linear(2.0, 0.5);
        assert!((u.reference_slope() - 0.5).abs() < 1e-12);
        // Exponential never hits zero: the initial local slope.
        let u = UtilityFunction::exponential(2.0, 4.0);
        assert_eq!(u.reference_slope(), u.slope_at(0.0));
        // Flat linear (slope 0) has an infinite horizon: local slope 0.
        let u = UtilityFunction::linear(2.0, 0.0);
        assert_eq!(u.reference_slope(), 0.0);
    }

    #[test]
    #[should_panic(expected = "intercept must be positive")]
    fn linear_rejects_zero_intercept() {
        let _ = UtilityFunction::linear(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn step_rejects_unsorted_thresholds() {
        let _ = UtilityFunction::step(vec![(2.0, 1.0), (1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "response time must be >= 0")]
    fn value_rejects_negative_response_time() {
        let _ = UtilityFunction::linear(1.0, 1.0).value(-1.0);
    }

    #[test]
    fn serde_round_trip() {
        let u = UtilityClass::new(
            UtilityClassId(2),
            UtilityFunction::step(vec![(1.0, 2.0), (2.0, 1.0)]),
        );
        let json = serde_json::to_string(&u).unwrap();
        let back: UtilityClass = serde_json::from_str(&json).unwrap();
        assert_eq!(back, u);
    }
}
