//! Incremental profit evaluation (the solver's hot path).
//!
//! [`evaluate`] walks every client and every server; local-search
//! operators that probe thousands of small moves per round turn that into
//! an `O(n·moves)` bill. This module exploits the model's locality —
//! [`evaluate_client`] depends only on that client's own placements, and a
//! server's operation cost only on its own aggregate load — to rescore a
//! move in time proportional to what the move *touched*.
//!
//! [`ScoredAllocation`] wraps an [`Allocation`] together with cached
//! per-client outcomes, per-server costs, and compensated running totals.
//! Mutations mirror the `Allocation` API (`place`, `remove`,
//! `clear_client`, `assign_cluster`) and mark the touched clients/servers
//! dirty; [`ScoredAllocation::profit`] flushes the dirty sets and returns
//! the running total.
//!
//! Every mutation — and every cache write a flush performs — is journaled,
//! so a tentative move can be un-done exactly: [`ScoredAllocation::savepoint`]
//! marks a point, [`ScoredAllocation::rollback_to`] restores the
//! allocation *and* the score caches bit-for-bit (inverse `place`/`remove`
//! replays fix the placement lists, then a [`ServerLoad`] snapshot erases
//! the float drift those replays leave behind). [`ScoredAllocation::commit`]
//! forgets the journal once a sequence of moves is accepted.
//!
//! With the `check-incremental` feature enabled, every `profit()` call
//! re-derives the profit from scratch and asserts the caches agree within
//! `1e-6` — the correctness anchor the property tests and the test suite
//! lean on.

use cloudalloc_telemetry as telemetry;

use crate::allocation::{Allocation, Placement, ServerLoad};
use crate::compiled::CompiledSystem;
use crate::eval::{evaluate_client, ClientOutcome};
use crate::ids::{ClientId, ClusterId, ServerId};
use crate::server::ServerClass;
use crate::CloudSystem;

/// A journal mark; rolling back to it restores the exact state the
/// evaluator had when the mark was taken.
///
/// Savepoints are invalidated by [`ScoredAllocation::commit`] — only roll
/// back to marks taken after the most recent commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint(usize);

/// The net allocation-level effect of a transaction: which placement
/// pairs and cluster slots it touched, with their final values. Extracted
/// from a journal suffix by [`ScoredAllocation::delta_since`] and
/// replayed onto another evaluator by [`ScoredAllocation::apply_delta`];
/// an empty delta means the transaction changed nothing (e.g. every trial
/// move was rolled back).
///
/// Entries are sorted by id, so equal transactions produce equal deltas
/// regardless of the order their mutations were journaled in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocationDelta {
    /// Placement pairs whose final state is *absent*.
    removes: Vec<(ClientId, ServerId)>,
    /// Cluster slots with their final assignment.
    clusters: Vec<(ClientId, Option<ClusterId>)>,
    /// Placement pairs with their final placement.
    places: Vec<(ClientId, ServerId, Placement)>,
}

impl AllocationDelta {
    /// `true` when replaying the delta is a no-op.
    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.clusters.is_empty() && self.places.is_empty()
    }

    /// Number of touched placement pairs and cluster slots.
    pub fn len(&self) -> usize {
        self.removes.len() + self.clusters.len() + self.places.len()
    }
}

/// One reversible step, recorded before the corresponding state change.
#[derive(Debug, Clone)]
enum Undo {
    /// A placement changed on `server`: restore `prev` (re-place or
    /// remove), then overwrite the server's aggregate load with the
    /// pre-change snapshot so float drift from the replay cancels.
    Placement { client: ClientId, server: ServerId, prev: Option<Placement>, prev_load: ServerLoad },
    /// The cluster slot of `client` changed.
    Cluster { client: ClientId, prev: Option<ClusterId> },
    /// A flush overwrote the cached outcome of `client`.
    ClientCache { client: ClientId, prev: ClientOutcome, prev_dirty: bool },
    /// A flush overwrote the cached cost/on-state of `server`.
    ServerCache { server: ServerId, prev_cost: f64, prev_on: bool, prev_dirty: bool },
    /// A flush was about to adjust the running totals.
    Totals { revenue: f64, revenue_comp: f64, cost: f64, cost_comp: f64, active: usize },
}

/// Neumaier-compensated add: keeps the running totals accurate to a few
/// ulps across arbitrarily long mutate/flush sequences, so the cached
/// profit tracks a from-scratch [`evaluate`] within `1e-6` indefinitely.
///
/// [`evaluate`]: crate::evaluate
fn compensated_add(sum: &mut f64, comp: &mut f64, x: f64) {
    let t = *sum + x;
    if sum.abs() >= x.abs() {
        *comp += (*sum - t) + x;
    } else {
        *comp += (x - t) + *sum;
    }
    *sum = t;
}

/// An [`Allocation`] bundled with incrementally maintained score caches.
#[derive(Debug)]
pub struct ScoredAllocation<'a> {
    system: &'a CloudSystem,
    /// Lowered runtime view, when the caller went through
    /// [`ScoredAllocation::lowered`]; rescoring then reads system facts
    /// from the flat arrays instead of the AoS model. `None` keeps the
    /// frontend path as the retained reference.
    compiled: Option<&'a CompiledSystem<'a>>,
    alloc: Allocation,
    /// Cached `evaluate_client` result per client; stale iff dirty.
    outcomes: Vec<ClientOutcome>,
    client_dirty: Vec<bool>,
    dirty_clients: Vec<ClientId>,
    /// Cached operation cost per server (0 when OFF); stale iff dirty.
    server_cost: Vec<f64>,
    server_on: Vec<bool>,
    server_dirty: Vec<bool>,
    dirty_servers: Vec<ServerId>,
    revenue: f64,
    revenue_comp: f64,
    cost: f64,
    cost_comp: f64,
    active: usize,
    journal: Vec<Undo>,
}

impl<'a> ScoredAllocation<'a> {
    /// Wraps `alloc`, seeding every cache with a from-scratch evaluation.
    pub fn new(system: &'a CloudSystem, alloc: Allocation) -> Self {
        Self::with_compiled(system, None, alloc)
    }

    /// Wraps `alloc` against a lowered [`CompiledSystem`]: the solver's
    /// production constructor. Behaves bit-for-bit like
    /// [`ScoredAllocation::new`] on the same system, but every rescore
    /// reads the structure-of-arrays view.
    pub fn lowered(compiled: &'a CompiledSystem<'a>, alloc: Allocation) -> Self {
        Self::with_compiled(compiled.system(), Some(compiled), alloc)
    }

    fn with_compiled(
        system: &'a CloudSystem,
        compiled: Option<&'a CompiledSystem<'a>>,
        mut alloc: Allocation,
    ) -> Self {
        // Candidate searches prune clusters via the slack index; make sure
        // it exists (deserialized allocations arrive without one).
        alloc.build_slack_index(system);
        let n = system.num_clients();
        let m = system.num_servers();
        let mut this = Self {
            system,
            compiled,
            alloc,
            outcomes: vec![ClientOutcome { response_time: f64::INFINITY, revenue: 0.0 }; n],
            client_dirty: vec![false; n],
            dirty_clients: Vec::new(),
            server_cost: vec![0.0; m],
            server_on: vec![false; m],
            server_dirty: vec![false; m],
            dirty_servers: Vec::new(),
            revenue: 0.0,
            revenue_comp: 0.0,
            cost: 0.0,
            cost_comp: 0.0,
            active: 0,
            journal: Vec::new(),
        };
        for i in 0..n {
            let outcome = this.score_client(ClientId(i));
            compensated_add(&mut this.revenue, &mut this.revenue_comp, outcome.revenue);
            this.outcomes[i] = outcome;
        }
        for j in 0..m {
            let load = this.alloc.load(ServerId(j));
            if load.is_on() {
                let class = this.resolved_class(ServerId(j));
                let c = class.operation_cost(load.work_processing / class.cap_processing);
                compensated_add(&mut this.cost, &mut this.cost_comp, c);
                this.server_cost[j] = c;
                this.server_on[j] = true;
                this.active += 1;
            }
        }
        this
    }

    /// Rescores one client through the compiled view when lowered, the
    /// frontend model otherwise; identical results either way.
    fn score_client(&self, client: ClientId) -> ClientOutcome {
        match self.compiled {
            Some(cs) => cs.evaluate_client(&self.alloc, client),
            None => evaluate_client(self.system, &self.alloc, client),
        }
    }

    /// Hardware class of `server`, read through the compiled arrays when
    /// lowered.
    fn resolved_class(&self, server: ServerId) -> &'a ServerClass {
        match self.compiled {
            Some(cs) => cs.class_of(server),
            None => self.system.class_of(server),
        }
    }

    /// Wraps a fresh empty allocation for `system`.
    pub fn fresh(system: &'a CloudSystem) -> Self {
        Self::new(system, Allocation::new(system))
    }

    /// The system this evaluator scores against.
    pub fn system(&self) -> &'a CloudSystem {
        self.system
    }

    /// Read access to the wrapped allocation.
    pub fn alloc(&self) -> &Allocation {
        &self.alloc
    }

    /// Unwraps the allocation, dropping the caches.
    pub fn into_allocation(self) -> Allocation {
        self.alloc
    }

    /// Number of servers currently ON, from the cache.
    pub fn num_active_servers(&mut self) -> usize {
        self.flush();
        self.active
    }

    // ------------------------------------------------------------------
    // Mutations (mirror the `Allocation` API, journaled)
    // ------------------------------------------------------------------

    /// Sets (or replaces) the placement of `client` on `server`; an
    /// `alpha == 0` placement removes the pair. Same panics as
    /// [`Allocation::place`].
    pub fn place(&mut self, client: ClientId, server: ServerId, placement: Placement) {
        if placement.alpha == 0.0 {
            self.remove(client, server);
            return;
        }
        self.journal.push(Undo::Placement {
            client,
            server,
            prev: self.alloc.placement(client, server),
            prev_load: self.alloc.load(server),
        });
        self.alloc.place(self.system, client, server, placement);
        self.touch_client(client);
        self.touch_server(server);
    }

    /// Removes the placement of `client` on `server`, if present.
    pub fn remove(&mut self, client: ClientId, server: ServerId) {
        let Some(prev) = self.alloc.placement(client, server) else {
            return;
        };
        self.journal.push(Undo::Placement {
            client,
            server,
            prev: Some(prev),
            prev_load: self.alloc.load(server),
        });
        self.alloc.remove(self.system, client, server);
        self.touch_client(client);
        self.touch_server(server);
    }

    /// Removes every placement of `client` and its cluster assignment,
    /// returning the placements it held.
    pub fn clear_client(&mut self, client: ClientId) -> Vec<(ServerId, Placement)> {
        let held = self.alloc.placements(client).to_vec();
        for &(server, _) in &held {
            self.remove(client, server);
        }
        let prev = self.alloc.cluster_of(client);
        if prev.is_some() {
            self.journal.push(Undo::Cluster { client, prev });
            self.alloc.set_cluster_raw(client, None);
        }
        held
    }

    /// Assigns `client` to `cluster`. Same panics as
    /// [`Allocation::assign_cluster`].
    pub fn assign_cluster(&mut self, client: ClientId, cluster: ClusterId) {
        let prev = self.alloc.cluster_of(client);
        if prev == Some(cluster) {
            return;
        }
        self.journal.push(Undo::Cluster { client, prev });
        self.alloc.assign_cluster(client, cluster);
    }

    /// Journaled raw write of the cluster slot, including clearing it.
    /// Unlike [`ScoredAllocation::assign_cluster`] this bypasses the
    /// placement guard, so it exists for [`ScoredAllocation::apply_delta`]
    /// replays where the surrounding delta guarantees the client holds no
    /// placements whenever its slot actually changes.
    fn set_cluster(&mut self, client: ClientId, cluster: Option<ClusterId>) {
        let prev = self.alloc.cluster_of(client);
        if prev == cluster {
            return;
        }
        debug_assert!(
            self.alloc.placements(client).is_empty(),
            "cannot rewrite the cluster slot of {client} while it holds placements"
        );
        self.journal.push(Undo::Cluster { client, prev });
        self.alloc.set_cluster_raw(client, cluster);
    }

    // ------------------------------------------------------------------
    // Scoring
    // ------------------------------------------------------------------

    /// Current profit: flushes the dirty sets (rescoring only what recent
    /// mutations touched) and returns the running total.
    pub fn profit(&mut self) -> f64 {
        self.flush();
        let profit = (self.revenue + self.revenue_comp) - (self.cost + self.cost_comp);
        #[cfg(feature = "check-incremental")]
        self.check_against_full_evaluation(profit);
        profit
    }

    /// The (up-to-date) outcome of one client, rescoring it if dirty.
    pub fn outcome(&mut self, client: ClientId) -> ClientOutcome {
        let i = client.index();
        if self.client_dirty[i] {
            self.journal.push(Undo::Totals {
                revenue: self.revenue,
                revenue_comp: self.revenue_comp,
                cost: self.cost,
                cost_comp: self.cost_comp,
                active: self.active,
            });
            self.refresh_client(client);
        }
        self.outcomes[i]
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Marks the current state; see [`ScoredAllocation::rollback_to`].
    pub fn savepoint(&self) -> Savepoint {
        telemetry::counter!("incr.savepoints").incr();
        Savepoint(self.journal.len())
    }

    /// Restores the exact state (allocation *and* caches, bit-for-bit) the
    /// evaluator had when `mark` was taken.
    pub fn rollback_to(&mut self, mark: Savepoint) {
        telemetry::counter!("incr.rollbacks").incr();
        telemetry::histogram!("incr.rollback_depth")
            .record(self.journal.len().saturating_sub(mark.0) as u64);
        while self.journal.len() > mark.0 {
            match self.journal.pop().expect("journal entry above the savepoint") {
                Undo::Placement { client, server, prev, prev_load } => {
                    match prev {
                        Some(p) => self.alloc.place(self.system, client, server, p),
                        None => self.alloc.remove(self.system, client, server),
                    }
                    self.alloc.restore_load(server, prev_load);
                }
                Undo::Cluster { client, prev } => {
                    self.alloc.set_cluster_raw(client, prev);
                }
                Undo::ClientCache { client, prev, prev_dirty } => {
                    self.outcomes[client.index()] = prev;
                    if prev_dirty && !self.client_dirty[client.index()] {
                        self.dirty_clients.push(client);
                    }
                    self.client_dirty[client.index()] = prev_dirty;
                }
                Undo::ServerCache { server, prev_cost, prev_on, prev_dirty } => {
                    self.server_cost[server.index()] = prev_cost;
                    self.server_on[server.index()] = prev_on;
                    if prev_dirty && !self.server_dirty[server.index()] {
                        self.dirty_servers.push(server);
                    }
                    self.server_dirty[server.index()] = prev_dirty;
                }
                Undo::Totals { revenue, revenue_comp, cost, cost_comp, active } => {
                    self.revenue = revenue;
                    self.revenue_comp = revenue_comp;
                    self.cost = cost;
                    self.cost_comp = cost_comp;
                    self.active = active;
                }
            }
        }
    }

    /// Accepts everything since the last commit (or construction): drops
    /// the journal, invalidating outstanding savepoints. Mutations touched
    /// by rolled-back flush records stay correctly marked dirty, so
    /// committing never desynchronizes the caches. Also tightens the
    /// cluster slack bounds back to exact, so pruning stays effective
    /// across long mutate/rollback sequences.
    pub fn commit(&mut self) {
        telemetry::counter!("incr.commits").incr();
        self.journal.clear();
        self.alloc.refresh_slack();
    }

    // ------------------------------------------------------------------
    // Forks and deltas (intra-solve fan-out support)
    // ------------------------------------------------------------------

    /// An independent copy of this evaluator with an empty journal: the
    /// allocation and every score cache are cloned, so mutations on the
    /// fork never touch `self`. The solver's intra-round fan-out hands
    /// one fork per cluster to concurrent workers, then folds the
    /// accepted changes back via [`ScoredAllocation::delta_since`] /
    /// [`ScoredAllocation::apply_delta`].
    pub fn fork(&self) -> ScoredAllocation<'a> {
        telemetry::counter!("incr.forks").incr();
        ScoredAllocation {
            system: self.system,
            compiled: self.compiled,
            alloc: self.alloc.clone(),
            outcomes: self.outcomes.clone(),
            client_dirty: self.client_dirty.clone(),
            dirty_clients: self.dirty_clients.clone(),
            server_cost: self.server_cost.clone(),
            server_on: self.server_on.clone(),
            server_dirty: self.server_dirty.clone(),
            dirty_servers: self.dirty_servers.clone(),
            revenue: self.revenue,
            revenue_comp: self.revenue_comp,
            cost: self.cost,
            cost_comp: self.cost_comp,
            active: self.active,
            journal: Vec::new(),
        }
    }

    /// The *net* allocation change since `mark`, read from the journal
    /// suffix: every placement pair and cluster slot touched by a
    /// surviving (not rolled-back) mutation, each paired with its final
    /// value in the current state. Rejected trial moves roll back before
    /// their journal entries are read, so they contribute nothing.
    pub fn delta_since(&self, mark: Savepoint) -> AllocationDelta {
        let mut pairs: Vec<(ClientId, ServerId)> = Vec::new();
        let mut clients: Vec<ClientId> = Vec::new();
        for undo in &self.journal[mark.0..] {
            match undo {
                Undo::Placement { client, server, .. } => pairs.push((*client, *server)),
                Undo::Cluster { client, .. } => clients.push(*client),
                _ => {}
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        clients.sort_unstable();
        clients.dedup();
        let mut delta = AllocationDelta::default();
        for (client, server) in pairs {
            match self.alloc.placement(client, server) {
                Some(p) => delta.places.push((client, server, p)),
                None => delta.removes.push((client, server)),
            }
        }
        delta.clusters = clients.into_iter().map(|c| (c, self.alloc.cluster_of(c))).collect();
        delta
    }

    /// Replays a delta extracted from a fork onto this evaluator, through
    /// the normal journaled mutation path (so it participates in
    /// savepoints/rollbacks like any hand-written move). The order —
    /// removals, then cluster slots, then placements — keeps every
    /// intermediate state legal: a client only changes cluster once its
    /// old placements are gone, and only gains placements once its slot
    /// points at the new cluster.
    ///
    /// The caller must ensure this evaluator still agrees with the fork's
    /// base state on everything the delta touches (the solver guarantees
    /// that by giving concurrent forks disjoint clusters).
    pub fn apply_delta(&mut self, delta: &AllocationDelta) {
        for &(client, server) in &delta.removes {
            self.remove(client, server);
        }
        for &(client, cluster) in &delta.clusters {
            self.set_cluster(client, cluster);
        }
        for &(client, server, placement) in &delta.places {
            self.place(client, server, placement);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn touch_client(&mut self, client: ClientId) {
        if !self.client_dirty[client.index()] {
            self.client_dirty[client.index()] = true;
            self.dirty_clients.push(client);
        }
    }

    fn touch_server(&mut self, server: ServerId) {
        if !self.server_dirty[server.index()] {
            self.server_dirty[server.index()] = true;
            self.dirty_servers.push(server);
        }
    }

    /// Rescores every dirty client/server, folding the deltas into the
    /// running totals. Cache writes are journaled so rollbacks restore
    /// them exactly.
    fn flush(&mut self) {
        if self.dirty_clients.is_empty() && self.dirty_servers.is_empty() {
            return;
        }
        telemetry::histogram!("incr.flush_clients").record(self.dirty_clients.len() as u64);
        telemetry::histogram!("incr.flush_servers").record(self.dirty_servers.len() as u64);
        self.journal.push(Undo::Totals {
            revenue: self.revenue,
            revenue_comp: self.revenue_comp,
            cost: self.cost,
            cost_comp: self.cost_comp,
            active: self.active,
        });
        while let Some(client) = self.dirty_clients.pop() {
            // Entries may go stale when a rollback clears the flag of a
            // still-queued client; skip those.
            if self.client_dirty[client.index()] {
                self.refresh_client(client);
            }
        }
        while let Some(server) = self.dirty_servers.pop() {
            if self.server_dirty[server.index()] {
                self.refresh_server(server);
            }
        }
    }

    /// Rescores one client (flag must be dirty; a totals record must
    /// already be journaled by the caller).
    fn refresh_client(&mut self, client: ClientId) {
        telemetry::counter!("incr.rescore_clients").incr();
        let i = client.index();
        self.client_dirty[i] = false;
        let prev = self.outcomes[i];
        self.journal.push(Undo::ClientCache { client, prev, prev_dirty: true });
        let new = self.score_client(client);
        compensated_add(&mut self.revenue, &mut self.revenue_comp, new.revenue - prev.revenue);
        self.outcomes[i] = new;
    }

    /// Rescores one server's cost/on-state (flag must be dirty).
    fn refresh_server(&mut self, server: ServerId) {
        telemetry::counter!("incr.rescore_servers").incr();
        let j = server.index();
        self.server_dirty[j] = false;
        let prev_cost = self.server_cost[j];
        let prev_on = self.server_on[j];
        self.journal.push(Undo::ServerCache { server, prev_cost, prev_on, prev_dirty: true });
        let load = self.alloc.load(server);
        let on = load.is_on();
        let new_cost = if on {
            let class = self.resolved_class(server);
            class.operation_cost(load.work_processing / class.cap_processing)
        } else {
            0.0
        };
        compensated_add(&mut self.cost, &mut self.cost_comp, new_cost - prev_cost);
        self.server_cost[j] = new_cost;
        self.server_on[j] = on;
        match (prev_on, on) {
            (false, true) => self.active += 1,
            (true, false) => self.active -= 1,
            _ => {}
        }
    }

    /// `check-incremental` anchor: the cached score must match a
    /// from-scratch evaluation within `1e-6` (and every clean per-client
    /// cache must match exactly up to float noise).
    #[cfg(feature = "check-incremental")]
    fn check_against_full_evaluation(&self, cached_profit: f64) {
        let full = crate::eval::evaluate(self.system, &self.alloc);
        let tol = 1e-6 * (1.0 + full.profit.abs());
        assert!(
            (full.profit - cached_profit).abs() <= tol,
            "incremental profit {cached_profit} drifted from full evaluation {}",
            full.profit
        );
        for (i, fresh) in full.clients.iter().enumerate() {
            let cached = self.outcomes[i];
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + b.abs()) || (a == b);
            assert!(
                close(cached.revenue, fresh.revenue)
                    && (close(cached.response_time, fresh.response_time)
                        || (cached.response_time.is_infinite()
                            && fresh.response_time.is_infinite())),
                "client {i}: cached outcome {cached:?} != fresh {fresh:?}"
            );
        }
        assert_eq!(self.active, full.active_servers, "active-server cache out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::ids::{ServerClassId, UtilityClassId};
    use crate::{Client, Cluster, Server, ServerClass, UtilityClass, UtilityFunction};

    /// Two clusters × two servers each, three clients, linear SLAs.
    fn fixture() -> CloudSystem {
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 0.2, 0.1)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(3.0, 1.0))];
        let mut system = CloudSystem::new(classes, utils);
        let k0 = system.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = system.add_cluster(Cluster::new(ClusterId(1)));
        for &k in &[k0, k0, k1, k1] {
            system.add_server(Server::new(ServerClassId(0), k));
        }
        for i in 0..3 {
            system.add_client(Client::new(ClientId(i), UtilityClassId(0), 1.0, 1.0, 0.4, 0.4, 0.5));
        }
        system
    }

    fn agrees_with_full(scored: &mut ScoredAllocation<'_>) {
        let full = evaluate(scored.system(), scored.alloc()).profit;
        let cached = scored.profit();
        assert!(
            (full - cached).abs() <= 1e-9 * (1.0 + full.abs()),
            "cached {cached} vs full {full}"
        );
    }

    #[test]
    fn empty_allocation_scores_zero_revenue() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        assert_eq!(scored.profit(), 0.0);
        assert_eq!(scored.num_active_servers(), 0);
    }

    #[test]
    fn scores_track_mutations() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        agrees_with_full(&mut scored);
        assert_eq!(scored.num_active_servers(), 1);

        scored.assign_cluster(ClientId(1), ClusterId(0));
        scored.place(ClientId(1), ServerId(1), Placement { alpha: 0.6, phi_p: 0.4, phi_c: 0.4 });
        scored.place(ClientId(1), ServerId(0), Placement { alpha: 0.4, phi_p: 0.3, phi_c: 0.3 });
        agrees_with_full(&mut scored);
        assert_eq!(scored.num_active_servers(), 2);

        scored.remove(ClientId(1), ServerId(1));
        agrees_with_full(&mut scored);
        scored.clear_client(ClientId(0));
        agrees_with_full(&mut scored);
        assert_eq!(scored.alloc().cluster_of(ClientId(0)), None);
    }

    #[test]
    fn rollback_restores_allocation_and_score_exactly() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 0.7, phi_p: 0.5, phi_c: 0.5 });
        scored.place(ClientId(0), ServerId(1), Placement { alpha: 0.3, phi_p: 0.2, phi_c: 0.2 });
        scored.commit();
        let profit_before = scored.profit();
        let alloc_before = scored.alloc().clone();

        let mark = scored.savepoint();
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 0.5, phi_p: 0.45, phi_c: 0.4 });
        scored.clear_client(ClientId(0));
        scored.assign_cluster(ClientId(1), ClusterId(1));
        scored.place(ClientId(1), ServerId(2), Placement { alpha: 1.0, phi_p: 0.6, phi_c: 0.6 });
        assert_ne!(scored.profit(), profit_before);

        scored.rollback_to(mark);
        assert_eq!(scored.alloc(), &alloc_before, "allocation must restore bit-exactly");
        assert_eq!(scored.profit(), profit_before, "score must restore bit-exactly");
        agrees_with_full(&mut scored);
    }

    #[test]
    fn nested_savepoints_unwind_independently() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        let outer_profit = scored.profit();
        let outer = scored.savepoint();

        scored.place(ClientId(0), ServerId(1), Placement { alpha: 0.2, phi_p: 0.2, phi_c: 0.2 });
        let mid_profit = scored.profit();
        let inner = scored.savepoint();

        scored.assign_cluster(ClientId(2), ClusterId(0));
        scored.place(ClientId(2), ServerId(1), Placement { alpha: 1.0, phi_p: 0.3, phi_c: 0.3 });
        scored.profit();

        scored.rollback_to(inner);
        assert_eq!(scored.profit(), mid_profit);
        scored.rollback_to(outer);
        assert_eq!(scored.profit(), outer_profit);
        agrees_with_full(&mut scored);
    }

    #[test]
    fn rollback_preserves_pre_transaction_dirtiness() {
        // A client left dirty before the savepoint must be rescored
        // correctly after a mid-transaction flush is rolled back.
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        // No flush: client 0 is dirty going into the transaction.
        let mark = scored.savepoint();
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.6, phi_c: 0.6 });
        scored.profit(); // flush inside the transaction
        scored.rollback_to(mark);
        agrees_with_full(&mut scored);
    }

    #[test]
    fn outcome_rescores_single_clients() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        let outcome = scored.outcome(ClientId(0));
        let fresh = evaluate_client(&system, scored.alloc(), ClientId(0));
        assert_eq!(outcome.revenue, fresh.revenue);
        assert_eq!(outcome.response_time, fresh.response_time);
        // Unplaced clients keep the zero outcome.
        assert_eq!(scored.outcome(ClientId(2)).revenue, 0.0);
        agrees_with_full(&mut scored);
    }

    #[test]
    fn lowered_scorer_matches_plain_bitwise() {
        let system = fixture();
        let compiled = CompiledSystem::new(&system);
        let mut plain = ScoredAllocation::fresh(&system);
        let mut low = ScoredAllocation::lowered(&compiled, Allocation::new(&system));
        let step = |s: &mut ScoredAllocation<'_>| {
            s.assign_cluster(ClientId(0), ClusterId(0));
            s.place(ClientId(0), ServerId(0), Placement { alpha: 0.7, phi_p: 0.5, phi_c: 0.5 });
            s.place(ClientId(0), ServerId(1), Placement { alpha: 0.3, phi_p: 0.2, phi_c: 0.2 });
            s.assign_cluster(ClientId(1), ClusterId(1));
            s.place(ClientId(1), ServerId(2), Placement { alpha: 1.0, phi_p: 0.6, phi_c: 0.6 });
            let mark = s.savepoint();
            s.clear_client(ClientId(0));
            s.rollback_to(mark);
            s.remove(ClientId(1), ServerId(2));
        };
        step(&mut plain);
        step(&mut low);
        assert_eq!(plain.profit().to_bits(), low.profit().to_bits());
        for i in 0..system.num_clients() {
            let a = plain.outcome(ClientId(i));
            let b = low.outcome(ClientId(i));
            assert_eq!(a.revenue.to_bits(), b.revenue.to_bits());
            assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
        }
        assert_eq!(plain.num_active_servers(), low.num_active_servers());
    }

    #[test]
    fn fork_isolates_mutations_and_delta_replays_them() {
        let system = fixture();
        let mut live = ScoredAllocation::fresh(&system);
        live.assign_cluster(ClientId(0), ClusterId(0));
        live.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        let live_profit = live.profit();

        let mut sim = live.fork();
        let mark = sim.savepoint();
        // Move client 0 to the sibling server and bring client 1 in.
        sim.remove(ClientId(0), ServerId(0));
        sim.place(ClientId(0), ServerId(1), Placement { alpha: 1.0, phi_p: 0.6, phi_c: 0.6 });
        sim.assign_cluster(ClientId(1), ClusterId(0));
        sim.place(ClientId(1), ServerId(0), Placement { alpha: 1.0, phi_p: 0.4, phi_c: 0.4 });
        let sim_profit = sim.profit();

        // The live evaluator is untouched until the delta is applied.
        assert_eq!(live.profit().to_bits(), live_profit.to_bits());
        let delta = sim.delta_since(mark);
        assert!(!delta.is_empty());
        live.apply_delta(&delta);
        assert_eq!(live.alloc(), sim.alloc(), "replay must reproduce the fork's allocation");
        assert!((live.profit() - sim_profit).abs() <= 1e-9 * (1.0 + sim_profit.abs()));
        agrees_with_full(&mut live);
    }

    #[test]
    fn rolled_back_trials_leave_an_empty_delta() {
        let system = fixture();
        let mut live = ScoredAllocation::fresh(&system);
        live.assign_cluster(ClientId(0), ClusterId(0));
        live.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        live.profit();

        let mut sim = live.fork();
        let mark = sim.savepoint();
        let trial = sim.savepoint();
        sim.place(ClientId(0), ServerId(1), Placement { alpha: 0.3, phi_p: 0.2, phi_c: 0.2 });
        sim.clear_client(ClientId(0));
        sim.profit();
        sim.rollback_to(trial);
        let delta = sim.delta_since(mark);
        assert!(delta.is_empty(), "rejected trials must not leak into the delta: {delta:?}");
        assert_eq!(delta.len(), 0);
    }

    #[test]
    fn delta_replays_cluster_moves_and_evictions() {
        let system = fixture();
        let mut live = ScoredAllocation::fresh(&system);
        live.assign_cluster(ClientId(0), ClusterId(0));
        live.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        live.assign_cluster(ClientId(1), ClusterId(0));
        live.place(ClientId(1), ServerId(1), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        live.profit();

        let mut sim = live.fork();
        let mark = sim.savepoint();
        // Client 0 migrates to cluster 1; client 1 is evicted entirely.
        sim.clear_client(ClientId(0));
        sim.assign_cluster(ClientId(0), ClusterId(1));
        sim.place(ClientId(0), ServerId(2), Placement { alpha: 1.0, phi_p: 0.7, phi_c: 0.7 });
        sim.clear_client(ClientId(1));
        let sim_profit = sim.profit();

        live.apply_delta(&sim.delta_since(mark));
        assert_eq!(live.alloc(), sim.alloc());
        assert_eq!(live.alloc().cluster_of(ClientId(0)), Some(ClusterId(1)));
        assert_eq!(live.alloc().cluster_of(ClientId(1)), None);
        assert!((live.profit() - sim_profit).abs() <= 1e-9 * (1.0 + sim_profit.abs()));
        agrees_with_full(&mut live);
    }

    #[test]
    fn applied_deltas_participate_in_rollbacks() {
        let system = fixture();
        let mut live = ScoredAllocation::fresh(&system);
        live.assign_cluster(ClientId(0), ClusterId(0));
        live.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        let before = live.profit();
        let alloc_before = live.alloc().clone();

        let mut sim = live.fork();
        let mark = sim.savepoint();
        sim.place(ClientId(0), ServerId(1), Placement { alpha: 0.4, phi_p: 0.3, phi_c: 0.3 });
        let delta = sim.delta_since(mark);

        let undo = live.savepoint();
        live.apply_delta(&delta);
        assert_ne!(live.profit().to_bits(), before.to_bits());
        live.rollback_to(undo);
        assert_eq!(live.alloc(), &alloc_before);
        assert_eq!(live.profit().to_bits(), before.to_bits());
    }

    #[test]
    fn zero_alpha_place_removes() {
        let system = fixture();
        let mut scored = ScoredAllocation::fresh(&system);
        scored.assign_cluster(ClientId(0), ClusterId(0));
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 });
        scored.place(ClientId(0), ServerId(0), Placement { alpha: 0.0, phi_p: 0.0, phi_c: 0.0 });
        assert!(scored.alloc().placements(ClientId(0)).is_empty());
        assert_eq!(scored.num_active_servers(), 0);
        agrees_with_full(&mut scored);
    }
}
