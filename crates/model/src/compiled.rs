//! Structure-of-arrays lowering of [`CloudSystem`] for the solver hot paths.
//!
//! [`CloudSystem`] is the serde-facing frontend model: entities live in
//! id-indexed structs and every derived quantity (a server's resolved
//! class capacities, a client's per-class service rates, the reference
//! slope of its SLA) is recomputed through id → struct indirection on
//! each access. That layout is right for construction and serialization
//! and wrong for the inner loops of `Resource_Alloc`, which scan the
//! servers of a cluster millions of times per solve.
//!
//! [`CompiledSystem`] is the runtime counterpart: a one-shot lowering
//! pass (built once at solve entry, `O(classes × clients + servers)`)
//! that flattens everything the hot paths read into contiguous parallel
//! arrays:
//!
//! - per-server arrays carrying the *resolved* class capacities, power
//!   terms and background load, plus the class/cluster indices used by
//!   the curve-dedup signatures;
//! - a dense cluster-major server permutation (`cluster_start[k] ..
//!   cluster_start[k+1]` slices of `cluster_servers`), replacing the
//!   per-cluster `Vec<ServerId>` walks;
//! - per-client arrays (rates, execution times, storage, utility
//!   function, reference weights);
//! - class-major per-(class, client) service-rate tables `m^p = C^p/t̄^p`
//!   and `m^c = C^c/t̄^c` — the precomputed "inverse service time per
//!   unit share" the search re-derived on every curve.
//!
//! Every cached value is produced by the *same floating-point expression*
//! the frontend accessors use, so reading it back is bit-for-bit
//! identical to recomputing it; the equivalence suites in `core` rely on
//! this. The lowering borrows the system (`&'a CloudSystem`) — it is a
//! view, not a copy, and the frontend model remains the only
//! construction/serialization surface.

use cloudalloc_telemetry as telemetry;

use crate::allocation::Allocation;
use crate::client::Client;
use crate::cluster::BackgroundLoad;
use crate::eval::{placement_response_time, ClientOutcome, FEASIBILITY_TOL};
use crate::ids::{ClientId, ClusterId, ServerId};
use crate::server::{Server, ServerClass, ServerRef};
use crate::streamed::LoweredClients;
use crate::system::CloudSystem;
use crate::utility::UtilityFunction;

/// Flat, cache-friendly runtime view of a [`CloudSystem`].
///
/// Built once per solve via [`CompiledSystem::new`]; all solver hot paths
/// read system facts through this instead of the AoS frontend model.
/// Cheap to clone relative to a solve, but intended to be shared by
/// reference.
#[derive(Debug, Clone)]
pub struct CompiledSystem<'a> {
    system: &'a CloudSystem,
    classes: &'a [ServerClass],
    servers: &'a [Server],

    // ---- per-server arrays, indexed by ServerId ----
    server_class: Vec<usize>,
    server_cluster: Vec<usize>,
    cap_processing: Vec<f64>,
    cap_communication: Vec<f64>,
    cap_storage: Vec<f64>,
    cost_fixed: Vec<f64>,
    cost_per_utilization: Vec<f64>,
    background: Vec<BackgroundLoad>,

    // ---- dense cluster-major server permutation ----
    cluster_servers: Vec<ServerId>,
    cluster_start: Vec<usize>,

    // ---- per-client arrays, indexed by ClientId ----
    rate_predicted: Vec<f64>,
    rate_agreed: Vec<f64>,
    exec_processing: Vec<f64>,
    exec_communication: Vec<f64>,
    client_storage: Vec<f64>,
    utility_index: Vec<usize>,
    utility: Vec<&'a UtilityFunction>,
    ref_weight: Vec<f64>,
    ref_marginal: Vec<f64>,

    // ---- class-major per-(class, client) service-rate tables ----
    m_p: Vec<f64>,
    m_c: Vec<f64>,
}

impl<'a> CompiledSystem<'a> {
    /// Lowers `system` into its structure-of-arrays runtime view.
    ///
    /// This is the single explicit lowering step: solvers call it once at
    /// solve entry (via `SolverCtx::new`) and never touch the AoS model
    /// mid-search. Cost is `O(classes × clients + servers)` — negligible
    /// next to one greedy pass.
    pub fn new(system: &'a CloudSystem) -> Self {
        // Batch lowering is the streamed lowering with one full-population
        // chunk: a single code path produces the client arrays, which is
        // what makes streamed and batch compiles bit-identical by
        // construction (see `crate::streamed`).
        let mut clients = LoweredClients::new(system.num_clients(), system.server_classes().len());
        clients.push_chunk(system.server_classes(), system.utility_classes(), system.clients());
        compile_streamed(system, clients)
    }

    /// The frontend model this view was lowered from.
    pub fn system(&self) -> &'a CloudSystem {
        self.system
    }

    /// The hardware catalog (borrowed from the frontend model).
    pub fn server_classes(&self) -> &'a [ServerClass] {
        self.classes
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.rate_predicted.len()
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.cluster_start.len() - 1
    }

    // ---- server-side accessors ----

    /// Catalog index of server `id`'s hardware class.
    #[inline]
    pub fn class_index(&self, id: ServerId) -> usize {
        self.server_class[id.index()]
    }

    /// Resolved hardware class of server `id`.
    #[inline]
    pub fn class_of(&self, id: ServerId) -> &'a ServerClass {
        &self.classes[self.server_class[id.index()]]
    }

    /// Hardware class at catalog index `class`.
    #[inline]
    pub fn class_at(&self, class: usize) -> &'a ServerClass {
        &self.classes[class]
    }

    /// Cluster index of server `id`.
    #[inline]
    pub fn cluster_index(&self, id: ServerId) -> usize {
        self.server_cluster[id.index()]
    }

    /// Resolved processing capacity `C^p` of server `id`.
    #[inline]
    pub fn cap_processing(&self, id: ServerId) -> f64 {
        self.cap_processing[id.index()]
    }

    /// Resolved communication capacity `C^c` of server `id`.
    #[inline]
    pub fn cap_communication(&self, id: ServerId) -> f64 {
        self.cap_communication[id.index()]
    }

    /// Resolved storage capacity `C^m` of server `id`.
    #[inline]
    pub fn cap_storage(&self, id: ServerId) -> f64 {
        self.cap_storage[id.index()]
    }

    /// Resolved idle power cost `P0` of server `id`.
    #[inline]
    pub fn cost_fixed(&self, id: ServerId) -> f64 {
        self.cost_fixed[id.index()]
    }

    /// Resolved utilization power slope `P1` of server `id`.
    #[inline]
    pub fn cost_per_utilization(&self, id: ServerId) -> f64 {
        self.cost_per_utilization[id.index()]
    }

    /// Background load of server `id`.
    #[inline]
    pub fn background(&self, id: ServerId) -> BackgroundLoad {
        self.background[id.index()]
    }

    /// A [`ServerRef`] for server `id`, assembled from the compiled
    /// slices (the one construction site; the frontend iterators reuse
    /// the same layout).
    #[inline]
    pub fn server_ref(&self, id: ServerId) -> ServerRef<'a> {
        let server = &self.servers[id.index()];
        ServerRef { id, server, class: &self.classes[self.server_class[id.index()]] }
    }

    /// The servers of cluster `cluster` in insertion order, as a dense
    /// id slice of the cluster-major permutation.
    #[inline]
    pub fn cluster_servers(&self, cluster: ClusterId) -> &[ServerId] {
        let k = cluster.index();
        &self.cluster_servers[self.cluster_start[k]..self.cluster_start[k + 1]]
    }

    /// Iterates over the servers of cluster `cluster` with resolved
    /// classes, in the same order as `CloudSystem::servers_in`.
    pub fn servers_in(&self, cluster: ClusterId) -> impl Iterator<Item = ServerRef<'a>> + '_ {
        self.cluster_servers(cluster).iter().map(move |&id| self.server_ref(id))
    }

    // ---- client-side accessors ----

    /// The client struct itself (borrowed from the frontend model).
    #[inline]
    pub fn client(&self, id: ClientId) -> &'a Client {
        &self.system.clients()[id.index()]
    }

    /// Predicted arrival rate `λ` of client `id`.
    #[inline]
    pub fn rate_predicted(&self, id: ClientId) -> f64 {
        self.rate_predicted[id.index()]
    }

    /// Agreed (contract) rate `λ̃` of client `id`.
    #[inline]
    pub fn rate_agreed(&self, id: ClientId) -> f64 {
        self.rate_agreed[id.index()]
    }

    /// Per-request processing time `t̄^p` of client `id`.
    #[inline]
    pub fn exec_processing(&self, id: ClientId) -> f64 {
        self.exec_processing[id.index()]
    }

    /// Per-request communication time `t̄^c` of client `id`.
    #[inline]
    pub fn exec_communication(&self, id: ClientId) -> f64 {
        self.exec_communication[id.index()]
    }

    /// Storage demand of client `id`.
    #[inline]
    pub fn client_storage(&self, id: ClientId) -> f64 {
        self.client_storage[id.index()]
    }

    /// Catalog index of client `id`'s utility class.
    #[inline]
    pub fn utility_index(&self, id: ClientId) -> usize {
        self.utility_index[id.index()]
    }

    /// Utility function of client `id`'s SLA class.
    #[inline]
    pub fn utility(&self, id: ClientId) -> &'a UtilityFunction {
        self.utility[id.index()]
    }

    /// Floored reference weight `max(λ̃·U'(ref), 1e-9)` of client `id` —
    /// the cached value behind `SolverCtx::reference_weight`.
    #[inline]
    pub fn ref_weight(&self, id: ClientId) -> f64 {
        self.ref_weight[id.index()]
    }

    /// Unfloored reference marginal `λ̃·U'(ref)` of client `id`, summed
    /// by the automatic shadow-price calibration.
    #[inline]
    pub fn ref_marginal(&self, id: ClientId) -> f64 {
        self.ref_marginal[id.index()]
    }

    // ---- per-(class, client) service-rate tables ----

    /// Processing service rate per unit share, `m^p = C^p/t̄^p`, for
    /// hardware-class index `class` and client `id`.
    #[inline]
    pub fn m_p(&self, class: usize, id: ClientId) -> f64 {
        self.m_p[class * self.rate_predicted.len() + id.index()]
    }

    /// Communication service rate per unit share, `m^c = C^c/t̄^c`, for
    /// hardware-class index `class` and client `id`.
    #[inline]
    pub fn m_c(&self, class: usize, id: ClientId) -> f64 {
        self.m_c[class * self.rate_predicted.len() + id.index()]
    }

    // ---- compiled evaluation ----

    /// Response time and revenue of one client — the compiled twin of
    /// [`crate::evaluate_client`], reading system facts through the
    /// lowered arrays. Bit-for-bit identical results.
    pub fn evaluate_client(&self, alloc: &Allocation, client: ClientId) -> ClientOutcome {
        let c = self.client(client);
        let placements = alloc.placements(client);
        let total_alpha: f64 = placements.iter().map(|&(_, p)| p.alpha).sum();
        if placements.is_empty() || total_alpha < 1.0 - FEASIBILITY_TOL {
            return ClientOutcome { response_time: f64::INFINITY, revenue: 0.0 };
        }
        let mut r = 0.0;
        for &(server, p) in placements {
            let t = placement_response_time(self.class_of(server), c, p);
            if !t.is_finite() {
                return ClientOutcome { response_time: f64::INFINITY, revenue: 0.0 };
            }
            r += p.alpha * t;
        }
        let revenue = self.rate_agreed[client.index()] * self.utility(client).value(r);
        ClientOutcome { response_time: r, revenue }
    }

    /// Operation cost of server `id` carrying `work_processing` units of
    /// processing work — the compiled twin of the `operation_cost` reads
    /// in the incremental scorer.
    #[inline]
    pub fn server_operation_cost(&self, id: ServerId, work_processing: f64) -> f64 {
        let class = self.class_of(id);
        class.operation_cost(work_processing / class.cap_processing)
    }
}

/// Finishes a streamed lowering: moves the fully-populated client arrays
/// of `clients` into a [`CompiledSystem`] over `system`, deriving only
/// the cheap `O(servers)` server-side arrays.
///
/// This is the scale-path twin of [`CompiledSystem::new`] (which routes
/// through it with one full chunk): a producer that filled `clients`
/// chunk-by-chunk under a [`crate::MemoryBudget`] never needed the whole
/// client population staged at once, and nothing client-side is
/// re-derived here — the utility-function pointers are the only per-client
/// data rebuilt, straight from the cached catalog indices.
///
/// # Panics
///
/// Panics when `clients` is incomplete or its declared population or
/// catalog size disagrees with `system`.
pub fn compile_streamed<'a>(
    system: &'a CloudSystem,
    clients: LoweredClients,
) -> CompiledSystem<'a> {
    let _span = telemetry::span!("compile.streamed");
    assert!(
        clients.is_complete(),
        "streamed lowering holds {} of {} clients",
        clients.len(),
        clients.num_clients()
    );
    assert_eq!(
        clients.num_clients(),
        system.num_clients(),
        "streamed lowering disagrees with the system's population"
    );
    let classes = system.server_classes();
    let servers = system.servers();

    let num_servers = servers.len();
    let mut server_class = Vec::with_capacity(num_servers);
    let mut server_cluster = Vec::with_capacity(num_servers);
    let mut cap_processing = Vec::with_capacity(num_servers);
    let mut cap_communication = Vec::with_capacity(num_servers);
    let mut cap_storage = Vec::with_capacity(num_servers);
    let mut cost_fixed = Vec::with_capacity(num_servers);
    let mut cost_per_utilization = Vec::with_capacity(num_servers);
    let mut background = Vec::with_capacity(num_servers);
    for (idx, server) in servers.iter().enumerate() {
        let class = &classes[server.class.index()];
        server_class.push(server.class.index());
        server_cluster.push(server.cluster.index());
        cap_processing.push(class.cap_processing);
        cap_communication.push(class.cap_communication);
        cap_storage.push(class.cap_storage);
        cost_fixed.push(class.cost_fixed);
        cost_per_utilization.push(class.cost_per_utilization);
        background.push(system.background(ServerId(idx)));
    }

    // Cluster-major permutation, preserving each cluster's insertion
    // order (the solver's tie-breaks depend on scan order).
    let mut cluster_servers = Vec::with_capacity(num_servers);
    let mut cluster_start = Vec::with_capacity(system.num_clusters() + 1);
    cluster_start.push(0);
    for cluster in system.clusters() {
        cluster_servers.extend_from_slice(&cluster.servers);
        cluster_start.push(cluster_servers.len());
    }

    let utility: Vec<&'a UtilityFunction> =
        clients.utility_index.iter().map(|&u| &system.utility_classes()[u].function).collect();

    CompiledSystem {
        system,
        classes,
        servers,
        server_class,
        server_cluster,
        cap_processing,
        cap_communication,
        cap_storage,
        cost_fixed,
        cost_per_utilization,
        background,
        cluster_servers,
        cluster_start,
        rate_predicted: clients.rate_predicted,
        rate_agreed: clients.rate_agreed,
        exec_processing: clients.exec_processing,
        exec_communication: clients.exec_communication,
        client_storage: clients.client_storage,
        utility_index: clients.utility_index,
        utility,
        ref_weight: clients.ref_weight,
        ref_marginal: clients.ref_marginal,
        m_p: clients.m_p,
        m_c: clients.m_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::ids::{ServerClassId, UtilityClassId};
    use crate::utility::UtilityClass;

    fn sample_system() -> CloudSystem {
        let classes = vec![
            ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5),
            ServerClass::new(ServerClassId(1), 2.0, 6.0, 3.0, 2.0, 1.0),
        ];
        let utils = vec![
            UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5)),
            UtilityClass::new(UtilityClassId(1), UtilityFunction::linear(3.0, 0.25)),
        ];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = sys.add_cluster(Cluster::new(ClusterId(1)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server_with_background(
            Server::new(ServerClassId(1), k0),
            BackgroundLoad::new(0.25, 0.125, 1.0),
        );
        sys.add_server(Server::new(ServerClassId(0), k1));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(1), 1.0, 1.5, 0.5, 0.25, 1.0));
        sys.add_client(Client::new(ClientId(1), UtilityClassId(0), 2.0, 2.0, 0.25, 0.5, 0.5));
        sys
    }

    #[test]
    fn per_server_arrays_match_frontend_accessors() {
        let sys = sample_system();
        let cs = CompiledSystem::new(&sys);
        for j in 0..sys.num_servers() {
            let id = ServerId(j);
            let class = sys.class_of(id);
            assert_eq!(cs.class_index(id), sys.server(id).class.index());
            assert_eq!(cs.cluster_index(id), sys.server(id).cluster.index());
            assert_eq!(cs.cap_processing(id).to_bits(), class.cap_processing.to_bits());
            assert_eq!(cs.cap_communication(id).to_bits(), class.cap_communication.to_bits());
            assert_eq!(cs.cap_storage(id).to_bits(), class.cap_storage.to_bits());
            assert_eq!(cs.cost_fixed(id).to_bits(), class.cost_fixed.to_bits());
            assert_eq!(cs.cost_per_utilization(id).to_bits(), class.cost_per_utilization.to_bits());
            assert_eq!(cs.background(id), sys.background(id));
            assert!(std::ptr::eq(cs.class_of(id), class));
        }
    }

    #[test]
    fn cluster_permutation_preserves_scan_order() {
        let sys = sample_system();
        let cs = CompiledSystem::new(&sys);
        for k in 0..sys.num_clusters() {
            let cluster = ClusterId(k);
            assert_eq!(cs.cluster_servers(cluster), &sys.cluster(cluster).servers[..]);
            let frontend: Vec<ServerId> = sys.servers_in(cluster).map(|s| s.id).collect();
            let compiled: Vec<ServerId> = cs.servers_in(cluster).map(|s| s.id).collect();
            assert_eq!(frontend, compiled);
        }
    }

    #[test]
    fn service_rate_tables_are_bitwise_identical_to_recomputation() {
        let sys = sample_system();
        let cs = CompiledSystem::new(&sys);
        for (ci, class) in sys.server_classes().iter().enumerate() {
            for c in sys.clients() {
                let m_p = class.cap_processing / c.exec_processing;
                let m_c = class.cap_communication / c.exec_communication;
                assert_eq!(cs.m_p(ci, c.id).to_bits(), m_p.to_bits());
                assert_eq!(cs.m_c(ci, c.id).to_bits(), m_c.to_bits());
            }
        }
    }

    #[test]
    fn client_arrays_and_reference_weights_match() {
        let sys = sample_system();
        let cs = CompiledSystem::new(&sys);
        for c in sys.clients() {
            assert_eq!(cs.rate_predicted(c.id).to_bits(), c.rate_predicted.to_bits());
            assert_eq!(cs.rate_agreed(c.id).to_bits(), c.rate_agreed.to_bits());
            assert_eq!(cs.exec_processing(c.id).to_bits(), c.exec_processing.to_bits());
            assert_eq!(cs.exec_communication(c.id).to_bits(), c.exec_communication.to_bits());
            assert_eq!(cs.client_storage(c.id).to_bits(), c.storage.to_bits());
            assert_eq!(cs.utility_index(c.id), c.utility_class.index());
            assert!(std::ptr::eq(cs.utility(c.id), sys.utility_of(c.id)));
            let marginal = c.rate_agreed * sys.utility_of(c.id).reference_slope();
            assert_eq!(cs.ref_marginal(c.id).to_bits(), marginal.to_bits());
            assert_eq!(cs.ref_weight(c.id).to_bits(), marginal.max(1e-9).to_bits());
        }
    }

    #[test]
    fn streamed_compile_matches_batch_compile() {
        let sys = sample_system();
        let batch = CompiledSystem::new(&sys);
        let mut lowered = LoweredClients::new(sys.num_clients(), sys.server_classes().len());
        for chunk in sys.clients().chunks(1) {
            lowered.push_chunk(sys.server_classes(), sys.utility_classes(), chunk);
        }
        let streamed = compile_streamed(&sys, lowered);
        for i in 0..sys.num_clients() {
            let id = ClientId(i);
            assert_eq!(streamed.ref_weight(id).to_bits(), batch.ref_weight(id).to_bits());
            assert_eq!(streamed.ref_marginal(id).to_bits(), batch.ref_marginal(id).to_bits());
            assert!(std::ptr::eq(streamed.utility(id), batch.utility(id)));
            for ci in 0..sys.server_classes().len() {
                assert_eq!(streamed.m_p(ci, id).to_bits(), batch.m_p(ci, id).to_bits());
                assert_eq!(streamed.m_c(ci, id).to_bits(), batch.m_c(ci, id).to_bits());
            }
        }
    }

    #[test]
    fn compiled_evaluate_client_matches_frontend() {
        use crate::allocation::Placement;
        let sys = sample_system();
        let cs = CompiledSystem::new(&sys);
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 },
        );
        for i in 0..sys.num_clients() {
            let id = ClientId(i);
            let frontend = crate::eval::evaluate_client(&sys, &alloc, id);
            let compiled = cs.evaluate_client(&alloc, id);
            assert_eq!(frontend.response_time.to_bits(), compiled.response_time.to_bits());
            assert_eq!(frontend.revenue.to_bits(), compiled.revenue.to_bits());
        }
    }
}
