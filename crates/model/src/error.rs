//! Error type shared by the model crate's fallible operations.

use std::error::Error;
use std::fmt;

/// Errors produced when building or validating model entities from
/// untrusted (e.g. deserialized) data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An id referenced an entity that does not exist.
    UnknownEntity {
        /// Which kind of entity ("server", "cluster", ...).
        kind: &'static str,
        /// The raw index that failed to resolve.
        index: usize,
    },
    /// A numeric field fell outside its documented domain.
    OutOfRange {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An entity declared an id that does not match the position it was
    /// inserted (or cataloged) at.
    IdMismatch {
        /// Which kind of entity ("server class", "cluster", ...).
        kind: &'static str,
        /// "catalog" for class catalogs, "insertion" for dense entities.
        slot: &'static str,
        /// The id the entity declared.
        declared: usize,
        /// The position it actually occupies.
        position: usize,
    },
    /// A cluster arrived at `add_cluster` already listing servers.
    NonEmptyCluster,
    /// A server's background storage does not fit its class.
    BackgroundStorageOverflow {
        /// Background storage the server carries.
        used: f64,
        /// The class's storage capacity.
        capacity: f64,
    },
    /// A deserialized system's parallel structures disagree (lengths,
    /// cluster membership lists, ...).
    Inconsistent {
        /// What disagreed.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownEntity { kind, index } => {
                write!(f, "unknown {kind} index {index}")
            }
            Self::OutOfRange { field, value } => {
                write!(f, "field {field} out of range: {value}")
            }
            Self::IdMismatch { kind, slot, declared, position } => {
                write!(
                    f,
                    "{kind} id must match its {slot} position (declared {declared}, at {position})"
                )
            }
            Self::NonEmptyCluster => {
                write!(
                    f,
                    "cluster already lists servers; attach servers via CloudSystem::add_server"
                )
            }
            Self::BackgroundStorageOverflow { used, capacity } => {
                write!(f, "background storage {used} exceeds class capacity {capacity}")
            }
            Self::Inconsistent { what } => write!(f, "inconsistent system: {what}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ModelError::UnknownEntity { kind: "server", index: 3 };
        assert_eq!(e.to_string(), "unknown server index 3");
        let e = ModelError::OutOfRange { field: "alpha", value: 1.5 };
        assert_eq!(e.to_string(), "field alpha out of range: 1.5");
    }

    #[test]
    fn new_variants_render_legibly() {
        let e = ModelError::IdMismatch {
            kind: "server class",
            slot: "catalog",
            declared: 4,
            position: 2,
        };
        assert!(e.to_string().contains("server class id must match its catalog position"));
        assert!(ModelError::NonEmptyCluster
            .to_string()
            .contains("attach servers via CloudSystem::add_server"));
        let e = ModelError::BackgroundStorageOverflow { used: 5.0, capacity: 2.0 };
        assert!(e.to_string().contains("background storage 5 exceeds class capacity 2"));
        let e = ModelError::Inconsistent { what: "3 background entries for 4 servers".into() };
        assert!(e.to_string().starts_with("inconsistent system:"));
        for e in [
            ModelError::NonEmptyCluster.to_string(),
            ModelError::BackgroundStorageOverflow { used: 1.0, capacity: 0.5 }.to_string(),
        ] {
            assert!(!e.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
