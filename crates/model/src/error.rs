//! Error type shared by the model crate's fallible operations.

use std::error::Error;
use std::fmt;

/// Errors produced when building or validating model entities from
/// untrusted (e.g. deserialized) data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An id referenced an entity that does not exist.
    UnknownEntity {
        /// Which kind of entity ("server", "cluster", ...).
        kind: &'static str,
        /// The raw index that failed to resolve.
        index: usize,
    },
    /// A numeric field fell outside its documented domain.
    OutOfRange {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownEntity { kind, index } => {
                write!(f, "unknown {kind} index {index}")
            }
            Self::OutOfRange { field, value } => {
                write!(f, "field {field} out of range: {value}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ModelError::UnknownEntity { kind: "server", index: 3 };
        assert_eq!(e.to_string(), "unknown server index 3");
        let e = ModelError::OutOfRange { field: "alpha", value: 1.5 };
        assert_eq!(e.to_string(), "field alpha out of range: 1.5");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
