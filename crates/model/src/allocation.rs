//! Allocation state: the decision variables `x`, `α`, `φ` and the derived
//! server on/off indicators `y`.

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, ClusterId, ServerId};
use crate::system::CloudSystem;

/// The share of one server granted to one client: a dispersion fraction
/// `α_{ij}` plus GPS shares of the processing and communication capacity.
///
/// Storage is not part of the placement because the paper allocates disk by
/// the client's constant need `m_i` (constraint (8)); the evaluator charges
/// `m_i` against every server where `α_{ij} > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Portion `α_{ij} ∈ (0, 1]` of the client's requests routed here.
    pub alpha: f64,
    /// GPS share `φ^p_{ij} ∈ (0, 1]` of the server's processing capacity.
    pub phi_p: f64,
    /// GPS share `φ^c_{ij} ∈ (0, 1]` of the communication capacity.
    pub phi_c: f64,
}

impl Placement {
    /// Validates the placement fields, panicking on out-of-range values.
    fn validate(&self) {
        for (name, v) in [("alpha", self.alpha), ("phi_p", self.phi_p), ("phi_c", self.phi_c)] {
            assert!(v.is_finite() && (0.0..=1.0).contains(&v), "{name} must lie in [0,1], got {v}");
        }
    }
}

/// Aggregate load of one server under an allocation, background included.
///
/// Maintained incrementally by [`Allocation`] so solvers can query free
/// capacity in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerLoad {
    /// Total processing share granted (background + all placements).
    pub phi_p: f64,
    /// Total communication share granted (background + all placements).
    pub phi_c: f64,
    /// Total storage committed, in capacity units (background + `Σ m_i`).
    pub storage: f64,
    /// Processing *work* arrival rate `Σ_i α_{ij} λ_i t̄^p_i`; dividing by
    /// `C^p_j` gives the utilization `ρ_j` that drives the linear cost term.
    pub work_processing: f64,
    /// Number of clients with a positive placement on this server.
    pub placements: usize,
}

impl ServerLoad {
    /// Processing share still free (clamped at zero).
    pub fn free_phi_p(&self) -> f64 {
        (1.0 - self.phi_p).max(0.0)
    }

    /// Communication share still free (clamped at zero).
    pub fn free_phi_c(&self) -> f64 {
        (1.0 - self.phi_c).max(0.0)
    }

    /// True when the server hosts client traffic and therefore must be ON
    /// (the paper's `y_j` from constraint (3)); background-only servers are
    /// considered ON by their prior owner and are not charged here.
    pub fn is_on(&self) -> bool {
        self.placements > 0
    }
}

/// Per-cluster upper bounds on the best free capacity any single server in
/// the cluster still offers. Maintained *monotonically* between exact
/// refreshes: every load mutation can only raise a bound, so the invariant
/// `bound ≥ max_j free_j` holds through arbitrary mutate/rollback
/// sequences, and a candidate search may safely skip a cluster whose bound
/// already rules every server out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSlack {
    /// Upper bound on `max_j (cap_storage_j − storage_j)`.
    pub storage: f64,
    /// Upper bound on `max_j free φ^p_j`.
    pub phi_p: f64,
    /// Upper bound on `max_j free φ^c_j`.
    pub phi_c: f64,
}

impl ClusterSlack {
    const EMPTY: Self =
        Self { storage: f64::NEG_INFINITY, phi_p: f64::NEG_INFINITY, phi_c: f64::NEG_INFINITY };
}

/// The complete decision state for one epoch: client→cluster assignment,
/// per-(client, server) placements, and per-server aggregate loads.
///
/// Mutations keep the aggregates and both direction indices (client→servers
/// and server→clients) consistent, but do *not* enforce capacity
/// feasibility — solvers may pass through transiently infeasible states and
/// call [`crate::check_feasibility`] on the final answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Allocation {
    cluster_of: Vec<Option<ClusterId>>,
    /// Per client: `(server, placement)` pairs sorted by server id.
    placements: Vec<Vec<(ServerId, Placement)>>,
    /// Per server: clients with a positive placement, sorted by client id.
    residents: Vec<Vec<ClientId>>,
    loads: Vec<ServerLoad>,
    /// Derived search index (cluster of each server), cached here because
    /// `restore_load` has no system handle. Not semantic state: skipped by
    /// serde and equality; rebuilt via [`Allocation::build_slack_index`].
    #[serde(skip)]
    server_cluster: Vec<ClusterId>,
    /// Storage capacity of each server's class (same caching rationale).
    #[serde(skip)]
    server_cap_storage: Vec<f64>,
    /// Per-cluster slack bounds; empty when the index is absent (e.g. on a
    /// deserialized allocation), which disables slack-based pruning.
    #[serde(skip)]
    slack: Vec<ClusterSlack>,
}

/// Equality compares only the semantic decision state. The slack index is
/// excluded deliberately: bounds are *upper* bounds that legitimately
/// diverge between two semantically identical allocations (e.g. after a
/// savepoint rollback), and rollback exactness is asserted via `==`.
impl PartialEq for Allocation {
    fn eq(&self, other: &Self) -> bool {
        self.cluster_of == other.cluster_of
            && self.placements == other.placements
            && self.residents == other.residents
            && self.loads == other.loads
    }
}

impl Allocation {
    /// Creates an empty allocation (no client assigned anywhere) sized for
    /// `system`, with server loads seeded from the background load.
    pub fn new(system: &CloudSystem) -> Self {
        let loads = (0..system.num_servers())
            .map(|j| {
                let bg = system.background(ServerId(j));
                ServerLoad {
                    phi_p: bg.phi_p,
                    phi_c: bg.phi_c,
                    storage: bg.storage,
                    work_processing: 0.0,
                    placements: 0,
                }
            })
            .collect();
        let mut this = Self {
            cluster_of: vec![None; system.num_clients()],
            placements: vec![Vec::new(); system.num_clients()],
            residents: vec![Vec::new(); system.num_servers()],
            loads,
            server_cluster: Vec::new(),
            server_cap_storage: Vec::new(),
            slack: Vec::new(),
        };
        this.build_slack_index(system);
        this
    }

    /// Rebuilds this allocation's derived aggregates against a
    /// re-parameterized `system`: cluster assignments and placements carry
    /// over verbatim while per-server work totals (which depend on the
    /// clients' predicted rates) are recomputed from scratch. This is how
    /// an allocation survives a rate change, a fault mask, or any other
    /// [`CloudSystem`] re-parameterization that keeps entity ids stable.
    ///
    /// # Panics
    ///
    /// Panics if a carried placement references a client or server that
    /// `system` does not contain.
    pub fn replayed_onto(&self, system: &CloudSystem) -> Allocation {
        let mut fresh = Allocation::new(system);
        // `system` may hold *more* clients than this allocation (a grown
        // population); the extras start unassigned.
        for i in 0..self.cluster_of.len().min(system.num_clients()) {
            let client = ClientId(i);
            if let Some(cluster) = self.cluster_of(client) {
                fresh.assign_cluster(client, cluster);
                for &(server, placement) in self.placements(client) {
                    fresh.place(system, client, server, placement);
                }
            }
        }
        fresh
    }

    /// (Re)builds the per-cluster slack index from `system`. Needed only
    /// for allocations that did not come out of [`Allocation::new`] (e.g.
    /// deserialized ones, where serde leaves the index empty and slack
    /// pruning disabled).
    pub fn build_slack_index(&mut self, system: &CloudSystem) {
        self.server_cluster =
            (0..self.loads.len()).map(|j| system.server(ServerId(j)).cluster).collect();
        self.server_cap_storage =
            (0..self.loads.len()).map(|j| system.class_of(ServerId(j)).cap_storage).collect();
        self.slack = vec![ClusterSlack::EMPTY; system.num_clusters()];
        self.refresh_slack();
    }

    /// Tightens every cluster's slack bounds back to the exact per-cluster
    /// maxima. Called at commit points; between refreshes the bounds only
    /// grow (see [`ClusterSlack`]), preserving soundness without having to
    /// journal them through savepoint rollbacks. No-op when the index was
    /// never built.
    pub fn refresh_slack(&mut self) {
        if self.server_cluster.is_empty() {
            return;
        }
        self.slack.fill(ClusterSlack::EMPTY);
        for j in 0..self.loads.len() {
            self.bump_slack(j);
        }
    }

    /// The slack bounds of `cluster`, or `None` when the index is absent
    /// (callers must then fall back to scanning every server).
    pub fn cluster_slack(&self, cluster: ClusterId) -> Option<ClusterSlack> {
        self.slack.get(cluster.index()).copied()
    }

    /// Raises the slack bounds of server `j`'s cluster to cover its current
    /// free capacity. Must run after *every* load mutation — including ones
    /// that add load, because a placement replacement can shrink shares and
    /// thereby free capacity.
    fn bump_slack(&mut self, j: usize) {
        let Some(&cluster) = self.server_cluster.get(j) else {
            return;
        };
        let load = self.loads[j];
        let slack = &mut self.slack[cluster.index()];
        slack.storage = slack.storage.max(self.server_cap_storage[j] - load.storage);
        slack.phi_p = slack.phi_p.max(load.free_phi_p());
        slack.phi_c = slack.phi_c.max(load.free_phi_c());
    }

    /// Cluster the client is assigned to, if any (`x_{ik}`).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cluster_of(&self, client: ClientId) -> Option<ClusterId> {
        self.cluster_of[client.index()]
    }

    /// Assigns `client` to `cluster` without touching its placements.
    ///
    /// # Panics
    ///
    /// Panics if the client already holds placements (clear them first via
    /// [`Allocation::clear_client`]) and is being moved to a different
    /// cluster.
    pub fn assign_cluster(&mut self, client: ClientId, cluster: ClusterId) {
        let slot = &mut self.cluster_of[client.index()];
        if *slot != Some(cluster) {
            assert!(
                self.placements[client.index()].is_empty(),
                "cannot move {client} across clusters while it holds placements"
            );
        }
        *slot = Some(cluster);
    }

    /// Placements of `client`, sorted by server id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn placements(&self, client: ClientId) -> &[(ServerId, Placement)] {
        &self.placements[client.index()]
    }

    /// The placement of `client` on `server`, if any.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn placement(&self, client: ClientId, server: ServerId) -> Option<Placement> {
        self.placements[client.index()]
            .binary_search_by_key(&server, |&(s, _)| s)
            .ok()
            .map(|pos| self.placements[client.index()][pos].1)
    }

    /// Clients resident on `server` (positive placements), sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn residents(&self, server: ServerId) -> &[ClientId] {
        &self.residents[server.index()]
    }

    /// Aggregate load of `server` (background included).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn load(&self, server: ServerId) -> ServerLoad {
        self.loads[server.index()]
    }

    /// Sum of dispersion fractions `Σ_j α_{ij}` for `client`; a complete
    /// allocation has this equal to 1 for every assigned client.
    pub fn total_alpha(&self, client: ClientId) -> f64 {
        self.placements[client.index()].iter().map(|&(_, p)| p.alpha).sum()
    }

    /// True when the server must be powered (hosts client traffic).
    pub fn is_on(&self, server: ServerId) -> bool {
        self.loads[server.index()].is_on()
    }

    /// Ids of all servers currently ON.
    pub fn active_servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.loads.iter().enumerate().filter(|(_, l)| l.is_on()).map(|(j, _)| ServerId(j))
    }

    /// Number of servers currently ON.
    pub fn num_active_servers(&self) -> usize {
        self.loads.iter().filter(|l| l.is_on()).count()
    }

    /// Sets (or replaces) the placement of `client` on `server`, keeping
    /// aggregates consistent. A placement with `alpha == 0` removes the
    /// pair entirely.
    ///
    /// # Panics
    ///
    /// Panics if the client is not assigned to the server's cluster, or the
    /// placement fields fall outside `[0, 1]`.
    pub fn place(
        &mut self,
        system: &CloudSystem,
        client: ClientId,
        server: ServerId,
        placement: Placement,
    ) {
        placement.validate();
        let server_cluster = system.server(server).cluster;
        assert_eq!(
            self.cluster_of[client.index()],
            Some(server_cluster),
            "{client} must be assigned to {server}'s cluster before placement"
        );
        if placement.alpha == 0.0 {
            self.remove(system, client, server);
            return;
        }
        let c = system.client(client);
        let load = &mut self.loads[server.index()];
        let list = &mut self.placements[client.index()];
        match list.binary_search_by_key(&server, |&(s, _)| s) {
            Ok(pos) => {
                let old = list[pos].1;
                load.phi_p += placement.phi_p - old.phi_p;
                load.phi_c += placement.phi_c - old.phi_c;
                load.work_processing +=
                    (placement.alpha - old.alpha) * c.rate_predicted * c.exec_processing;
                list[pos].1 = placement;
            }
            Err(pos) => {
                load.phi_p += placement.phi_p;
                load.phi_c += placement.phi_c;
                load.storage += c.storage;
                load.work_processing += placement.alpha * c.rate_predicted * c.exec_processing;
                load.placements += 1;
                list.insert(pos, (server, placement));
                let residents = &mut self.residents[server.index()];
                let rpos = residents.binary_search(&client).unwrap_err();
                residents.insert(rpos, client);
            }
        }
        self.bump_slack(server.index());
    }

    /// Removes the placement of `client` on `server`, if present.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn remove(&mut self, system: &CloudSystem, client: ClientId, server: ServerId) {
        let list = &mut self.placements[client.index()];
        if let Ok(pos) = list.binary_search_by_key(&server, |&(s, _)| s) {
            let (_, old) = list.remove(pos);
            let c = system.client(client);
            let load = &mut self.loads[server.index()];
            load.phi_p -= old.phi_p;
            load.phi_c -= old.phi_c;
            load.storage -= c.storage;
            load.work_processing -= old.alpha * c.rate_predicted * c.exec_processing;
            load.placements -= 1;
            // Guard against negative drift from float cancellation.
            load.phi_p = load.phi_p.max(0.0);
            load.phi_c = load.phi_c.max(0.0);
            load.storage = load.storage.max(0.0);
            load.work_processing = load.work_processing.max(0.0);
            let residents = &mut self.residents[server.index()];
            if let Ok(rpos) = residents.binary_search(&client) {
                residents.remove(rpos);
            }
            self.bump_slack(server.index());
        }
    }

    /// Removes every placement of `client` and its cluster assignment,
    /// returning the placements it held (useful for tentative local-search
    /// moves that may be rolled back).
    pub fn clear_client(
        &mut self,
        system: &CloudSystem,
        client: ClientId,
    ) -> Vec<(ServerId, Placement)> {
        let held = self.placements[client.index()].clone();
        for &(server, _) in &held {
            self.remove(system, client, server);
        }
        self.cluster_of[client.index()] = None;
        held
    }

    /// Unconditionally writes the cluster slot of `client`, bypassing the
    /// placement guard of [`Allocation::assign_cluster`]. Used by the
    /// incremental evaluator's journal rollback, which replays inverse
    /// mutations in reverse order and therefore restores the cluster slot
    /// while placements from before the transaction are still being
    /// re-attached.
    pub(crate) fn set_cluster_raw(&mut self, client: ClientId, cluster: Option<ClusterId>) {
        self.cluster_of[client.index()] = cluster;
    }

    /// Overwrites the aggregate load of `server` with a snapshot taken
    /// earlier. Inverse `place`/`remove` replays restore the placement
    /// *lists* exactly but leave ± float drift in the aggregates (removal
    /// clamps negatives at zero); rolling the snapshot back on top makes
    /// the restore bit-exact.
    pub(crate) fn restore_load(&mut self, server: ServerId, load: ServerLoad) {
        self.loads[server.index()] = load;
        self.bump_slack(server.index());
    }

    /// True when every client is assigned to a cluster and disperses all of
    /// its traffic (`Σ_j α_{ij} = 1` within `tol`).
    pub fn is_complete(&self, tol: f64) -> bool {
        self.cluster_of
            .iter()
            .enumerate()
            .all(|(i, k)| k.is_some() && (self.total_alpha(ClientId(i)) - 1.0).abs() <= tol)
    }

    /// Recomputes every aggregate from scratch and asserts it matches the
    /// incrementally maintained state; a debugging aid used by tests and
    /// property checks.
    ///
    /// # Panics
    ///
    /// Panics if any aggregate drifted by more than `1e-9`.
    pub fn assert_consistent(&self, system: &CloudSystem) {
        for j in 0..system.num_servers() {
            let sid = ServerId(j);
            let bg = system.background(sid);
            let mut expect = ServerLoad {
                phi_p: bg.phi_p,
                phi_c: bg.phi_c,
                storage: bg.storage,
                work_processing: 0.0,
                placements: 0,
            };
            let mut residents = Vec::new();
            for (i, list) in self.placements.iter().enumerate() {
                if let Ok(pos) = list.binary_search_by_key(&sid, |&(s, _)| s) {
                    let p = list[pos].1;
                    let c = system.client(ClientId(i));
                    expect.phi_p += p.phi_p;
                    expect.phi_c += p.phi_c;
                    expect.storage += c.storage;
                    expect.work_processing += p.alpha * c.rate_predicted * c.exec_processing;
                    expect.placements += 1;
                    residents.push(ClientId(i));
                }
            }
            let got = self.loads[j];
            assert!(
                (got.phi_p - expect.phi_p).abs() < 1e-9
                    && (got.phi_c - expect.phi_c).abs() < 1e-9
                    && (got.storage - expect.storage).abs() < 1e-9
                    && (got.work_processing - expect.work_processing).abs() < 1e-9
                    && got.placements == expect.placements,
                "aggregate drift on {sid}: got {got:?}, expected {expect:?}"
            );
            assert_eq!(self.residents[j], residents, "resident index drift on {sid}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::{
        Client, Cluster, ServerClass, ServerClassId, UtilityClass, UtilityClassId, UtilityFunction,
    };

    fn system() -> CloudSystem {
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let k1 = sys.add_cluster(Cluster::new(ClusterId(1)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_server(Server::new(ServerClassId(0), k1));
        for i in 0..2 {
            sys.add_client(Client::new(ClientId(i), UtilityClassId(0), 2.0, 2.0, 0.5, 0.4, 1.0));
        }
        sys
    }

    fn placed() -> (CloudSystem, Allocation) {
        let sys = system();
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 0.6, phi_p: 0.5, phi_c: 0.4 },
        );
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(1),
            Placement { alpha: 0.4, phi_p: 0.3, phi_c: 0.3 },
        );
        (sys, alloc)
    }

    #[test]
    fn placement_updates_aggregates() {
        let (sys, alloc) = placed();
        let l0 = alloc.load(ServerId(0));
        assert_eq!(l0.placements, 1);
        assert!((l0.phi_p - 0.5).abs() < 1e-12);
        assert!((l0.storage - 1.0).abs() < 1e-12);
        // work = alpha * lambda * exec_p = 0.6*2*0.5
        assert!((l0.work_processing - 0.6).abs() < 1e-12);
        assert!((alloc.total_alpha(ClientId(0)) - 1.0).abs() < 1e-12);
        alloc.assert_consistent(&sys);
    }

    #[test]
    fn replacing_a_placement_adjusts_not_duplicates() {
        let (sys, mut alloc) = placed();
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 0.2, phi_p: 0.1, phi_c: 0.1 },
        );
        let l0 = alloc.load(ServerId(0));
        assert_eq!(l0.placements, 1);
        assert!((l0.phi_p - 0.1).abs() < 1e-12);
        assert!((l0.work_processing - 0.2).abs() < 1e-12);
        alloc.assert_consistent(&sys);
    }

    #[test]
    fn zero_alpha_placement_removes_pair() {
        let (sys, mut alloc) = placed();
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(1),
            Placement { alpha: 0.0, phi_p: 0.0, phi_c: 0.0 },
        );
        assert_eq!(alloc.placements(ClientId(0)).len(), 1);
        assert_eq!(alloc.residents(ServerId(1)), &[] as &[ClientId]);
        assert!(!alloc.is_on(ServerId(1)));
        alloc.assert_consistent(&sys);
    }

    #[test]
    fn clear_client_returns_held_placements_and_unassigns() {
        let (sys, mut alloc) = placed();
        let held = alloc.clear_client(&sys, ClientId(0));
        assert_eq!(held.len(), 2);
        assert_eq!(alloc.cluster_of(ClientId(0)), None);
        assert_eq!(alloc.num_active_servers(), 0);
        alloc.assert_consistent(&sys);
    }

    #[test]
    fn active_servers_reflect_residency() {
        let (_, alloc) = placed();
        let active: Vec<ServerId> = alloc.active_servers().collect();
        assert_eq!(active, vec![ServerId(0), ServerId(1)]);
        assert_eq!(alloc.num_active_servers(), 2);
    }

    #[test]
    fn is_complete_requires_assignment_and_full_alpha() {
        let (sys, mut alloc) = placed();
        assert!(!alloc.is_complete(1e-9)); // client 1 unassigned
        alloc.assign_cluster(ClientId(1), ClusterId(1));
        assert!(!alloc.is_complete(1e-9)); // client 1 has no traffic placed
        alloc.place(
            &sys,
            ClientId(1),
            ServerId(2),
            Placement { alpha: 1.0, phi_p: 0.9, phi_c: 0.9 },
        );
        assert!(alloc.is_complete(1e-9));
    }

    #[test]
    #[should_panic(expected = "must be assigned")]
    fn placing_in_wrong_cluster_panics() {
        let (sys, mut alloc) = placed();
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(2),
            Placement { alpha: 0.1, phi_p: 0.1, phi_c: 0.1 },
        );
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn moving_clusters_with_live_placements_panics() {
        let (_sys, mut alloc) = placed();
        alloc.assign_cluster(ClientId(0), ClusterId(1));
    }

    #[test]
    #[should_panic(expected = "alpha must lie in [0,1]")]
    fn rejects_out_of_range_alpha() {
        let (sys, mut alloc) = placed();
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.2, phi_p: 0.1, phi_c: 0.1 },
        );
    }

    #[test]
    fn random_mutation_sequences_keep_aggregates_consistent() {
        // A deterministic pseudo-random walk over place/remove/clear ops:
        // the incrementally maintained aggregates must always match a
        // from-scratch recomputation.
        let sys = system();
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.assign_cluster(ClientId(1), ClusterId(0));
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..300 {
            let client = ClientId((next() * 2.0) as usize % 2);
            let server = ServerId((next() * 2.0) as usize % 2);
            let op = (next() * 3.0) as usize;
            match op {
                0 => {
                    let alpha = 0.05 + 0.9 * next();
                    let phi = 0.05 + 0.9 * next();
                    alloc.place(&sys, client, server, Placement { alpha, phi_p: phi, phi_c: phi });
                }
                1 => alloc.remove(&sys, client, server),
                _ => {
                    alloc.clear_client(&sys, client);
                    alloc.assign_cluster(client, ClusterId(0));
                }
            }
            if step % 37 == 0 {
                alloc.assert_consistent(&sys);
            }
        }
        alloc.assert_consistent(&sys);
    }

    /// Exact per-cluster maxima recomputed from scratch, for comparison
    /// against the monotone bounds.
    fn exact_slack(sys: &CloudSystem, alloc: &Allocation, cluster: ClusterId) -> ClusterSlack {
        let mut exact = ClusterSlack::EMPTY;
        for j in 0..sys.num_servers() {
            if sys.server(ServerId(j)).cluster != cluster {
                continue;
            }
            let load = alloc.load(ServerId(j));
            exact.storage = exact.storage.max(sys.class_of(ServerId(j)).cap_storage - load.storage);
            exact.phi_p = exact.phi_p.max(load.free_phi_p());
            exact.phi_c = exact.phi_c.max(load.free_phi_c());
        }
        exact
    }

    #[test]
    fn slack_bounds_stay_sound_and_refresh_makes_them_exact() {
        // Same pseudo-random walk as above: after every mutation the bound
        // must dominate the true maximum, and refresh_slack must land on
        // it exactly.
        let sys = system();
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), ClusterId(0));
        alloc.assign_cluster(ClientId(1), ClusterId(0));
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        for step in 0..300 {
            let client = ClientId((next() * 2.0) as usize % 2);
            let server = ServerId((next() * 2.0) as usize % 2);
            match (next() * 3.0) as usize {
                0 => {
                    let alpha = 0.05 + 0.9 * next();
                    let phi = 0.05 + 0.9 * next();
                    alloc.place(&sys, client, server, Placement { alpha, phi_p: phi, phi_c: phi });
                }
                1 => alloc.remove(&sys, client, server),
                _ => {
                    alloc.clear_client(&sys, client);
                    alloc.assign_cluster(client, ClusterId(0));
                }
            }
            for k in 0..2 {
                let bound = alloc.cluster_slack(ClusterId(k)).unwrap();
                let exact = exact_slack(&sys, &alloc, ClusterId(k));
                assert!(
                    bound.storage >= exact.storage
                        && bound.phi_p >= exact.phi_p
                        && bound.phi_c >= exact.phi_c,
                    "step {step}: slack bound {bound:?} fell below exact {exact:?}"
                );
            }
            if step % 29 == 0 {
                alloc.refresh_slack();
                for k in 0..2 {
                    let bound = alloc.cluster_slack(ClusterId(k)).unwrap();
                    assert_eq!(bound, exact_slack(&sys, &alloc, ClusterId(k)));
                }
            }
        }
    }

    #[test]
    fn slack_index_absent_without_build() {
        // serde skips the index; a round-tripped allocation reports None
        // until build_slack_index is called.
        let (sys, mut alloc) = placed();
        let json = serde_json::to_string(&alloc).unwrap();
        let mut back: Allocation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alloc, "semantic equality ignores the index");
        assert_eq!(back.cluster_slack(ClusterId(0)), None);
        back.build_slack_index(&sys);
        // A rebuilt index is exact; compare against refreshed (exact)
        // bounds, since the original's are only monotone upper bounds.
        alloc.refresh_slack();
        assert_eq!(back.cluster_slack(ClusterId(0)), alloc.cluster_slack(ClusterId(0)));
    }

    #[test]
    fn background_load_seeds_server_load() {
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server_with_background(
            Server::new(ServerClassId(0), k0),
            crate::BackgroundLoad::new(0.3, 0.2, 1.5),
        );
        let alloc = Allocation::new(&sys);
        let load = alloc.load(ServerId(0));
        assert!((load.phi_p - 0.3).abs() < 1e-12);
        assert!((load.free_phi_p() - 0.7).abs() < 1e-12);
        assert!((load.storage - 1.5).abs() < 1e-12);
        assert!(!load.is_on(), "background-only servers are not charged to us");
    }
}
