//! A fluent builder for hand-constructed systems.
//!
//! [`CloudSystem`]'s raw `add_*` methods demand ids that match insertion
//! order — fine for generators, noisy for hand-built scenarios. The
//! builder assigns ids itself and reads as infrastructure-as-code:
//!
//! ```
//! use cloudalloc_model::{SystemBuilder, UtilityFunction};
//!
//! let mut b = SystemBuilder::new();
//! let fast = b.server_class(6.0, 6.0, 6.0, 1.5, 1.0);
//! let cheap = b.server_class(3.0, 4.0, 3.0, 0.8, 0.6);
//! let gold = b.utility_class(UtilityFunction::linear(3.0, 0.8));
//! let east = b.cluster();
//! b.servers(east, fast, 2);
//! b.servers(east, cheap, 3);
//! b.client(gold, 1.5, 0.5, 0.4, 1.0);
//! let system = b.build();
//! assert_eq!(system.num_servers(), 5);
//! assert_eq!(system.num_clients(), 1);
//! ```

use crate::{
    BackgroundLoad, Client, ClientId, CloudSystem, Cluster, ClusterId, ModelError, Server,
    ServerClass, ServerClassId, UtilityClass, UtilityClassId, UtilityFunction,
};

/// Incrementally assembles a [`CloudSystem`].
///
/// All `*_class`/`cluster` handles returned by the builder are ordinary
/// typed ids, usable immediately in subsequent calls.
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    server_classes: Vec<ServerClass>,
    utility_classes: Vec<UtilityClass>,
    clusters: usize,
    servers: Vec<(ServerClassId, ClusterId, BackgroundLoad)>,
    clients: Vec<(UtilityClassId, f64, f64, f64, f64, f64)>,
}

impl SystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a hardware class; see [`ServerClass::new`] for the
    /// parameter domains.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain values (delegated to [`ServerClass::new`]).
    pub fn server_class(
        &mut self,
        cap_processing: f64,
        cap_storage: f64,
        cap_communication: f64,
        cost_fixed: f64,
        cost_per_utilization: f64,
    ) -> ServerClassId {
        let id = ServerClassId(self.server_classes.len());
        self.server_classes.push(ServerClass::new(
            id,
            cap_processing,
            cap_storage,
            cap_communication,
            cost_fixed,
            cost_per_utilization,
        ));
        id
    }

    /// Registers an SLA class.
    pub fn utility_class(&mut self, function: UtilityFunction) -> UtilityClassId {
        let id = UtilityClassId(self.utility_classes.len());
        self.utility_classes.push(UtilityClass::new(id, function));
        id
    }

    /// Adds a cluster.
    pub fn cluster(&mut self) -> ClusterId {
        let id = ClusterId(self.clusters);
        self.clusters += 1;
        id
    }

    /// Adds `count` idle servers of `class` to `cluster`.
    pub fn servers(&mut self, cluster: ClusterId, class: ServerClassId, count: usize) -> &mut Self {
        for _ in 0..count {
            self.servers.push((class, cluster, BackgroundLoad::default()));
        }
        self
    }

    /// Adds one server carrying pre-existing background load.
    pub fn server_with_background(
        &mut self,
        cluster: ClusterId,
        class: ServerClassId,
        background: BackgroundLoad,
    ) -> &mut Self {
        self.servers.push((class, cluster, background));
        self
    }

    /// Adds a client with equal predicted and agreed rates; see
    /// [`Client::new`] for parameter domains.
    pub fn client(
        &mut self,
        utility: UtilityClassId,
        rate: f64,
        exec_processing: f64,
        exec_communication: f64,
        storage: f64,
    ) -> ClientId {
        self.client_with_rates(utility, rate, rate, exec_processing, exec_communication, storage)
    }

    /// Adds a client with distinct predicted and agreed (contract) rates.
    pub fn client_with_rates(
        &mut self,
        utility: UtilityClassId,
        rate_predicted: f64,
        rate_agreed: f64,
        exec_processing: f64,
        exec_communication: f64,
        storage: f64,
    ) -> ClientId {
        let id = ClientId(self.clients.len());
        self.clients.push((
            utility,
            rate_predicted,
            rate_agreed,
            exec_processing,
            exec_communication,
            storage,
        ));
        id
    }

    /// Materializes the [`CloudSystem`], reporting dangling references or
    /// out-of-domain client parameters as typed errors.
    pub fn try_build(self) -> Result<CloudSystem, ModelError> {
        let mut system = CloudSystem::try_new(self.server_classes, self.utility_classes)?;
        for k in 0..self.clusters {
            system.try_add_cluster(Cluster::new(ClusterId(k)))?;
        }
        for (class, cluster, background) in self.servers {
            system.try_add_server_with_background(Server::new(class, cluster), background)?;
        }
        for (idx, (utility, pred, agreed, exec_p, exec_c, storage)) in
            self.clients.into_iter().enumerate()
        {
            // Construct literally (not via `Client::new`) so out-of-domain
            // parameters surface as errors instead of panics.
            let client = Client {
                id: ClientId(idx),
                utility_class: utility,
                rate_predicted: pred,
                rate_agreed: agreed,
                exec_processing: exec_p,
                exec_communication: exec_c,
                storage,
            };
            client.validate()?;
            system.try_add_client(client)?;
        }
        Ok(system)
    }

    /// Materializes the [`CloudSystem`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced class or cluster does not exist, or any
    /// client parameter is out of domain (delegated validation).
    pub fn build(self) -> CloudSystem {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> SystemBuilder {
        let mut b = SystemBuilder::new();
        let class = b.server_class(4.0, 4.0, 4.0, 1.0, 0.5);
        let sla = b.utility_class(UtilityFunction::linear(2.0, 0.5));
        let k = b.cluster();
        b.servers(k, class, 2);
        b.client(sla, 1.0, 0.5, 0.5, 0.5);
        b
    }

    #[test]
    fn builds_a_consistent_system() {
        let system = minimal().build();
        assert_eq!(system.num_clusters(), 1);
        assert_eq!(system.num_servers(), 2);
        assert_eq!(system.num_clients(), 1);
        assert_eq!(system.cluster(ClusterId(0)).len(), 2);
        assert_eq!(system.client(ClientId(0)).rate_agreed, 1.0);
    }

    #[test]
    fn handles_are_stable_across_interleaved_calls() {
        let mut b = SystemBuilder::new();
        let c0 = b.server_class(2.0, 2.0, 2.0, 1.0, 1.0);
        let k0 = b.cluster();
        let c1 = b.server_class(6.0, 6.0, 6.0, 2.0, 2.0);
        let k1 = b.cluster();
        b.servers(k0, c1, 1).servers(k1, c0, 1);
        let sla = b.utility_class(UtilityFunction::linear(1.0, 0.1));
        b.client_with_rates(sla, 1.0, 2.0, 0.5, 0.5, 0.0);
        let system = b.build();
        assert_eq!(system.class_of(crate::ServerId(0)).cap_processing, 6.0);
        assert_eq!(system.class_of(crate::ServerId(1)).cap_processing, 2.0);
        assert_eq!(system.client(ClientId(0)).rate_agreed, 2.0);
    }

    #[test]
    fn background_load_is_carried_through() {
        let mut b = minimal();
        let class = ServerClassId(0);
        let k = ClusterId(0);
        b.server_with_background(k, class, BackgroundLoad::new(0.3, 0.2, 1.0));
        let system = b.build();
        assert_eq!(system.num_servers(), 3);
        let bg = system.background(crate::ServerId(2));
        assert_eq!(bg.phi_p, 0.3);
        assert_eq!(bg.storage, 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn unknown_cluster_panics_at_build() {
        let mut b = minimal();
        b.servers(ClusterId(9), ServerClassId(0), 1);
        let _ = b.build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let mut b = minimal();
        b.servers(ClusterId(9), ServerClassId(0), 1);
        assert!(matches!(b.try_build(), Err(ModelError::UnknownEntity { kind: "cluster", .. })));

        let mut b = minimal();
        b.client(UtilityClassId(9), 1.0, 0.5, 0.5, 0.5);
        assert!(matches!(
            b.try_build(),
            Err(ModelError::UnknownEntity { kind: "utility class", .. })
        ));

        let mut b = minimal();
        b.client(UtilityClassId(0), -1.0, 0.5, 0.5, 0.5);
        assert!(matches!(
            b.try_build(),
            Err(ModelError::OutOfRange { field: "rate_predicted", .. })
        ));
    }
}
