//! Analytic-vs-measured validation: the end-to-end check that the
//! closed-form response times driving the optimizer describe the actual
//! stochastic system (experiment E3).

use cloudalloc_model::{evaluate, Allocation, CloudSystem};

use crate::config::SimConfig;
use crate::simulate;

/// One client's analytic-vs-measured comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Client index.
    pub client: usize,
    /// Closed-form mean response (paper Eq. (1)).
    pub analytic: f64,
    /// Simulated mean response.
    pub measured: f64,
    /// 95% confidence half-width of the measurement.
    pub ci95: f64,
    /// Completed requests behind the measurement.
    pub samples: u64,
}

impl ValidationRow {
    /// Relative error `|measured − analytic| / analytic`; `NaN` when the
    /// analytic value is not finite and positive.
    pub fn relative_error(&self) -> f64 {
        (self.measured - self.analytic).abs() / self.analytic
    }
}

/// Simulates `alloc` and compares each served client's measured mean
/// response against the analytic prediction. Unserved clients (infinite
/// analytic response) are skipped.
pub fn validate(
    system: &CloudSystem,
    alloc: &Allocation,
    config: &SimConfig,
) -> Vec<ValidationRow> {
    let analytic = evaluate(system, alloc);
    let report = simulate(system, alloc, config);
    analytic
        .clients
        .iter()
        .enumerate()
        .filter(|(_, outcome)| outcome.response_time.is_finite())
        .map(|(i, outcome)| {
            let stats = &report.clients[i];
            ValidationRow {
                client: i,
                analytic: outcome.response_time,
                measured: stats.mean_response(),
                ci95: stats.responses.stats().ci95(),
                samples: stats.completed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_core::{solve, SolverConfig};
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn solver_allocations_validate_against_the_simulator() {
        let system = generate(&ScenarioConfig::small(6), 101);
        let result = solve(&system, &SolverConfig::fast(), 1);
        let config = SimConfig { horizon: 8_000.0, warmup: 500.0, seed: 2, ..Default::default() };
        let rows = validate(&system, &result.allocation, &config);
        assert!(!rows.is_empty());
        // Aggregate error must be small; individual clients with few
        // samples may wobble more.
        let mean_err: f64 =
            rows.iter().map(ValidationRow::relative_error).sum::<f64>() / rows.len() as f64;
        assert!(mean_err < 0.15, "mean relative error {mean_err}; rows: {rows:?}");
        for row in &rows {
            assert!(row.samples > 100, "client {} undersampled", row.client);
        }
    }

    #[test]
    fn unserved_clients_are_skipped() {
        let system = generate(&ScenarioConfig::small(3), 103);
        let alloc = Allocation::new(&system); // nobody served
        let rows = validate(&system, &alloc, &SimConfig::quick(1));
        assert!(rows.is_empty());
    }
}
