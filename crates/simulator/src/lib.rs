//! Discrete-event simulation of the cloud system.
//!
//! The paper's authors note they "ended up implementing all components of
//! the system, from clients to servers and clusters" to evaluate their
//! allocator. This crate is that testbed: given a [`CloudSystem`] and an
//! [`Allocation`], it generates the actual stochastic processes of the
//! model — Poisson request streams per client, probabilistic dispatch by
//! the `α` vectors, exponential service through the pipelined
//! processing → communication stages — and measures per-client response
//! times, which can then be checked against the closed-form M/M/1
//! predictions ([`validate`]).
//!
//! Two service disciplines are provided:
//!
//! * [`GpsMode::Isolated`] — every (client, server, resource) triple is an
//!   independent exponential server of rate `φ·C/t̄`, exactly the
//!   assumption behind the paper's Eq. (1);
//! * [`GpsMode::Shared`] — a fluid Generalized-Processor-Sharing server:
//!   backlogged clients share the capacity in proportion to their `φ`,
//!   idle shares are redistributed (work-conserving). Responses are
//!   stochastically **no worse** than the isolated model, confirming that
//!   the analytic formulas are a conservative design basis.
//!
//! [`CloudSystem`]: cloudalloc_model::CloudSystem
//! [`Allocation`]: cloudalloc_model::Allocation

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event;
mod failures;
mod isolated;
mod report;
mod routing;
mod service;
mod shared;
mod validate;

pub use config::{GpsMode, SimConfig};
pub use event::EventQueue;
pub use failures::FailureConfig;
pub use report::{ClientSimStats, SimReport};
pub use routing::{least_work_choice, RoutingPolicy};
pub use service::ServiceDistribution;
pub use validate::{validate, ValidationRow};

use cloudalloc_model::{Allocation, CloudSystem};

/// Runs the simulation in the configured mode.
///
/// # Panics
///
/// Panics if the allocation references placements with zero shares but
/// positive traffic (the model's feasibility checker rejects those), or
/// if `config` fails [`SimConfig::validate`].
pub fn simulate(system: &CloudSystem, alloc: &Allocation, config: &SimConfig) -> SimReport {
    config.validate();
    match config.mode {
        GpsMode::Isolated => isolated::run(system, alloc, config),
        GpsMode::Shared => shared::run(system, alloc, config),
    }
}
