//! The fluid-GPS engine: each server resource is a single work-conserving
//! processor whose backlogged clients share the capacity in proportion to
//! their GPS shares `φ` (idle shares are redistributed).
//!
//! Under this discipline every client receives *at least* its guaranteed
//! rate `φ·C`, so measured response times are stochastically no worse
//! than the isolated M/M/1 model — the sense in which the analytic
//! formulas are conservative.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudalloc_metrics::Sample;
use cloudalloc_model::{Allocation, ClientId, CloudSystem};
use cloudalloc_queueing::sampling;

use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::report::{ClientSimStats, SimReport};

/// A request in service or queued: its original arrival time and the work
/// (in capacity-units) still owed on the current stage.
#[derive(Debug, Clone, Copy)]
struct Job {
    arrival: f64,
    remaining: f64,
}

/// One client's FIFO lane on a processor.
#[derive(Debug, Clone)]
struct GpsQueue {
    phi: f64,
    jobs: VecDeque<Job>,
}

/// Where a completed job goes next.
#[derive(Debug, Clone, Copy)]
enum Next {
    /// Feed the communication processor `(pid, qid)`; new work drawn with
    /// mean `exec_mean`.
    Stage { pid: usize, qid: usize, exec_mean: f64 },
    /// Leave the system and record the response for `client`.
    Depart { client: usize },
}

/// A GPS processor: one resource of one server.
#[derive(Debug, Clone)]
struct Processor {
    capacity: f64,
    queues: Vec<GpsQueue>,
    nexts: Vec<Next>,
    last_update: f64,
    version: u64,
}

impl Processor {
    /// Sum of shares of backlogged queues.
    fn backlogged_phi(&self) -> f64 {
        self.queues.iter().filter(|q| !q.jobs.is_empty()).map(|q| q.phi).sum()
    }

    /// Drains `t − last_update` of fluid service into the head jobs.
    fn advance(&mut self, t: f64) {
        let dt = t - self.last_update;
        self.last_update = t;
        if dt <= 0.0 {
            return;
        }
        let total_phi = self.backlogged_phi();
        if total_phi <= 0.0 {
            return;
        }
        for q in &mut self.queues {
            if let Some(head) = q.jobs.front_mut() {
                head.remaining -= dt * self.capacity * q.phi / total_phi;
            }
        }
    }

    /// Time until the earliest head-of-line completion, with the queue
    /// index; `None` when idle.
    fn next_completion(&self) -> Option<(f64, usize)> {
        let total_phi = self.backlogged_phi();
        if total_phi <= 0.0 {
            return None;
        }
        let mut best: Option<(f64, usize)> = None;
        for (qid, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.jobs.front() {
                let rate = self.capacity * q.phi / total_phi;
                if rate <= 0.0 {
                    continue;
                }
                let dt = (head.remaining / rate).max(0.0);
                if best.is_none_or(|(b, _)| dt < b) {
                    best = Some((dt, qid));
                }
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive(usize),
    /// A processor's predicted earliest completion; stale when the
    /// version no longer matches.
    Complete {
        pid: usize,
        version: u64,
    },
}

fn u01(rng: &mut StdRng) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Re-arms the completion event of processor `pid`.
fn reschedule(processors: &mut [Processor], events: &mut EventQueue<Ev>, pid: usize, now: f64) {
    let p = &mut processors[pid];
    p.version += 1;
    if let Some((dt, _)) = p.next_completion() {
        events.push(now + dt, Ev::Complete { pid, version: p.version });
    }
}

/// Runs the fluid-GPS simulation.
pub fn run(system: &CloudSystem, alloc: &Allocation, config: &SimConfig) -> SimReport {
    assert!(config.failures.is_none(), "failure injection requires the isolated engine");
    assert!(
        config.routing == crate::routing::RoutingPolicy::Static,
        "least-work routing requires the isolated engine"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = system.num_clients();
    let service = config.service;
    let draw_work = move |rng: &mut StdRng, mean: f64| -> f64 {
        service.sample(1.0 - rng.gen::<f64>(), 1.0 - rng.gen::<f64>(), mean)
    };

    // Lazily create the two processors of every server that hosts
    // traffic, registering one queue per placement and stage.
    let mut processors: Vec<Processor> = Vec::new();
    let mut server_procs: Vec<Option<(usize, usize)>> = vec![None; system.num_servers()];
    // Per client: (routing probs, per-branch (proc pid, proc qid, exec_p)).
    struct Branch {
        proc_pid: usize,
        proc_qid: usize,
        exec_p: f64,
    }
    let mut routing: Vec<(Vec<f64>, Vec<Branch>)> = Vec::with_capacity(n);

    for i in 0..n {
        let client = system.client(ClientId(i));
        let mut probs = Vec::new();
        let mut branches = Vec::new();
        for &(server, placement) in alloc.placements(ClientId(i)) {
            let class = system.class_of(server);
            let (proc_pid, comm_pid) = *server_procs[server.index()].get_or_insert_with(|| {
                let proc_pid = processors.len();
                processors.push(Processor {
                    capacity: class.cap_processing,
                    queues: Vec::new(),
                    nexts: Vec::new(),
                    last_update: 0.0,
                    version: 0,
                });
                processors.push(Processor {
                    capacity: class.cap_communication,
                    queues: Vec::new(),
                    nexts: Vec::new(),
                    last_update: 0.0,
                    version: 0,
                });
                (proc_pid, proc_pid + 1)
            });
            let comm_qid = processors[comm_pid].queues.len();
            processors[comm_pid]
                .queues
                .push(GpsQueue { phi: placement.phi_c, jobs: VecDeque::new() });
            processors[comm_pid].nexts.push(Next::Depart { client: i });
            let proc_qid = processors[proc_pid].queues.len();
            processors[proc_pid]
                .queues
                .push(GpsQueue { phi: placement.phi_p, jobs: VecDeque::new() });
            processors[proc_pid].nexts.push(Next::Stage {
                pid: comm_pid,
                qid: comm_qid,
                exec_mean: client.exec_communication,
            });
            probs.push(placement.alpha);
            branches.push(Branch { proc_pid, proc_qid, exec_p: client.exec_processing });
        }
        routing.push((probs, branches));
    }

    let mut stats: Vec<ClientSimStats> = (0..n)
        .map(|_| ClientSimStats { arrivals: 0, completed: 0, dropped: 0, responses: Sample::new() })
        .collect();

    let mut events: EventQueue<Ev> = EventQueue::new();
    for i in 0..n {
        let rate = system.client(ClientId(i)).rate_predicted;
        events.push(sampling::poisson_interarrival(u01(&mut rng), rate), Ev::Arrive(i));
    }

    let mut processed: u64 = 0;
    while let Some((t, ev)) = events.pop() {
        if t > config.horizon {
            break;
        }
        processed += 1;
        match ev {
            Ev::Arrive(i) => {
                let rate = system.client(ClientId(i)).rate_predicted;
                events.push(t + sampling::poisson_interarrival(u01(&mut rng), rate), Ev::Arrive(i));
                if t >= config.warmup {
                    stats[i].arrivals += 1;
                }
                let (probs, branches) = &routing[i];
                match sampling::route(rng.gen::<f64>(), probs) {
                    Some(b) => {
                        let branch = &branches[b];
                        let work = draw_work(&mut rng, branch.exec_p);
                        let p = &mut processors[branch.proc_pid];
                        p.advance(t);
                        p.queues[branch.proc_qid]
                            .jobs
                            .push_back(Job { arrival: t, remaining: work });
                        reschedule(&mut processors, &mut events, branch.proc_pid, t);
                    }
                    None => {
                        if t >= config.warmup {
                            stats[i].dropped += 1;
                        }
                    }
                }
            }
            Ev::Complete { pid, version } => {
                if processors[pid].version != version {
                    continue; // stale prediction
                }
                processors[pid].advance(t);
                let Some((_, qid)) = processors[pid].next_completion() else {
                    continue;
                };
                let job = processors[pid].queues[qid]
                    .jobs
                    .pop_front()
                    .expect("completion on an empty queue");
                let next = processors[pid].nexts[qid];
                reschedule(&mut processors, &mut events, pid, t);
                match next {
                    Next::Stage { pid: comm_pid, qid: comm_qid, exec_mean } => {
                        let work = draw_work(&mut rng, exec_mean);
                        let p = &mut processors[comm_pid];
                        p.advance(t);
                        p.queues[comm_qid]
                            .jobs
                            .push_back(Job { arrival: job.arrival, remaining: work });
                        reschedule(&mut processors, &mut events, comm_pid, t);
                    }
                    Next::Depart { client } => {
                        if job.arrival >= config.warmup {
                            stats[client].completed += 1;
                            stats[client].responses.push(t - job.arrival);
                        }
                    }
                }
            }
        }
    }

    SimReport { clients: stats, events: processed, measured_time: config.horizon - config.warmup }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpsMode;
    use cloudalloc_model::{Placement, ServerId};

    fn two_client_system() -> (CloudSystem, Allocation) {
        use cloudalloc_model::{
            Client, Cluster, ClusterId, Server, ServerClass, ServerClassId, UtilityClass,
            UtilityClassId, UtilityFunction,
        };
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        for i in 0..2 {
            sys.add_client(Client::new(ClientId(i), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 0.5));
        }
        let mut alloc = Allocation::new(&sys);
        for i in 0..2 {
            alloc.assign_cluster(ClientId(i), k0);
            alloc.place(
                &sys,
                ClientId(i),
                ServerId(0),
                Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 },
            );
        }
        (sys, alloc)
    }

    #[test]
    fn shared_gps_beats_isolated_queues_on_average() {
        let (sys, alloc) = two_client_system();
        let base = SimConfig { horizon: 20_000.0, warmup: 1_000.0, seed: 11, ..Default::default() };
        let shared = run(&sys, &alloc, &SimConfig { mode: GpsMode::Shared, ..base });
        let isolated = crate::isolated::run(&sys, &alloc, &base);
        for i in 0..2 {
            let s = shared.clients[i].mean_response();
            let iso = isolated.clients[i].mean_response();
            // Work conservation redistributes idle shares: responses can
            // only improve (allow 2% Monte-Carlo slack).
            assert!(s <= iso * 1.02, "client {i}: shared {s} > isolated {iso}");
        }
    }

    #[test]
    fn single_backlogged_client_gets_full_capacity() {
        // One client holding a 0.5 share of an otherwise idle server is
        // served at the FULL capacity under GPS (work conservation):
        // service rate 4/0.5 = 8 per stage, arrival 1 → mean 2/(8−1).
        use cloudalloc_model::{
            Client, Cluster, ClusterId, Server, ServerClass, ServerClassId, UtilityClass,
            UtilityClassId, UtilityFunction,
        };
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 0.5));
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), k0);
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: 0.5, phi_c: 0.5 },
        );
        let config = SimConfig {
            horizon: 40_000.0,
            warmup: 2_000.0,
            seed: 13,
            mode: GpsMode::Shared,
            ..Default::default()
        };
        let report = run(&sys, &alloc, &config);
        let measured = report.clients[0].mean_response();
        let expected = 2.0 / 7.0;
        assert!(
            (measured - expected).abs() / expected < 0.06,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (sys, alloc) = two_client_system();
        let config = SimConfig { mode: GpsMode::Shared, ..SimConfig::quick(9) };
        let a = run(&sys, &alloc, &config);
        let b = run(&sys, &alloc, &config);
        assert_eq!(a.events, b.events);
        assert_eq!(a.clients[0].responses.values(), b.clients[0].responses.values());
    }

    #[test]
    fn conservation_no_requests_lost() {
        let (sys, alloc) = two_client_system();
        let config = SimConfig {
            horizon: 5_000.0,
            warmup: 0.0,
            seed: 17,
            mode: GpsMode::Shared,
            ..Default::default()
        };
        let report = run(&sys, &alloc, &config);
        for c in &report.clients {
            // Everything that arrived either completed or is still in
            // flight at the horizon; nothing is dropped (Σα = 1) and
            // in-flight work is bounded by a stable queue's backlog.
            assert_eq!(c.dropped, 0);
            assert!(c.completed <= c.arrivals);
            assert!(c.arrivals - c.completed < 100, "suspicious backlog");
        }
    }
}
