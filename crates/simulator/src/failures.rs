//! Server failure injection.
//!
//! Servers alternate between up and down states with exponential times to
//! failure and repair. While a server is down its queues stop serving
//! (in-flight requests restart on repair — the memoryless service makes
//! the restart exact for exponential service, an approximation
//! otherwise); requests keep queueing, so outages surface as response
//! time spikes and, through the utility functions, as lost revenue.

use cloudalloc_model::ServerId;
use cloudalloc_workload::{FaultEvent, FaultPlan, FaultRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Exponential up/down failure process parameters, shared by all servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Mean time between failures (time from repair to next failure,
    /// `> 0`).
    pub mtbf: f64,
    /// Mean time to repair (`> 0`).
    pub mttr: f64,
}

impl FailureConfig {
    /// Creates a failure process.
    ///
    /// # Panics
    ///
    /// Panics if either time is not strictly positive and finite.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        let config = Self { mtbf, mttr };
        config.validate();
        config
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if either time is not strictly positive and finite.
    pub fn validate(&self) {
        assert!(
            self.mtbf.is_finite() && self.mtbf > 0.0,
            "mtbf must be positive, got {}",
            self.mtbf
        );
        assert!(
            self.mttr.is_finite() && self.mttr > 0.0,
            "mttr must be positive, got {}",
            self.mttr
        );
    }

    /// Long-run fraction of time a server is available:
    /// `mtbf / (mtbf + mttr)`.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }

    /// Samples the continuous exponential up/down process at epoch
    /// granularity: every server alternates UP phases (mean `mtbf`) and
    /// DOWN phases (mean `mttr`) in continuous time, and each transition
    /// is recorded at the epoch containing it — the bridge from the
    /// simulator's failure process to the epoch control loop's
    /// [`FaultPlan`]. A transition pair landing inside one epoch still
    /// emits both records (the stable sort keeps their order), so the
    /// replayed down-set matches the state at each epoch boundary.
    ///
    /// Deterministic per seed; each server draws from its own derived
    /// stream, so the plan for server `j` does not change when
    /// `num_servers` grows past it.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_length` is not positive and finite.
    pub fn sample_epoch_plan(
        &self,
        num_servers: usize,
        epochs: usize,
        epoch_length: f64,
        seed: u64,
    ) -> FaultPlan {
        self.validate();
        assert!(
            epoch_length.is_finite() && epoch_length > 0.0,
            "epoch_length must be positive, got {epoch_length}"
        );
        let horizon = epochs as f64 * epoch_length;
        let mut events = Vec::new();
        for j in 0..num_servers {
            // SplitMix64-style stream split: one independent RNG per
            // server.
            let stream = seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(stream);
            let mut exponential = |mean: f64| -> f64 {
                // Inverse-CDF with the uniform clamped away from 0.
                -mean * (1.0 - rng.gen::<f64>()).max(1e-300).ln()
            };
            let mut t = exponential(self.mtbf);
            let mut up = true;
            while t < horizon {
                let epoch = (t / epoch_length) as usize;
                let server = ServerId(j);
                let event = if up {
                    FaultEvent::ServerFail { server }
                } else {
                    FaultEvent::ServerRecover { server }
                };
                events.push(FaultRecord { epoch, event });
                t += exponential(if up { self.mttr } else { self.mtbf });
                up = !up;
            }
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_the_uptime_fraction() {
        let f = FailureConfig::new(90.0, 10.0);
        assert!((f.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mtbf must be positive")]
    fn rejects_zero_mtbf() {
        let _ = FailureConfig::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "mttr must be positive")]
    fn rejects_negative_mttr() {
        let _ = FailureConfig::new(1.0, -1.0);
    }

    #[test]
    fn sampled_plans_are_deterministic_and_well_formed() {
        let f = FailureConfig::new(20.0, 5.0);
        let a = f.sample_epoch_plan(8, 50, 1.0, 11);
        let b = f.sample_epoch_plan(8, 50, 1.0, 11);
        assert_eq!(a, b);
        assert_ne!(a, f.sample_epoch_plan(8, 50, 1.0, 12));
        a.validate(8, 0).unwrap();
        assert!(a.horizon() <= 50);
        // Per-server records alternate fail → recover → fail …
        for j in 0..8 {
            let mut expect_fail = true;
            for rec in a.events() {
                match rec.event {
                    FaultEvent::ServerFail { server } if server.index() == j => {
                        assert!(expect_fail, "double fail for server {j}");
                        expect_fail = false;
                    }
                    FaultEvent::ServerRecover { server } if server.index() == j => {
                        assert!(!expect_fail, "recover before fail for server {j}");
                        expect_fail = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn server_streams_are_stable_under_fleet_growth() {
        let f = FailureConfig::new(10.0, 3.0);
        let small = f.sample_epoch_plan(4, 40, 2.0, 7);
        let large = f.sample_epoch_plan(9, 40, 2.0, 7);
        let only_first_four = |plan: &FaultPlan| {
            plan.events()
                .iter()
                .filter(|r| match r.event {
                    FaultEvent::ServerFail { server } | FaultEvent::ServerRecover { server } => {
                        server.index() < 4
                    }
                    FaultEvent::RateSpike { .. } => false,
                })
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(only_first_four(&small), only_first_four(&large));
    }

    #[test]
    fn frequent_failures_produce_events_rare_failures_almost_none() {
        let flaky = FailureConfig::new(2.0, 1.0).sample_epoch_plan(10, 100, 1.0, 3);
        assert!(flaky.len() > 50, "mtbf of 2 epochs must fail often, got {}", flaky.len());
        let solid = FailureConfig::new(1e9, 1.0).sample_epoch_plan(10, 100, 1.0, 3);
        assert!(solid.len() <= 2, "mtbf of 1e9 epochs should almost never fail");
    }
}
