//! Server failure injection.
//!
//! Servers alternate between up and down states with exponential times to
//! failure and repair. While a server is down its queues stop serving
//! (in-flight requests restart on repair — the memoryless service makes
//! the restart exact for exponential service, an approximation
//! otherwise); requests keep queueing, so outages surface as response
//! time spikes and, through the utility functions, as lost revenue.

use serde::{Deserialize, Serialize};

/// Exponential up/down failure process parameters, shared by all servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Mean time between failures (time from repair to next failure,
    /// `> 0`).
    pub mtbf: f64,
    /// Mean time to repair (`> 0`).
    pub mttr: f64,
}

impl FailureConfig {
    /// Creates a failure process.
    ///
    /// # Panics
    ///
    /// Panics if either time is not strictly positive and finite.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        let config = Self { mtbf, mttr };
        config.validate();
        config
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if either time is not strictly positive and finite.
    pub fn validate(&self) {
        assert!(
            self.mtbf.is_finite() && self.mtbf > 0.0,
            "mtbf must be positive, got {}",
            self.mtbf
        );
        assert!(
            self.mttr.is_finite() && self.mttr > 0.0,
            "mttr must be positive, got {}",
            self.mttr
        );
    }

    /// Long-run fraction of time a server is available:
    /// `mtbf / (mtbf + mttr)`.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_the_uptime_fraction() {
        let f = FailureConfig::new(90.0, 10.0);
        assert!((f.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mtbf must be positive")]
    fn rejects_zero_mtbf() {
        let _ = FailureConfig::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "mttr must be positive")]
    fn rejects_negative_mttr() {
        let _ = FailureConfig::new(1.0, -1.0);
    }
}
