//! Simulation output types.

use cloudalloc_metrics::Sample;

/// Measured statistics of one client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSimStats {
    /// Requests generated inside the measurement window.
    pub arrivals: u64,
    /// Requests completed inside the measurement window.
    pub completed: u64,
    /// Requests routed nowhere because the dispersion summed below one
    /// (should stay zero for feasible allocations, modulo float dust).
    pub dropped: u64,
    /// End-to-end response times of completed requests.
    pub responses: Sample,
}

impl ClientSimStats {
    /// Mean measured response time; `f64::INFINITY` when no request
    /// completed (an unserved client).
    pub fn mean_response(&self) -> f64 {
        if self.responses.is_empty() {
            f64::INFINITY
        } else {
            self.responses.mean()
        }
    }
}

/// Output of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-client statistics, indexed by client id.
    pub clients: Vec<ClientSimStats>,
    /// Total events processed (a determinism/effort indicator).
    pub events: u64,
    /// Measurement window `[warmup, horizon]` length.
    pub measured_time: f64,
}

impl SimReport {
    /// Total completed requests across all clients.
    pub fn total_completed(&self) -> u64 {
        self.clients.iter().map(|c| c.completed).sum()
    }

    /// Measured revenue under the system's utility functions: each
    /// client's agreed rate times the utility of its *measured* mean
    /// response. The analog of the analytic revenue term.
    pub fn measured_revenue(&self, system: &cloudalloc_model::CloudSystem) -> f64 {
        self.clients
            .iter()
            .enumerate()
            .map(|(i, stats)| {
                let client = system.client(cloudalloc_model::ClientId(i));
                client.rate_agreed
                    * system.utility_of(client.id).value(stats.mean_response().min(f64::MAX))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clients_report_infinite_response() {
        let stats =
            ClientSimStats { arrivals: 0, completed: 0, dropped: 0, responses: Sample::new() };
        assert_eq!(stats.mean_response(), f64::INFINITY);
    }

    #[test]
    fn totals_sum_over_clients() {
        let mk = |n: u64| ClientSimStats {
            arrivals: n,
            completed: n,
            dropped: 0,
            responses: (0..n).map(|i| i as f64).collect(),
        };
        let report = SimReport { clients: vec![mk(2), mk(3)], events: 10, measured_time: 100.0 };
        assert_eq!(report.total_completed(), 5);
    }
}
