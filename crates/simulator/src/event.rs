//! A time-ordered event queue with deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    time: f64,
    seq: u64,
    key: K,
}

impl<K> PartialEq for Entry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<K> Eq for Entry<K> {}

impl<K> Ord for Entry<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first, ties
        // broken by insertion order.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<K> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A future-event list: `push(time, key)`, `pop()` returns events in
/// non-decreasing time order; simultaneous events come out in insertion
/// order, making runs fully deterministic.
///
/// # Example
///
/// ```
/// use cloudalloc_simulator::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<K> {
    heap: BinaryHeap<Entry<K>>,
    seq: u64,
}

impl<K> EventQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `key` at `time`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times.
    pub fn push(&mut self, time: f64, key: K) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.heap.push(Entry { time, seq: self.seq, key });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, K)> {
        self.heap.pop().map(|e| (e.time, e.key))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3.0, 'c');
        q.push(1.0, 'a');
        q.push(2.0, 'b');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_and_len_track_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_times_are_rejected() {
        EventQueue::new().push(f64::INFINITY, ());
    }
}
