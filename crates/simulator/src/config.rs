//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::failures::FailureConfig;
use crate::routing::RoutingPolicy;
use crate::service::ServiceDistribution;

/// Service discipline of the simulated servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpsMode {
    /// Independent M/M/1 queues per (client, server, resource) — the
    /// analytic model's exact assumption.
    Isolated,
    /// Work-conserving fluid GPS: backlogged clients split the capacity
    /// proportionally to their shares.
    Shared,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated time horizon (model time units).
    pub horizon: f64,
    /// Initial transient discarded from the statistics.
    pub warmup: f64,
    /// RNG seed; identical seeds reproduce identical sample paths.
    pub seed: u64,
    /// Service discipline.
    pub mode: GpsMode,
    /// Service-requirement distribution (the analytic model assumes
    /// [`ServiceDistribution::Exponential`]; other shapes quantify the
    /// model's robustness).
    pub service: ServiceDistribution,
    /// Optional server failure injection. Only supported by the
    /// isolated-queues engine.
    pub failures: Option<FailureConfig>,
    /// Dispatcher routing policy. [`RoutingPolicy::LeastWork`] is only
    /// supported by the isolated-queues engine.
    pub routing: RoutingPolicy,
}

impl SimConfig {
    /// A quick run for tests: short horizon, isolated queues.
    pub fn quick(seed: u64) -> Self {
        Self { horizon: 500.0, warmup: 50.0, seed, ..Default::default() }
    }

    /// A long validation run: enough samples to pin means within a few
    /// percent for typical rates.
    pub fn validation(seed: u64) -> Self {
        Self { horizon: 20_000.0, warmup: 1_000.0, seed, ..Default::default() }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive, the warmup does not fit
    /// inside it, the service distribution is malformed, or failure
    /// injection is requested together with the shared-GPS engine.
    pub fn validate(&self) {
        assert!(
            self.horizon.is_finite() && self.horizon > 0.0,
            "horizon must be positive, got {}",
            self.horizon
        );
        assert!(
            self.warmup.is_finite() && (0.0..self.horizon).contains(&self.warmup),
            "warmup must lie in [0, horizon), got {}",
            self.warmup
        );
        self.service.validate();
        if let Some(failures) = &self.failures {
            failures.validate();
            assert!(
                self.mode == GpsMode::Isolated,
                "failure injection is only supported by the isolated-queues engine"
            );
        }
        if self.routing == RoutingPolicy::LeastWork {
            assert!(
                self.mode == GpsMode::Isolated,
                "least-work routing is only supported by the isolated-queues engine"
            );
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            horizon: 5_000.0,
            warmup: 500.0,
            seed: 0,
            mode: GpsMode::Isolated,
            service: ServiceDistribution::Exponential,
            failures: None,
            routing: RoutingPolicy::Static,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::default().validate();
        SimConfig::quick(1).validate();
        SimConfig::validation(2).validate();
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_beyond_horizon_panics() {
        SimConfig { horizon: 10.0, warmup: 10.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        SimConfig { horizon: 0.0, warmup: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "only supported by the isolated")]
    fn shared_mode_rejects_failures() {
        SimConfig {
            mode: GpsMode::Shared,
            failures: Some(FailureConfig::new(10.0, 1.0)),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn isolated_mode_accepts_failures_and_service_shapes() {
        SimConfig {
            failures: Some(FailureConfig::new(100.0, 5.0)),
            service: ServiceDistribution::HyperExponential { cv2: 4.0 },
            ..Default::default()
        }
        .validate();
    }
}
