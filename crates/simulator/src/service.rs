//! Service-time distributions beyond the exponential.
//!
//! The analytic model assumes exponential service (M/M/1). Real request
//! work is often burstier (heavy-tailed) or steadier (near-deterministic);
//! these distributions let the robustness experiments measure how far the
//! closed forms drift when the M/M/1 assumption is violated.

use serde::{Deserialize, Serialize};

/// Distribution of one request's service requirement (mean fixed by the
/// queue; the distribution sets the shape).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ServiceDistribution {
    /// Exponential — the analytic model's assumption (CV² = 1).
    #[default]
    Exponential,
    /// Two-phase balanced hyperexponential with squared coefficient of
    /// variation `cv2 > 1` — bursty service.
    HyperExponential {
        /// Squared coefficient of variation (`> 1`).
        cv2: f64,
    },
    /// Deterministic service (CV² = 0) — the M/D/1 regime.
    Deterministic,
}

impl ServiceDistribution {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if a hyperexponential `cv2` is not `> 1` and finite.
    pub fn validate(&self) {
        if let Self::HyperExponential { cv2 } = self {
            assert!(cv2.is_finite() && *cv2 > 1.0, "hyperexponential needs cv2 > 1, got {cv2}");
        }
    }

    /// Squared coefficient of variation of the distribution.
    pub fn cv2(&self) -> f64 {
        match self {
            Self::Exponential => 1.0,
            Self::HyperExponential { cv2 } => *cv2,
            Self::Deterministic => 0.0,
        }
    }

    /// Draws a sample with the given `mean` from two uniforms in `(0, 1]`
    /// (`u_choice` selects the phase, `u_value` the magnitude).
    ///
    /// # Panics
    ///
    /// Panics if the uniforms are out of `(0, 1]` or `mean <= 0`.
    pub fn sample(&self, u_choice: f64, u_value: f64, mean: f64) -> f64 {
        assert!(u_choice > 0.0 && u_choice <= 1.0, "u_choice must lie in (0,1]");
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive, got {mean}");
        match self {
            Self::Exponential => cloudalloc_queueing::sampling::exponential(u_value, 1.0 / mean),
            Self::HyperExponential { cv2 } => {
                // Balanced-means H2: phase probability
                // p = (1 + √((cv²−1)/(cv²+1)))/2, rates μ_i = 2p_i/mean,
                // giving mean `mean` and the requested cv².
                let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
                let (prob, rate) = if u_choice <= p {
                    (p, 2.0 * p / mean)
                } else {
                    (1.0 - p, 2.0 * (1.0 - p) / mean)
                };
                debug_assert!(prob > 0.0);
                cloudalloc_queueing::sampling::exponential(u_value, rate)
            }
            Self::Deterministic => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_moments(dist: ServiceDistribution, mean: f64) -> (f64, f64) {
        // Deterministic low-discrepancy grid over both uniforms.
        let n = 400;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 1..=n {
            for j in 1..=n {
                let x = dist.sample(i as f64 / n as f64, j as f64 / n as f64, mean);
                sum += x;
                sum_sq += x * x;
            }
        }
        let count = (n * n) as f64;
        let m = sum / count;
        (m, sum_sq / count - m * m)
    }

    #[test]
    fn exponential_has_unit_cv2() {
        let (m, v) = empirical_moments(ServiceDistribution::Exponential, 2.0);
        assert!((m - 2.0).abs() / 2.0 < 0.02, "mean {m}");
        assert!((v / (m * m) - 1.0).abs() < 0.05, "cv2 {}", v / (m * m));
    }

    #[test]
    fn hyperexponential_matches_requested_cv2() {
        let dist = ServiceDistribution::HyperExponential { cv2: 4.0 };
        dist.validate();
        let (m, v) = empirical_moments(dist, 1.5);
        assert!((m - 1.5).abs() / 1.5 < 0.02, "mean {m}");
        assert!((v / (m * m) - 4.0).abs() < 0.3, "cv2 {}", v / (m * m));
    }

    #[test]
    fn deterministic_is_exact() {
        let dist = ServiceDistribution::Deterministic;
        assert_eq!(dist.sample(0.3, 0.9, 1.25), 1.25);
        assert_eq!(dist.cv2(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cv2 > 1")]
    fn hyperexponential_rejects_low_cv2() {
        ServiceDistribution::HyperExponential { cv2: 1.0 }.validate();
    }

    #[test]
    fn cv2_accessor_matches_variants() {
        assert_eq!(ServiceDistribution::Exponential.cv2(), 1.0);
        assert_eq!(ServiceDistribution::HyperExponential { cv2: 9.0 }.cv2(), 9.0);
    }
}
