//! Dispatcher routing policies.
//!
//! Between decision epochs the allocation's dispersion vector `α` is
//! fixed, but the paper notes that "some small changes in the parameters
//! can be effectively tracked and responded to by proper reaction of
//! request dispatchers in the clusters". These policies model that
//! reaction inside the simulator:
//!
//! * [`RoutingPolicy::Static`] — route each request independently with
//!   probabilities `α` (the analytic model's Bernoulli splitting);
//! * [`RoutingPolicy::LeastWork`] — among the client's allocated
//!   branches, send the request to the one with the smallest expected
//!   wait, breaking ties toward the static probabilities. A work-aware
//!   dispatcher smooths the sampling noise of Bernoulli splitting and
//!   absorbs small drifts without a new epoch decision.

use serde::{Deserialize, Serialize};

/// How the cluster dispatcher maps one arriving request to a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RoutingPolicy {
    /// Independent probabilistic splitting by `α` — the model's exact
    /// assumption (Poisson splitting keeps every branch Poisson).
    #[default]
    Static,
    /// Join-least-expected-wait across the client's allocated branches.
    /// Only branches with `α > 0` participate; their GPS shares are
    /// untouched, so the allocation's guarantees still hold.
    LeastWork,
}

/// Picks the branch with the smallest expected wait, ties broken by the
/// largest static probability, then the lowest index (deterministic).
///
/// Branches with non-finite wait or `prob ≤ 0` are excluded. Returns
/// `None` when nothing is eligible.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn least_work_choice(waits: &[f64], probs: &[f64]) -> Option<usize> {
    assert_eq!(waits.len(), probs.len(), "one wait per branch required");
    let mut best: Option<usize> = None;
    for idx in 0..waits.len() {
        if !waits[idx].is_finite() || probs[idx] <= 0.0 {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => waits[idx] < waits[b] || (waits[idx] == waits[b] && probs[idx] > probs[b]),
        };
        if better {
            best = Some(idx);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_smallest_wait() {
        assert_eq!(least_work_choice(&[2.0, 1.0, 3.0], &[0.4, 0.2, 0.4]), Some(1));
    }

    #[test]
    fn ties_break_toward_the_static_probabilities_then_index() {
        assert_eq!(
            least_work_choice(&[1.0, 1.0], &[0.3, 0.7]),
            Some(1),
            "equal waits must defer to α"
        );
        assert_eq!(least_work_choice(&[1.0, 1.0], &[0.5, 0.5]), Some(0));
    }

    #[test]
    fn infinite_waits_and_zero_probs_are_excluded() {
        assert_eq!(least_work_choice(&[f64::INFINITY, 9.0], &[0.9, 0.1]), Some(1));
        assert_eq!(least_work_choice(&[1.0, 9.0], &[0.0, 0.1]), Some(1));
        assert_eq!(least_work_choice(&[], &[]), None);
        assert_eq!(least_work_choice(&[f64::INFINITY], &[1.0]), None);
    }

    #[test]
    fn default_policy_is_static() {
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::Static);
    }
}
