//! The isolated-queues engine: every (client, server, resource) triple is
//! an independent server with the configured service distribution — with
//! exponential service, exactly the stochastic system behind the paper's
//! Eq. (1). Optionally injects server failures (exponential up/down).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cloudalloc_metrics::Sample;
use cloudalloc_model::{Allocation, ClientId, CloudSystem, ServerId};
use cloudalloc_queueing::sampling;

use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::report::{ClientSimStats, SimReport};

/// One tandem lane: the pair of FIFO queues a client holds on one server.
struct Lane {
    client: usize,
    /// Index into the failure-tracked server table.
    server_slot: usize,
    /// Service rate of the processing stage (`φ^p·C^p/t̄^p`).
    rate_p: f64,
    /// Service rate of the communication stage.
    rate_c: f64,
    /// Requests waiting/being served in the processing stage
    /// (each entry is its arrival timestamp).
    queue_p: VecDeque<f64>,
    /// Requests in the communication stage.
    queue_c: VecDeque<f64>,
    /// Bumped on failure to invalidate scheduled completions.
    version_p: u64,
    /// Bumped on failure to invalidate scheduled completions.
    version_c: u64,
}

/// Failure-tracking state of one physical server.
struct ServerState {
    up: bool,
    lanes: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Next request of a client arrives.
    Arrive(usize),
    /// The processing stage of a lane finishes its head request.
    ProcDone { lane: usize, version: u64 },
    /// The communication stage of a lane finishes its head request.
    CommDone { lane: usize, version: u64 },
    /// A server goes down.
    Fail(usize),
    /// A server comes back up.
    Repair(usize),
}

/// Draws a uniform in `(0, 1]` (the domain of the inverse-CDF samplers).
fn u01(rng: &mut StdRng) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Runs the isolated-queues simulation.
pub fn run(system: &CloudSystem, alloc: &Allocation, config: &SimConfig) -> SimReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = system.num_clients();
    let service = config.service;
    let draw_service = |rng: &mut StdRng, rate: f64| -> f64 {
        // `rate` is the stage's service rate; the distribution preserves
        // the mean `1/rate` and sets the shape.
        service.sample(u01(rng), u01(rng), 1.0 / rate)
    };

    // Build lanes, the per-client routing tables, and the server table.
    let mut lanes: Vec<Lane> = Vec::new();
    let mut routing: Vec<(Vec<f64>, Vec<usize>)> = Vec::with_capacity(n);
    let mut server_slot_of: Vec<Option<usize>> = vec![None; system.num_servers()];
    let mut servers: Vec<ServerState> = Vec::new();
    for i in 0..n {
        let client = system.client(ClientId(i));
        let mut probs = Vec::new();
        let mut lane_ids = Vec::new();
        for &(server, p) in alloc.placements(ClientId(i)) {
            let class = system.class_of(server);
            let slot = *server_slot_of[ServerId::index(server)].get_or_insert_with(|| {
                servers.push(ServerState { up: true, lanes: Vec::new() });
                servers.len() - 1
            });
            probs.push(p.alpha);
            lane_ids.push(lanes.len());
            servers[slot].lanes.push(lanes.len());
            lanes.push(Lane {
                client: i,
                server_slot: slot,
                rate_p: p.phi_p * class.cap_processing / client.exec_processing,
                rate_c: p.phi_c * class.cap_communication / client.exec_communication,
                queue_p: VecDeque::new(),
                queue_c: VecDeque::new(),
                version_p: 0,
                version_c: 0,
            });
        }
        routing.push((probs, lane_ids));
    }

    let mut stats: Vec<ClientSimStats> = (0..n)
        .map(|_| ClientSimStats { arrivals: 0, completed: 0, dropped: 0, responses: Sample::new() })
        .collect();

    let mut events: EventQueue<Ev> = EventQueue::new();
    for i in 0..n {
        let rate = system.client(ClientId(i)).rate_predicted;
        events.push(sampling::poisson_interarrival(u01(&mut rng), rate), Ev::Arrive(i));
    }
    if let Some(failures) = &config.failures {
        for slot in 0..servers.len() {
            events.push(sampling::exponential(u01(&mut rng), 1.0 / failures.mtbf), Ev::Fail(slot));
        }
    }

    let mut processed: u64 = 0;
    while let Some((t, ev)) = events.pop() {
        if t > config.horizon {
            break;
        }
        processed += 1;
        match ev {
            Ev::Arrive(i) => {
                let rate = system.client(ClientId(i)).rate_predicted;
                events.push(t + sampling::poisson_interarrival(u01(&mut rng), rate), Ev::Arrive(i));
                if t >= config.warmup {
                    stats[i].arrivals += 1;
                }
                let (probs, lane_ids) = &routing[i];
                let choice = match config.routing {
                    crate::routing::RoutingPolicy::Static => {
                        sampling::route(rng.gen::<f64>(), probs)
                    }
                    crate::routing::RoutingPolicy::LeastWork => {
                        // Expected wait per branch: remaining work in both
                        // stages plus the new request, at the branch rates.
                        let waits: Vec<f64> = lane_ids
                            .iter()
                            .map(|&lid| {
                                let lane = &lanes[lid];
                                if lane.rate_p <= 0.0 || lane.rate_c <= 0.0 {
                                    return f64::INFINITY;
                                }
                                (lane.queue_p.len() as f64 + 1.0) / lane.rate_p
                                    + lane.queue_c.len() as f64 / lane.rate_c
                            })
                            .collect();
                        crate::routing::least_work_choice(&waits, probs)
                    }
                };
                match choice {
                    Some(branch) => {
                        let lane_id = lane_ids[branch];
                        let lane = &mut lanes[lane_id];
                        lane.queue_p.push_back(t);
                        // Head of an idle queue starts service immediately
                        // (unless the server is down; repair restarts it).
                        if lane.queue_p.len() == 1
                            && lane.rate_p > 0.0
                            && servers[lane.server_slot].up
                        {
                            let dt = draw_service(&mut rng, lane.rate_p);
                            events.push(
                                t + dt,
                                Ev::ProcDone { lane: lane_id, version: lane.version_p },
                            );
                        }
                    }
                    None => {
                        if t >= config.warmup {
                            stats[i].dropped += 1;
                        }
                    }
                }
            }
            Ev::ProcDone { lane: lane_id, version } => {
                if lanes[lane_id].version_p != version {
                    continue; // invalidated by a failure
                }
                let slot = lanes[lane_id].server_slot;
                debug_assert!(servers[slot].up, "completions cannot fire while down");
                let dt_next = if lanes[lane_id].queue_p.len() > 1 {
                    Some(draw_service(&mut rng, lanes[lane_id].rate_p))
                } else {
                    None
                };
                let comm_was_idle = lanes[lane_id].queue_c.is_empty();
                let dt_comm = if comm_was_idle && lanes[lane_id].rate_c > 0.0 {
                    Some(draw_service(&mut rng, lanes[lane_id].rate_c))
                } else {
                    None
                };
                let lane = &mut lanes[lane_id];
                let arrival = lane.queue_p.pop_front().expect("service completion without a job");
                if let Some(dt) = dt_next {
                    events.push(t + dt, Ev::ProcDone { lane: lane_id, version: lane.version_p });
                }
                lane.queue_c.push_back(arrival);
                if let Some(dt) = dt_comm {
                    events.push(t + dt, Ev::CommDone { lane: lane_id, version: lane.version_c });
                }
            }
            Ev::CommDone { lane: lane_id, version } => {
                if lanes[lane_id].version_c != version {
                    continue;
                }
                let dt_next = if lanes[lane_id].queue_c.len() > 1 {
                    Some(draw_service(&mut rng, lanes[lane_id].rate_c))
                } else {
                    None
                };
                let lane = &mut lanes[lane_id];
                let arrival = lane.queue_c.pop_front().expect("service completion without a job");
                if let Some(dt) = dt_next {
                    events.push(t + dt, Ev::CommDone { lane: lane_id, version: lane.version_c });
                }
                if arrival >= config.warmup {
                    let client = lane.client;
                    stats[client].completed += 1;
                    stats[client].responses.push(t - arrival);
                }
            }
            Ev::Fail(slot) => {
                let failures = config.failures.expect("failure event without a config");
                servers[slot].up = false;
                // Invalidate every scheduled completion on this server;
                // queued work stalls until the repair.
                for &lane_id in &servers[slot].lanes {
                    lanes[lane_id].version_p += 1;
                    lanes[lane_id].version_c += 1;
                }
                events.push(
                    t + sampling::exponential(u01(&mut rng), 1.0 / failures.mttr),
                    Ev::Repair(slot),
                );
            }
            Ev::Repair(slot) => {
                let failures = config.failures.expect("repair event without a config");
                servers[slot].up = true;
                // Restart service at the head of every backlogged queue.
                let lane_ids = servers[slot].lanes.clone();
                for lane_id in lane_ids {
                    if !lanes[lane_id].queue_p.is_empty() && lanes[lane_id].rate_p > 0.0 {
                        let dt = draw_service(&mut rng, lanes[lane_id].rate_p);
                        events.push(
                            t + dt,
                            Ev::ProcDone { lane: lane_id, version: lanes[lane_id].version_p },
                        );
                    }
                    if !lanes[lane_id].queue_c.is_empty() && lanes[lane_id].rate_c > 0.0 {
                        let dt = draw_service(&mut rng, lanes[lane_id].rate_c);
                        events.push(
                            t + dt,
                            Ev::CommDone { lane: lane_id, version: lanes[lane_id].version_c },
                        );
                    }
                }
                events.push(
                    t + sampling::exponential(u01(&mut rng), 1.0 / failures.mtbf),
                    Ev::Fail(slot),
                );
            }
        }
    }

    SimReport { clients: stats, events: processed, measured_time: config.horizon - config.warmup }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::FailureConfig;
    use crate::service::ServiceDistribution;
    use cloudalloc_model::{Placement, ServerId};

    /// One client, one server, generous shares: the measured mean response
    /// must match the M/M/1 tandem formula within Monte-Carlo error.
    fn single_client_system(phi: f64) -> (CloudSystem, Allocation) {
        use cloudalloc_model::{
            Client, Cluster, ClusterId, Server, ServerClass, ServerClassId, UtilityClass,
            UtilityClassId, UtilityFunction,
        };
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 1.0, 1.0, 0.5, 0.5, 0.5));
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), k0);
        alloc.place(
            &sys,
            ClientId(0),
            ServerId(0),
            Placement { alpha: 1.0, phi_p: phi, phi_c: phi },
        );
        (sys, alloc)
    }

    #[test]
    fn matches_the_analytic_tandem_mean() {
        let (sys, alloc) = single_client_system(0.5);
        // service rate = 0.5*4/0.5 = 4 per stage, arrival 1 → R = 2/(4−1).
        let expected = 2.0 / 3.0;
        let config =
            SimConfig { horizon: 40_000.0, warmup: 2_000.0, seed: 7, ..Default::default() };
        let report = run(&sys, &alloc, &config);
        let measured = report.clients[0].mean_response();
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "measured {measured}, expected {expected}"
        );
        assert_eq!(report.clients[0].dropped, 0);
        assert!(report.clients[0].completed > 10_000);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (sys, alloc) = single_client_system(0.5);
        let config = SimConfig::quick(3);
        let a = run(&sys, &alloc, &config);
        let b = run(&sys, &alloc, &config);
        assert_eq!(a.events, b.events);
        assert_eq!(a.clients[0].responses.values(), b.clients[0].responses.values());
        let c = run(&sys, &alloc, &SimConfig::quick(4));
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn unassigned_clients_complete_nothing() {
        let (sys, _) = single_client_system(0.5);
        let empty = Allocation::new(&sys);
        let report = run(&sys, &empty, &SimConfig::quick(1));
        assert_eq!(report.clients[0].completed, 0);
        assert_eq!(report.clients[0].mean_response(), f64::INFINITY);
        // Every generated request was dropped.
        assert_eq!(report.clients[0].arrivals, report.clients[0].dropped);
    }

    #[test]
    fn tighter_shares_mean_longer_responses() {
        let config = SimConfig { horizon: 10_000.0, warmup: 500.0, seed: 5, ..Default::default() };
        let (sys_a, alloc_a) = single_client_system(0.9);
        let (sys_b, alloc_b) = single_client_system(0.3);
        let fast = run(&sys_a, &alloc_a, &config).clients[0].mean_response();
        let slow = run(&sys_b, &alloc_b, &config).clients[0].mean_response();
        assert!(slow > fast, "slow {slow} <= fast {fast}");
    }

    #[test]
    fn deterministic_service_beats_exponential() {
        // Pollaczek–Khinchine: at equal utilization, M/D/1 waits are half
        // the M/M/1 waits, so mean response must drop.
        let (sys, alloc) = single_client_system(0.5);
        let base = SimConfig { horizon: 30_000.0, warmup: 1_000.0, seed: 9, ..Default::default() };
        let exp = run(&sys, &alloc, &base).clients[0].mean_response();
        let det =
            run(&sys, &alloc, &SimConfig { service: ServiceDistribution::Deterministic, ..base })
                .clients[0]
                .mean_response();
        assert!(det < exp, "M/D/1 {det} should beat M/M/1 {exp}");
        // And the P-K prediction for the mean response of one stage:
        // R = 1/μ + ρ/(2μ(1−ρ)) with μ=4, ρ=0.25 → per stage ≈ 0.2917.
        let pk = 2.0 * (0.25 + 0.25 / (2.0 * 4.0 * 0.75));
        assert!((det - pk).abs() / pk < 0.08, "M/D/1 {det} vs P-K {pk}");
    }

    #[test]
    fn bursty_service_matches_pollaczek_khinchine() {
        // One stage at a time: the measured tandem mean must match the
        // sum of the two M/G/1 sojourns within Monte-Carlo error.
        use cloudalloc_queueing::MG1;
        let (sys, alloc) = single_client_system(0.5);
        let cv2 = 4.0;
        let config = SimConfig {
            horizon: 60_000.0,
            warmup: 2_000.0,
            seed: 31,
            service: ServiceDistribution::HyperExponential { cv2 },
            ..Default::default()
        };
        let measured = run(&sys, &alloc, &config).clients[0].mean_response();
        // Each stage: arrival 1, service rate 4, CV² = 4.
        let predicted = 2.0 * MG1::new(1.0, 4.0, cv2).mean_response_time();
        assert!(
            (measured - predicted).abs() / predicted < 0.08,
            "measured {measured}, P-K predicts {predicted}"
        );
    }

    #[test]
    fn bursty_service_hurts_responses() {
        let (sys, alloc) = single_client_system(0.5);
        let base = SimConfig { horizon: 30_000.0, warmup: 1_000.0, seed: 11, ..Default::default() };
        let exp = run(&sys, &alloc, &base).clients[0].mean_response();
        let bursty = run(
            &sys,
            &alloc,
            &SimConfig { service: ServiceDistribution::HyperExponential { cv2: 6.0 }, ..base },
        )
        .clients[0]
            .mean_response();
        assert!(bursty > exp, "bursty {bursty} should exceed exponential {exp}");
    }

    #[test]
    fn failures_degrade_responses_but_lose_no_requests() {
        let (sys, alloc) = single_client_system(0.8);
        let base = SimConfig { horizon: 20_000.0, warmup: 1_000.0, seed: 13, ..Default::default() };
        let healthy = run(&sys, &alloc, &base);
        let faulty = run(
            &sys,
            &alloc,
            &SimConfig { failures: Some(FailureConfig::new(200.0, 20.0)), ..base },
        );
        assert!(
            faulty.clients[0].mean_response() > healthy.clients[0].mean_response(),
            "outages must inflate responses"
        );
        // Nothing is dropped: requests wait out the outage.
        assert_eq!(faulty.clients[0].dropped, 0);
        // Completions still happen at a healthy clip (availability ~0.91).
        assert!(faulty.clients[0].completed as f64 > 0.8 * healthy.clients[0].completed as f64);
    }

    #[test]
    fn least_work_routing_beats_bernoulli_splitting() {
        // A client split 50/50 over two identical servers: the work-aware
        // dispatcher avoids the sampling noise of independent splitting
        // (classic JSQ-vs-Bernoulli) and must cut the mean response.
        use cloudalloc_model::{
            Client, Cluster, ClusterId, Server, ServerClass, ServerClassId, UtilityClass,
            UtilityClassId, UtilityFunction,
        };
        let classes = vec![ServerClass::new(ServerClassId(0), 4.0, 4.0, 4.0, 1.0, 0.5)];
        let utils = vec![UtilityClass::new(UtilityClassId(0), UtilityFunction::linear(2.0, 0.5))];
        let mut sys = CloudSystem::new(classes, utils);
        let k0 = sys.add_cluster(Cluster::new(ClusterId(0)));
        let s0 = sys.add_server(Server::new(ServerClassId(0), k0));
        let s1 = sys.add_server(Server::new(ServerClassId(0), k0));
        sys.add_client(Client::new(ClientId(0), UtilityClassId(0), 3.0, 3.0, 0.5, 0.5, 0.5));
        let mut alloc = Allocation::new(&sys);
        alloc.assign_cluster(ClientId(0), k0);
        for server in [s0, s1] {
            alloc.place(
                &sys,
                ClientId(0),
                server,
                Placement { alpha: 0.5, phi_p: 0.5, phi_c: 0.5 },
            );
        }
        let base = SimConfig { horizon: 20_000.0, warmup: 1_000.0, seed: 23, ..Default::default() };
        let static_r = run(&sys, &alloc, &base).clients[0].mean_response();
        let lw = SimConfig { routing: crate::routing::RoutingPolicy::LeastWork, ..base };
        let least_work_r = run(&sys, &alloc, &lw).clients[0].mean_response();
        assert!(least_work_r < static_r, "least-work {least_work_r} should beat static {static_r}");
    }

    #[test]
    fn failure_runs_are_deterministic() {
        let (sys, alloc) = single_client_system(0.8);
        let config =
            SimConfig { failures: Some(FailureConfig::new(50.0, 10.0)), ..SimConfig::quick(21) };
        let a = run(&sys, &alloc, &config);
        let b = run(&sys, &alloc, &config);
        assert_eq!(a.events, b.events);
        assert_eq!(a.clients[0].responses.values(), b.clients[0].responses.values());
    }
}
