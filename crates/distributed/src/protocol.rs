//! The manager–agent protocol: scatter–gather greedy construction and
//! per-cluster parallel local search.

use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cloudalloc_core::{assign_distribute, commit, ops, Candidate, SolverConfig, SolverCtx};
use cloudalloc_model::{
    evaluate, Allocation, ClientId, CloudSystem, ClusterId, ScoredAllocation, ServerId,
};

use crate::merge::merge_cluster_allocations;

/// Manager → agent messages.
enum ToAgent {
    /// Compute this cluster's best candidate for the client.
    Evaluate(ClientId),
    /// Commit the candidate just evaluated for the client.
    Commit(ClientId),
    /// Hand the final partial allocation back and stop.
    Finish,
}

/// Agent → manager messages.
enum FromAgent {
    /// Evaluation result: the candidate's score, if the cluster can host.
    Score(Option<f64>),
    /// Final partial allocation plus the agent's accumulated compute time.
    Done(Box<Allocation>, Duration),
}

/// Timing and topology statistics of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistStats {
    /// Agents (= clusters) used.
    pub agents: usize,
    /// Wall-clock of the greedy construction phase.
    pub greedy_wall: Duration,
    /// Wall-clock of the local-search phase.
    pub search_wall: Duration,
    /// Local-search rounds executed.
    pub rounds: usize,
}

/// One cluster agent: answers `Evaluate` with its best candidate score and
/// commits on request, owning the partial allocation of its cluster.
fn agent_loop(
    ctx: &SolverCtx<'_>,
    cluster: ClusterId,
    rx: Receiver<ToAgent>,
    tx: Sender<FromAgent>,
) {
    let mut alloc = Allocation::new(ctx.system);
    let mut cached: Option<(ClientId, Candidate)> = None;
    let mut busy = Duration::ZERO;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToAgent::Evaluate(client) => {
                let start = Instant::now();
                let candidate = assign_distribute(ctx, &alloc, client, cluster);
                busy += start.elapsed();
                let score = candidate.as_ref().map(|c| c.score);
                cached = candidate.map(|c| (client, c));
                let _ = tx.send(FromAgent::Score(score));
            }
            ToAgent::Commit(client) => {
                let start = Instant::now();
                let (cached_client, candidate) =
                    cached.take().expect("commit must follow an evaluate");
                assert_eq!(cached_client, client, "commit/evaluate mismatch");
                commit(ctx, &mut alloc, client, &candidate);
                busy += start.elapsed();
            }
            ToAgent::Finish => {
                let _ = tx.send(FromAgent::Done(Box::new(alloc), busy));
                return;
            }
        }
    }
}

/// Runs one distributed greedy pass over `order`: the manager broadcasts
/// every client to all cluster agents, each agent proposes its cluster's
/// candidate, and the manager commits the argmax (ties break toward the
/// lowest cluster id, matching the sequential solver).
pub fn greedy_distributed(ctx: &SolverCtx<'_>, order: &[ClientId]) -> Allocation {
    greedy_distributed_timed(ctx, order).0
}

/// Like [`greedy_distributed`], additionally returning each agent's
/// accumulated compute time. The maximum entry is the critical path of
/// the pass on ideal parallel hardware — the quantity behind the paper's
/// "÷K with K clusters" speedup claim — independent of how many physical
/// cores this machine happens to have.
pub fn greedy_distributed_timed(
    ctx: &SolverCtx<'_>,
    order: &[ClientId],
) -> (Allocation, Vec<Duration>) {
    let system = ctx.system;
    let k = system.num_clusters();
    thread::scope(|scope| {
        let mut to_agents = Vec::with_capacity(k);
        let mut from_agents = Vec::with_capacity(k);
        for cluster in 0..k {
            let (tx_cmd, rx_cmd) = unbounded::<ToAgent>();
            let (tx_res, rx_res) = unbounded::<FromAgent>();
            // Agents share the manager's context (and its lowering) by
            // reference; the scope guarantees it outlives them.
            let agent_ctx = ctx;
            scope.spawn(move || agent_loop(agent_ctx, ClusterId(cluster), rx_cmd, tx_res));
            to_agents.push(tx_cmd);
            from_agents.push(rx_res);
        }
        for &client in order {
            for tx in &to_agents {
                tx.send(ToAgent::Evaluate(client)).expect("agent alive");
            }
            let mut best: Option<(usize, f64)> = None;
            for (cluster, rx) in from_agents.iter().enumerate() {
                let FromAgent::Score(score) = rx.recv().expect("agent alive") else {
                    unreachable!("protocol violation: expected Score")
                };
                if let Some(score) = score {
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((cluster, score));
                    }
                }
            }
            if let Some((winner, score)) = best {
                if score > 0.0 || ctx.config.require_service {
                    to_agents[winner].send(ToAgent::Commit(client)).expect("agent alive");
                }
            }
        }
        let mut parts = Vec::with_capacity(k);
        let mut busy = Vec::with_capacity(k);
        for (tx, rx) in to_agents.iter().zip(&from_agents) {
            tx.send(ToAgent::Finish).expect("agent alive");
            let FromAgent::Done(alloc, agent_busy) = rx.recv().expect("agent alive") else {
                unreachable!("protocol violation: expected Done")
            };
            parts.push(*alloc);
            busy.push(agent_busy);
        }
        (merge_cluster_allocations(system, &parts), busy)
    })
}

/// One parallel local-search round: every cluster agent runs the
/// cluster-local operators (share re-balance, dispersion re-balance,
/// activation, shutdown) on its own view; the manager merges the views and
/// runs the inter-cluster reassignment centrally.
fn parallel_round(ctx: &SolverCtx<'_>, alloc: &Allocation) -> Allocation {
    let system = ctx.system;
    let parts: Vec<Allocation> = thread::scope(|scope| {
        let handles: Vec<_> = (0..system.num_clusters())
            .map(|k| {
                let cluster = ClusterId(k);
                let agent_ctx = ctx;
                let base = alloc.clone();
                scope.spawn(move || {
                    let mut local = ScoredAllocation::lowered(&agent_ctx.compiled, base);
                    let config = agent_ctx.config;
                    if config.adjust_shares {
                        let servers: Vec<ServerId> = agent_ctx
                            .compiled
                            .cluster_servers(cluster)
                            .iter()
                            .copied()
                            .filter(|&s| local.alloc().is_on(s))
                            .collect();
                        for server in servers {
                            ops::adjust_resource_shares(agent_ctx, &mut local, server);
                        }
                    }
                    if config.adjust_dispersion {
                        for i in 0..agent_ctx.system.num_clients() {
                            if local.alloc().cluster_of(ClientId(i)) == Some(cluster) {
                                ops::adjust_dispersion_rates(agent_ctx, &mut local, ClientId(i));
                            }
                        }
                    }
                    if config.turn_on {
                        ops::turn_on_servers(agent_ctx, &mut local, cluster);
                    }
                    if config.turn_off {
                        ops::turn_off_servers(agent_ctx, &mut local, cluster);
                    }
                    local.into_allocation()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("agent panicked")).collect()
    });
    merge_cluster_allocations(system, &parts)
}

/// Runs the local search with per-cluster parallelism until steady.
pub fn improve_distributed(ctx: &SolverCtx<'_>, alloc: &mut Allocation, seed: u64) -> usize {
    let system = ctx.system;
    let config = ctx.config;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
    let mut profit = evaluate(system, alloc).profit;
    let mut rounds = 0;
    for _ in 0..config.max_rounds {
        *alloc = parallel_round(ctx, alloc);
        if config.reassign {
            order.shuffle(&mut rng);
            let owned = std::mem::replace(alloc, Allocation::new(system));
            let mut scored = ScoredAllocation::lowered(&ctx.compiled, owned);
            ops::reassign_clients(ctx, &mut scored, &order);
            *alloc = scored.into_allocation();
        }
        rounds += 1;
        let new_profit = evaluate(system, alloc).profit;
        if new_profit - profit <= config.steady_tol * profit.abs().max(1.0) {
            break;
        }
        profit = new_profit;
    }
    rounds
}

/// Full distributed solve: best-of-N distributed greedy passes, then the
/// parallel local search. Mirrors [`cloudalloc_core::solve`] semantics.
pub fn solve_distributed(
    system: &CloudSystem,
    config: &SolverConfig,
    seed: u64,
) -> (Allocation, DistStats) {
    let ctx = SolverCtx::new(system, config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();

    let greedy_start = Instant::now();
    let mut best: Option<(f64, Allocation)> = None;
    for _ in 0..config.num_init_solns {
        order.shuffle(&mut rng);
        let alloc = greedy_distributed(&ctx, &order);
        let profit = evaluate(system, &alloc).profit;
        if best.as_ref().is_none_or(|(p, _)| profit > *p) {
            best = Some((profit, alloc));
        }
    }
    let greedy_wall = greedy_start.elapsed();
    let (_, mut alloc) = best.expect("num_init_solns >= 1");

    let search_start = Instant::now();
    let rounds = improve_distributed(&ctx, &mut alloc, seed.wrapping_add(0x5EED));
    let search_wall = search_start.elapsed();

    (alloc, DistStats { agents: system.num_clusters(), greedy_wall, search_wall, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_core::greedy_pass;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn distributed_greedy_matches_sequential_greedy() {
        let system = generate(&ScenarioConfig::small(10), 121);
        let config = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &config);
        let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
        let sequential = greedy_pass(&ctx, &order);
        let distributed = greedy_distributed(&ctx, &order);
        // The protocol computes the same argmax as the sequential loop, so
        // the results coincide (scores are generically tie-free).
        assert_eq!(distributed, sequential);
    }

    #[test]
    fn distributed_solve_is_feasible_and_profitable() {
        let system = generate(&ScenarioConfig::small(10), 122);
        let config = SolverConfig::fast();
        let (alloc, stats) = solve_distributed(&system, &config, 3);
        assert_eq!(stats.agents, system.num_clusters());
        assert!(stats.rounds >= 1);
        let violations = check_feasibility(&system, &alloc);
        assert!(
            violations.iter().all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })),
            "unexpected violations: {violations:?}"
        );
        alloc.assert_consistent(&system);
    }

    #[test]
    fn distributed_solve_quality_tracks_sequential_solve() {
        let system = generate(&ScenarioConfig::small(12), 123);
        let config = SolverConfig::fast();
        let (dist_alloc, _) = solve_distributed(&system, &config, 7);
        let seq = cloudalloc_core::solve(&system, &config, 7);
        let dist_profit = evaluate(&system, &dist_alloc).profit;
        // Operator interleaving differs (parallel rounds merge before the
        // global reassignment), so allow a modest gap in either direction.
        let scale = seq.report.profit.abs().max(1.0);
        assert!(
            (dist_profit - seq.report.profit) / scale > -0.2,
            "distributed {dist_profit} far below sequential {}",
            seq.report.profit
        );
    }

    #[test]
    fn improve_distributed_never_decreases_profit() {
        let system = generate(&ScenarioConfig::small(9), 124);
        let config = SolverConfig::fast();
        let ctx = SolverCtx::new(&system, &config);
        let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
        let mut alloc = greedy_distributed(&ctx, &order);
        let before = evaluate(&system, &alloc).profit;
        improve_distributed(&ctx, &mut alloc, 1);
        let after = evaluate(&system, &alloc).profit;
        assert!(after >= before - 1e-9, "profit dropped: {before} -> {after}");
    }
}
