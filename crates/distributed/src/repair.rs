//! Fault repair under the sharded solve.
//!
//! Mirrors the scatter–gather split of the greedy protocol: every cluster
//! agent repairs *its own* victims in parallel, with rescue moves
//! confined to its cluster (shard-local state only); the manager merges
//! the per-cluster views and then re-auctions the clients no shard could
//! rescue across the whole datacenter — the same central argmax step the
//! greedy construction uses. The shard phase is embarrassingly parallel
//! and deterministic, so the combined result does not depend on thread
//! scheduling.

use std::thread;

use cloudalloc_core::ops::{self, RepairStats};
use cloudalloc_core::{best_cluster, commit_scored, SolverCtx};
use cloudalloc_model::{Allocation, ClientId, ClusterId, ScoredAllocation, ServerId};
use cloudalloc_telemetry as telemetry;

use crate::merge::merge_cluster_allocations;

/// Repairs `alloc` in place after the servers in `failed` died, sharding
/// the work per cluster. Returns the combined stats (central re-auction
/// rescues are counted as `replaced`, not `shed`).
///
/// The context must be built on the *masked* system (see
/// [`CloudSystem::with_failed_servers`](cloudalloc_model::CloudSystem::with_failed_servers))
/// and `alloc` rebuilt against it, exactly as for the sequential
/// [`ops::repair_failed_servers`].
pub fn repair_distributed(
    ctx: &SolverCtx<'_>,
    alloc: &mut Allocation,
    failed: &[ServerId],
) -> RepairStats {
    let mut stats = RepairStats::default();
    if failed.is_empty() {
        return stats;
    }
    let _span = telemetry::span!("dist.repair");
    let system = ctx.system;
    let mut dead = vec![false; system.num_servers()];
    for &s in failed {
        dead[s.index()] = true;
    }
    // Victim set before any shard touches the allocation; the central
    // phase re-auctions whichever of these end up unplaced.
    let victims: Vec<ClientId> = (0..system.num_clients())
        .map(ClientId)
        .filter(|&c| alloc.placements(c).iter().any(|&(s, _)| dead[s.index()]))
        .collect();

    let shard_results: Vec<(Allocation, RepairStats)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..system.num_clusters())
            .map(|k| {
                let cluster = ClusterId(k);
                let agent_ctx = ctx;
                let base = alloc.clone();
                scope.spawn(move || {
                    let mut local = ScoredAllocation::lowered(&agent_ctx.compiled, base);
                    let shard_stats =
                        ops::repair_failed_servers_within(agent_ctx, &mut local, failed, cluster);
                    (local.into_allocation(), shard_stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("agent panicked")).collect()
    });
    let parts: Vec<Allocation> = shard_results.iter().map(|(a, _)| a.clone()).collect();
    for &(_, shard_stats) in &shard_results {
        stats.absorb(shard_stats);
    }
    // A victim shed by its shard has no cluster in that shard's part, so
    // the merge leaves it unassigned — exactly the set the central phase
    // re-auctions below.
    let merged = merge_cluster_allocations(system, &parts);

    let mut scored = ScoredAllocation::lowered(&ctx.compiled, merged);
    for &client in &victims {
        if !scored.alloc().placements(client).is_empty() {
            continue;
        }
        if let Some(cand) = best_cluster(ctx, scored.alloc(), client) {
            if cand.score > 0.0 || ctx.config.require_service {
                commit_scored(&mut scored, client, &cand);
                stats.shed -= 1;
                stats.replaced += 1;
                telemetry::counter!("dist.repair.rescued_centrally").incr();
            }
        }
    }
    *alloc = scored.into_allocation();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_core::{solve, SolverConfig};
    use cloudalloc_model::{check_feasibility, evaluate, CloudSystem, Violation};
    use cloudalloc_workload::{generate, ScenarioConfig};

    fn rebuild(system: &CloudSystem, alloc: &Allocation) -> Allocation {
        let mut fresh = Allocation::new(system);
        for i in 0..system.num_clients() {
            let client = ClientId(i);
            if let Some(cluster) = alloc.cluster_of(client) {
                fresh.assign_cluster(client, cluster);
                for &(server, placement) in alloc.placements(client) {
                    fresh.place(system, client, server, placement);
                }
            }
        }
        fresh
    }

    fn scenario(seed: u64) -> (CloudSystem, Allocation, Vec<ServerId>) {
        let system = generate(&ScenarioConfig::small(16), seed);
        let config = SolverConfig::fast();
        let alloc = solve(&system, &config, seed).allocation;
        let failed: Vec<ServerId> = alloc.active_servers().take(2).collect();
        (system, alloc, failed)
    }

    #[test]
    fn distributed_repair_clears_failed_servers_and_beats_naive_drop() {
        for seed in [3_u64, 23] {
            let (system, alloc, failed) = scenario(seed);
            assert!(!failed.is_empty());
            let masked = system.with_failed_servers(&failed);
            let config = SolverConfig::fast();
            let ctx = SolverCtx::new(&masked, &config);

            let mut naive = rebuild(&masked, &alloc);
            let mut dead = vec![false; masked.num_servers()];
            for &s in &failed {
                dead[s.index()] = true;
            }
            let mut victims = 0;
            for i in 0..masked.num_clients() {
                let client = ClientId(i);
                if naive.placements(client).iter().any(|&(s, _)| dead[s.index()]) {
                    naive.clear_client(&masked, client);
                    victims += 1;
                }
            }
            let naive_profit = evaluate(&masked, &naive).profit;

            let mut repaired = rebuild(&masked, &alloc);
            let stats = repair_distributed(&ctx, &mut repaired, &failed);
            assert_eq!(stats.victims, victims, "seed {seed}");
            let repaired_profit = evaluate(&masked, &repaired).profit;
            assert!(
                repaired_profit >= naive_profit - 1e-9,
                "seed {seed}: distributed repair {repaired_profit} < naive {naive_profit}"
            );
            for &s in &failed {
                assert!(repaired.residents(s).is_empty(), "mass left on {s}");
            }
            repaired.assert_consistent(&masked);
            assert!(check_feasibility(&masked, &repaired)
                .iter()
                .all(|v| matches!(v, Violation::Unassigned { .. })));
        }
    }

    #[test]
    fn distributed_repair_is_deterministic() {
        let (system, alloc, failed) = scenario(5);
        let masked = system.with_failed_servers(&failed);
        let config = SolverConfig::fast();
        let ctx = SolverCtx::new(&masked, &config);
        let run = || {
            let mut repaired = rebuild(&masked, &alloc);
            let stats = repair_distributed(&ctx, &mut repaired, &failed);
            (stats, repaired)
        };
        let (s1, a1) = run();
        let (s2, a2) = run();
        assert_eq!(s1, s2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn distributed_repair_tracks_the_sequential_repair() {
        // Same victims, same rescue economics — the sharded repair may
        // differ in exact moves (cluster-confined first pass) but must
        // land in the same profit neighbourhood as the sequential one.
        let (system, alloc, failed) = scenario(9);
        let masked = system.with_failed_servers(&failed);
        let config = SolverConfig::fast();
        let ctx = SolverCtx::new(&masked, &config);

        let mut sequential = ScoredAllocation::lowered(&ctx.compiled, rebuild(&masked, &alloc));
        ops::repair_failed_servers(&ctx, &mut sequential, &failed);
        let sequential_profit = sequential.profit();

        let mut sharded = rebuild(&masked, &alloc);
        repair_distributed(&ctx, &mut sharded, &failed);
        let sharded_profit = evaluate(&masked, &sharded).profit;

        let scale = sequential_profit.abs().max(1.0);
        assert!(
            (sharded_profit - sequential_profit) / scale > -0.25,
            "sharded repair {sharded_profit} fell far below sequential {sequential_profit}"
        );
    }
}
