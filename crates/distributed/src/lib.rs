//! Distributed decision making for the resource-allocation heuristic.
//!
//! The paper's central manager "parallelizes the solution and decreases
//! the decision time" by delegating to **local agents**, one per cluster.
//! This crate realizes that architecture with OS threads and channels:
//!
//! * the greedy construction runs as a **scatter–gather protocol**
//!   ([`greedy_distributed`]): for every client the manager broadcasts an
//!   `Evaluate` request, each agent answers with its cluster's best
//!   candidate (`Assign_Distribute` over its own servers only), and the
//!   manager commits the argmax — the same communication pattern as the
//!   paper's pseudo-code, with each agent touching only its own state;
//! * the cluster-local operators of the local search (share/dispersion
//!   re-balancing, server activation/shutdown) run **in parallel per
//!   cluster** ([`improve_distributed`]); only the inter-cluster
//!   reassignment is coordinated centrally.
//!
//! Results are bit-identical to the sequential solver when the candidate
//! scores are tie-free: the protocol computes the same argmax, just in
//! parallel. A thread-count-invariant parallel Monte-Carlo driver
//! ([`monte_carlo_parallel`]) makes the paper's 10,000-draw evaluation
//! budget practical on multicore hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;
mod parallel_mc;
mod protocol;
mod repair;

pub use merge::merge_cluster_allocations;
pub use parallel_mc::{monte_carlo_parallel, ParallelMcOutcome};
pub use protocol::{
    greedy_distributed, greedy_distributed_timed, improve_distributed, solve_distributed, DistStats,
};
pub use repair::repair_distributed;
