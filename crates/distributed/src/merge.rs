//! Merging per-cluster partial allocations into one global allocation.

use cloudalloc_model::{Allocation, ClientId, CloudSystem, ClusterId};

/// Merges per-cluster allocations into a single global one.
///
/// `parts[k]` is an allocation whose placements for clients assigned to
/// cluster `k` are authoritative; placements it may carry for other
/// clusters are ignored. Clients assigned to no part stay unassigned.
///
/// # Panics
///
/// Panics if `parts.len()` differs from the number of clusters, or two
/// parts claim the same client.
pub fn merge_cluster_allocations(system: &CloudSystem, parts: &[Allocation]) -> Allocation {
    assert_eq!(parts.len(), system.num_clusters(), "one part per cluster required");
    let mut merged = Allocation::new(system);
    for (k, part) in parts.iter().enumerate() {
        let cluster = ClusterId(k);
        for i in 0..system.num_clients() {
            let client = ClientId(i);
            if part.cluster_of(client) != Some(cluster) {
                continue;
            }
            assert!(merged.cluster_of(client).is_none(), "{client} claimed by two clusters");
            merged.assign_cluster(client, cluster);
            for &(server, placement) in part.placements(client) {
                merged.place(system, client, server, placement);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_core::{best_cluster, commit, SolverConfig, SolverCtx};
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn merging_disjoint_parts_reconstructs_the_whole() {
        let system = generate(&ScenarioConfig::small(8), 111);
        let config = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &config);
        // Build a sequential allocation, then split it per cluster.
        let mut whole = Allocation::new(&system);
        for i in 0..system.num_clients() {
            if let Some(c) = best_cluster(&ctx, &whole, ClientId(i)) {
                commit(&ctx, &mut whole, ClientId(i), &c);
            }
        }
        let parts: Vec<Allocation> = (0..system.num_clusters())
            .map(|k| {
                let mut part = Allocation::new(&system);
                for i in 0..system.num_clients() {
                    let client = ClientId(i);
                    if whole.cluster_of(client) == Some(ClusterId(k)) {
                        part.assign_cluster(client, ClusterId(k));
                        for &(server, p) in whole.placements(client) {
                            part.place(&system, client, server, p);
                        }
                    }
                }
                part
            })
            .collect();
        let merged = merge_cluster_allocations(&system, &parts);
        assert_eq!(merged, whole);
    }

    #[test]
    fn unclaimed_clients_stay_unassigned() {
        let system = generate(&ScenarioConfig::small(3), 112);
        let parts = vec![Allocation::new(&system); system.num_clusters()];
        let merged = merge_cluster_allocations(&system, &parts);
        for i in 0..system.num_clients() {
            assert_eq!(merged.cluster_of(ClientId(i)), None);
        }
    }

    #[test]
    #[should_panic(expected = "one part per cluster")]
    fn wrong_part_count_panics() {
        let system = generate(&ScenarioConfig::small(3), 113);
        let _ = merge_cluster_allocations(&system, &[Allocation::new(&system)]);
    }
}
