//! Parallel Monte-Carlo best-found search.
//!
//! The paper's evaluation draws ≥10,000 random solutions per scenario —
//! embarrassingly parallel work. This driver shards the draws across
//! threads while keeping the result **identical for any thread count**:
//! every iteration derives its own RNG from `(seed, iteration)` rather
//! than consuming a shared stream, and ties between equal-profit optima
//! break toward the lowest iteration index.

use rand::rngs::StdRng;
use rand::SeedableRng;

use cloudalloc_core::par::run_parallel;
use cloudalloc_core::{improve, random_assignment, SolverConfig, SolverCtx};
use cloudalloc_model::{evaluate, Allocation, ClientId, CloudSystem, ScoredAllocation};
use cloudalloc_telemetry as telemetry;

/// Outcome of the parallel search (mirrors the sequential
/// `cloudalloc_baselines::McOutcome`, with the iteration index of the
/// winner for reproducibility audits).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelMcOutcome {
    /// The best allocation found.
    pub best_allocation: Allocation,
    /// Its profit (after optional polishing).
    pub best_profit: f64,
    /// Iteration index that produced the winner.
    pub best_iteration: usize,
    /// Worst raw random profit seen.
    pub worst_raw_profit: f64,
    /// Worst polished profit seen.
    pub worst_polished_profit: f64,
}

/// One deterministic iteration: a random assignment polished by the
/// reassignment local search.
fn run_iteration(ctx: &SolverCtx<'_>, seed: u64, iteration: usize) -> (Allocation, f64, f64) {
    // SplitMix spreading keeps per-iteration streams independent.
    let mut z = seed ^ (iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut rng = StdRng::seed_from_u64(z ^ (z >> 31));
    let mut scored = ScoredAllocation::lowered(&ctx.compiled, random_assignment(ctx, &mut rng));
    let raw = scored.profit();
    let order: Vec<ClientId> = (0..ctx.system.num_clients()).map(ClientId).collect();
    for _ in 0..ctx.config.max_rounds {
        if !cloudalloc_core::ops::reassign_clients(ctx, &mut scored, &order) {
            break;
        }
        scored.commit();
    }
    let polished = scored.profit();
    (scored.into_allocation(), raw, polished)
}

/// Runs `iterations` Monte-Carlo draws across `threads` workers.
///
/// Results are identical for every `threads >= 1` (per-iteration seeding,
/// deterministic tie-breaks); wall-clock divides by the worker count on
/// parallel hardware.
///
/// # Panics
///
/// Panics if `iterations == 0`, `threads == 0`, or the solver config is
/// invalid.
pub fn monte_carlo_parallel(
    system: &CloudSystem,
    solver: &SolverConfig,
    iterations: usize,
    threads: usize,
    seed: u64,
    polish_best: bool,
) -> ParallelMcOutcome {
    assert!(iterations > 0, "need at least one iteration");
    assert!(threads > 0, "need at least one thread");
    let ctx = SolverCtx::new(system, solver);

    // Each worker owns a contiguous shard and reports its local extrema.
    struct Shard {
        best: Option<(f64, usize, Allocation)>,
        worst_raw: f64,
        worst_polished: f64,
    }
    // One job per shard on the solver's shared deterministic fan-out
    // primitive; shard `w` owns the strided iteration set `w, w+T, …`, so
    // the per-shard extrema — and the ordered reduction below — are a pure
    // function of `(iterations, threads, seed)`.
    let ctx = &ctx;
    let shards: Vec<Shard> = run_parallel(threads, threads, |w| {
        // Per-thread pass timing: one span per shard, plus a JSONL record
        // tying the worker index to its share.
        let _span = telemetry::span!("mc.shard");
        let mut shard =
            Shard { best: None, worst_raw: f64::INFINITY, worst_polished: f64::INFINITY };
        let mut done = 0u64;
        let mut idx = w;
        while idx < iterations {
            let _iter_span = telemetry::span!("mc.iteration");
            telemetry::counter!("mc.iterations").incr();
            let (alloc, raw, polished) = run_iteration(ctx, seed, idx);
            shard.worst_raw = shard.worst_raw.min(raw);
            shard.worst_polished = shard.worst_polished.min(polished);
            let better = match &shard.best {
                None => true,
                Some((p, i, _)) => polished > *p || (polished == *p && idx < *i),
            };
            if better {
                shard.best = Some((polished, idx, alloc));
            }
            done += 1;
            idx += threads;
        }
        telemetry::Event::new("mc_shard")
            .field_u64("worker", w as u64)
            .field_u64("iterations", done)
            .field_f64("best_profit", shard.best.as_ref().map_or(f64::NEG_INFINITY, |(p, _, _)| *p))
            .emit();
        shard
    });

    let mut best: Option<(f64, usize, Allocation)> = None;
    let mut worst_raw = f64::INFINITY;
    let mut worst_polished = f64::INFINITY;
    for shard in shards {
        worst_raw = worst_raw.min(shard.worst_raw);
        worst_polished = worst_polished.min(shard.worst_polished);
        if let Some((p, i, alloc)) = shard.best {
            let better = match &best {
                None => true,
                Some((bp, bi, _)) => p > *bp || (p == *bp && i < *bi),
            };
            if better {
                best = Some((p, i, alloc));
            }
        }
    }
    let (mut best_profit, best_iteration, mut best_allocation) = best.expect("iterations >= 1");

    if polish_best {
        improve(ctx, &mut best_allocation, seed.wrapping_add(0xBE57));
        best_profit = evaluate(system, &best_allocation).profit;
    }

    ParallelMcOutcome {
        best_allocation,
        best_profit,
        best_iteration,
        worst_raw_profit: worst_raw,
        worst_polished_profit: worst_polished,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn thread_count_does_not_change_the_result() {
        let system = generate(&ScenarioConfig::small(8), 171);
        let solver = SolverConfig::fast();
        let one = monte_carlo_parallel(&system, &solver, 12, 1, 9, false);
        let four = monte_carlo_parallel(&system, &solver, 12, 4, 9, false);
        assert_eq!(one.best_profit, four.best_profit);
        assert_eq!(one.best_iteration, four.best_iteration);
        assert_eq!(one.best_allocation, four.best_allocation);
        assert_eq!(one.worst_raw_profit, four.worst_raw_profit);
        assert_eq!(one.worst_polished_profit, four.worst_polished_profit);
    }

    #[test]
    fn ordering_invariants_hold() {
        let system = generate(&ScenarioConfig::small(8), 172);
        let out = monte_carlo_parallel(&system, &SolverConfig::fast(), 8, 2, 3, false);
        assert!(out.best_profit >= out.worst_polished_profit);
        assert!(out.worst_polished_profit >= out.worst_raw_profit - 1e-9);
        assert!(out.best_iteration < 8);
    }

    #[test]
    fn polishing_never_hurts() {
        let system = generate(&ScenarioConfig::small(6), 173);
        let raw = monte_carlo_parallel(&system, &SolverConfig::fast(), 5, 2, 1, false);
        let polished = monte_carlo_parallel(&system, &SolverConfig::fast(), 5, 2, 1, true);
        assert!(polished.best_profit >= raw.best_profit - 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let system = generate(&ScenarioConfig::small(3), 174);
        let _ = monte_carlo_parallel(&system, &SolverConfig::fast(), 1, 0, 0, false);
    }
}
