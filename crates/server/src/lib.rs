//! Allocation-as-a-service: a long-running admission server over the
//! solver stack.
//!
//! Three layers, separable for testing:
//!
//! - [`clock`]: the time seam. Latency accounting reads a [`Clock`];
//!   production uses [`WallClock`], harnesses pin [`LogicalClock`].
//! - [`engine`]: the single-threaded [`Engine`] state machine owning the
//!   served population, answering admit/depart/renegotiate from the
//!   incremental scorer, folding accepted ops into epochs and running
//!   the repair → shed → escalate path under faults. Directly drivable
//!   by tests — no sockets required.
//! - [`net`]: the zero-dependency TCP/JSONL transport funneling all
//!   connections into the engine through one totally ordered channel.
//!
//! The wire format lives in `cloudalloc-protocol`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod net;

pub use clock::{Clock, LogicalClock, WallClock};
pub use engine::{Engine, EngineConfig, EngineStats, Outcome};
pub use net::{serve, ServeOptions, ServeSummary};
