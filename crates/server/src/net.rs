//! The TCP/JSONL transport: an accept loop, per-connection reader
//! threads, and a single engine loop that owns all state.
//!
//! # Determinism seams
//!
//! All requests funnel through one mpsc channel into the engine loop, so
//! the engine processes a *total order* of inputs. Socket accept order
//! and cross-connection interleaving are the only nondeterminism left,
//! and both are pinned by the harness protocol: a scripted client waits
//! for each response before sending the next request, and the harness
//! connects sessions one at a time (each waits for `Welcome`). Under
//! that discipline the input order — and therefore every transcript
//! byte — is reproducible.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;

use cloudalloc_protocol::{decode_line, encode_line, ClientMessage, ServerMessage, WireError};

use crate::clock::Clock;
use crate::engine::{Engine, EngineStats};

/// Transport options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Serve exactly this many connections, then stop accepting and shut
    /// down once they close. `None` serves until the process dies —
    /// production mode.
    pub accept: Option<usize>,
}

/// What a completed serve run did.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Engine-side request/SLO accounting.
    pub stats: EngineStats,
    /// Final canonical profit of the served population.
    pub profit: f64,
    /// Served clients at shutdown.
    pub admitted: usize,
    /// Final epoch index.
    pub epoch: u64,
}

enum Input {
    Conn(u64, TcpStream),
    Line(u64, String),
    Gone(u64),
    AcceptDone,
}

/// Runs the serve loop on the calling thread until the accept budget is
/// exhausted and every connection has closed. Returns the summary and
/// the engine (so a harness can audit final state in-process).
pub fn serve(
    listener: TcpListener,
    mut engine: Engine,
    clock: Box<dyn Clock>,
    opts: ServeOptions,
) -> std::io::Result<(ServeSummary, Engine)> {
    let (tx, rx) = mpsc::channel::<Input>();
    let accept = opts.accept;
    let accept_tx = tx.clone();
    let accept_handle = thread::spawn(move || accept_loop(listener, accept, accept_tx));
    drop(tx);

    let mut writers: BTreeMap<u64, TcpStream> = BTreeMap::new();
    let mut subscribers: BTreeSet<u64> = BTreeSet::new();
    let mut accept_done = false;
    let mut connections = 0u64;
    let mut served_any = false;

    while let Ok(input) = rx.recv() {
        match input {
            Input::Conn(id, stream) => {
                connections += 1;
                served_any = true;
                let mut stream = stream;
                let _ = send(&mut stream, &engine.welcome());
                writers.insert(id, stream);
            }
            Input::Line(id, line) => match decode_line::<ClientMessage>(&line) {
                Err(WireError::Empty) => {}
                Err(err) => {
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = send(w, &ServerMessage::Error { req: 0, message: err.to_string() });
                    }
                }
                Ok(msg) => {
                    if matches!(msg, ClientMessage::Subscribe { .. }) {
                        subscribers.insert(id);
                    }
                    let bye = matches!(msg, ClientMessage::Bye { .. });
                    let outcome = engine.handle(&msg, clock.as_ref());
                    if let Some(w) = writers.get_mut(&id) {
                        let _ = send(w, &outcome.response);
                    }
                    for (log, op) in outcome.ops {
                        let delta = ServerMessage::Delta { log, op };
                        for &sid in subscribers.iter() {
                            if let Some(w) = writers.get_mut(&sid) {
                                let _ = send(w, &delta);
                            }
                        }
                    }
                    if bye {
                        writers.remove(&id);
                        subscribers.remove(&id);
                    }
                }
            },
            Input::Gone(id) => {
                writers.remove(&id);
                subscribers.remove(&id);
            }
            Input::AcceptDone => accept_done = true,
        }
        if accept_done && writers.is_empty() && (served_any || opts.accept == Some(0)) {
            break;
        }
    }
    drop(rx);
    let _ = accept_handle.join();

    let summary = ServeSummary {
        connections,
        stats: engine.stats(),
        profit: engine.profit(),
        admitted: engine.members().len(),
        epoch: engine.epoch(),
    };
    Ok((summary, engine))
}

fn accept_loop(listener: TcpListener, accept: Option<usize>, tx: mpsc::Sender<Input>) {
    let mut next_id = 0u64;
    loop {
        if let Some(limit) = accept {
            if next_id as usize >= limit {
                break;
            }
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => break,
        };
        let id = next_id;
        next_id += 1;
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => continue,
        };
        if tx.send(Input::Conn(id, stream)).is_err() {
            break;
        }
        let line_tx = tx.clone();
        thread::spawn(move || read_loop(id, reader, line_tx));
    }
    let _ = tx.send(Input::AcceptDone);
}

fn read_loop(id: u64, stream: TcpStream, tx: mpsc::Sender<Input>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            // EOF. A non-empty buffer here is a line truncated by a
            // mid-request disconnect; it is dropped — the peer that never
            // finished its request is in no position to read an answer.
            Ok(0) => break,
            Ok(_) => {
                if !line.ends_with('\n') {
                    break;
                }
                if tx.send(Input::Line(id, line.clone())).is_err() {
                    return;
                }
            }
            Err(_) => break,
        }
    }
    let _ = tx.send(Input::Gone(id));
}

fn send(stream: &mut TcpStream, msg: &ServerMessage) -> std::io::Result<()> {
    let mut line = encode_line(msg);
    line.push('\n');
    stream.write_all(line.as_bytes())
}
