//! The time seam: every latency the server measures (and therefore every
//! latency byte that reaches a transcript) comes from a [`Clock`], so a
//! test harness can pin time and make scripted sessions bit-reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone microsecond clock. The engine observes it a *fixed* number
/// of times per request kind, so a deterministic implementation yields
/// deterministic latencies.
pub trait Clock: Send + Sync {
    /// Microseconds since some fixed origin; must never decrease.
    fn now_us(&self) -> u64;
}

/// Production clock: microseconds of real elapsed time since creation.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Starts the clock at zero.
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// Deterministic clock: the n-th observation reads `n * step_us`. Two
/// runs that observe the clock in the same order (which the engine's
/// single-threaded request loop guarantees) see identical timestamps, so
/// every derived latency — and every transcript byte — is reproducible.
#[derive(Debug)]
pub struct LogicalClock {
    step_us: u64,
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A clock advancing `step_us` microseconds per observation.
    pub fn new(step_us: u64) -> Self {
        Self { step_us, ticks: AtomicU64::new(0) }
    }
}

impl Clock for LogicalClock {
    fn now_us(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed).wrapping_mul(self.step_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_deterministic() {
        let a = LogicalClock::new(3);
        assert_eq!((a.now_us(), a.now_us(), a.now_us()), (0, 3, 6));
        let b = LogicalClock::new(3);
        assert_eq!((b.now_us(), b.now_us(), b.now_us()), (0, 3, 6));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let t0 = c.now_us();
        let t1 = c.now_us();
        assert!(t1 >= t0);
    }
}
