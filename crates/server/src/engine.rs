//! The admission engine: a single-threaded state machine that owns the
//! served population and answers protocol requests.
//!
//! # State model
//!
//! The engine is started with a *universe*: a scenario file naming every
//! client that could ever ask for service. The *served population* is the
//! subset that asked and was admitted; it is materialized as a dense
//! [`CloudSystem`] (client ids renumbered `0..members.len()` via
//! [`CloudSystem::try_with_clients`]) so the whole solver stack — compiled
//! lowering, incremental scorer, operators — runs on it unchanged. The
//! protocol always speaks universe ids; the engine translates.
//!
//! # Decision rule
//!
//! Admission and renegotiation decisions come from the *incremental
//! scorer*: one [`best_cluster`] candidate search against the current
//! allocation, accepted iff the candidate's exact marginal profit is
//! positive — the same admission economics [`ops::shed_unprofitable`]
//! enforces in reverse. The profit *reported* to clients, however, is
//! always the canonical batch score ([`evaluate`]) of the served
//! population, so an external audit that re-scores the same population
//! matches the server's numbers exactly, not merely within the
//! incremental scorer's drift tolerance.
//!
//! # Determinism
//!
//! Everything the engine does is a pure function of (universe, config,
//! request sequence, clock observations). Time comes from the [`Clock`]
//! seam; every randomized choice inside a fold or escalation derives its
//! seed from the configured base seed and the epoch counter.

use cloudalloc_core::{best_cluster, commit_scored, ops, solve, SolverConfig, SolverCtx};
use cloudalloc_epoch::RepairPolicy;
use cloudalloc_model::{evaluate, Allocation, ClientId, CloudSystem, ScoredAllocation, ServerId};
use cloudalloc_protocol::{
    ClientMessage, LogPosition, ModelOp, RejectReason, ServerMessage, WirePlacement,
    PROTOCOL_VERSION,
};
use cloudalloc_telemetry as telemetry;
use cloudalloc_workload::{FaultEvent, FaultPlan};

use crate::clock::Clock;

/// Tunables of the admission engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Solver configuration used for candidate searches, folds, repairs
    /// and escalations.
    pub solver: SolverConfig,
    /// Escalation policy for the fault-repair path (same semantics as the
    /// epoch manager's).
    pub repair: RepairPolicy,
    /// Latency SLO for admission decisions, in microseconds.
    pub slo_us: u64,
    /// Fold the accepted ops into an epoch (re-optimize + shed sweep)
    /// after this many accepted mutations; `0` folds only on explicit
    /// [`ClientMessage::Tick`].
    pub epoch_every: u64,
    /// Base seed; fold and escalation seeds derive from it.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            solver: SolverConfig::fast(),
            repair: RepairPolicy::default(),
            slo_us: 50_000,
            epoch_every: 16,
            seed: 0,
        }
    }
}

/// Running request/SLO accounting, reported in the serve summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests handled (all kinds).
    pub requests: u64,
    /// Admits accepted.
    pub admitted: u64,
    /// Requests rejected (any reason).
    pub rejected: u64,
    /// Departures processed.
    pub departed: u64,
    /// Renegotiations accepted.
    pub renegotiated: u64,
    /// Clients shed by folds and repairs.
    pub shed: u64,
    /// Epoch folds completed.
    pub folds: u64,
    /// Decisions that missed the latency SLO.
    pub slo_misses: u64,
    /// Worst decision latency observed, in microseconds.
    pub max_latency_us: u64,
}

/// What one handled request produced: the direct response plus any op-log
/// entries to stream to subscribers.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The response to send to the requesting connection.
    pub response: ServerMessage,
    /// Op-log entries emitted while handling the request, in log order.
    pub ops: Vec<(LogPosition, ModelOp)>,
}

/// The admission engine. See the module docs for the state model.
pub struct Engine {
    universe: CloudSystem,
    /// Current `(rate_agreed, rate_predicted)` per universe client;
    /// diverges from the universe after renegotiations.
    rates: Vec<(f64, f64)>,
    /// Universe ids of served clients, in admission order (dense id =
    /// position).
    members: Vec<ClientId>,
    /// Universe id → dense id of served clients.
    dense_of: Vec<Option<usize>>,
    /// The served population as a dense system (unmasked; fault masking
    /// is applied on demand).
    population: CloudSystem,
    /// Decision state over `population` (dense ids). Derived aggregates
    /// are rebuilt via [`Allocation::replayed_onto`] wherever a freshly
    /// parameterized system is needed.
    alloc: Allocation,
    /// Per-server down flags maintained from fault events.
    down: Vec<bool>,
    /// Fault schedule folded in by epoch index, if any.
    plan: Option<FaultPlan>,
    epoch: u64,
    /// Accepted mutations since the last fold.
    mutations: u64,
    /// Next op-log position.
    log_pos: u64,
    /// Canonical (batch-scored) profit of the served population.
    profit: f64,
    config: EngineConfig,
    stats: EngineStats,
}

impl Engine {
    /// Creates an engine serving `universe` with an empty population.
    pub fn new(universe: CloudSystem, config: EngineConfig) -> Self {
        let rates = universe.clients().iter().map(|c| (c.rate_agreed, c.rate_predicted)).collect();
        let population =
            universe.try_with_clients(Vec::new()).expect("empty population is always valid");
        let alloc = Allocation::new(&population);
        let down = vec![false; universe.num_servers()];
        let dense_of = vec![None; universe.num_clients()];
        Self {
            universe,
            rates,
            members: Vec::new(),
            dense_of,
            population,
            alloc,
            down,
            plan: None,
            epoch: 0,
            mutations: 0,
            log_pos: 0,
            profit: 0.0,
            config,
            stats: EngineStats::default(),
        }
    }

    /// Installs a fault schedule: entering epoch `e` first applies the
    /// plan's records for `e`.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    // ------------------------------------------------------------------
    // Read accessors (used by the transport, the CLI and the harness)
    // ------------------------------------------------------------------

    /// Whether universe client `u` is currently served.
    pub fn is_admitted(&self, u: ClientId) -> bool {
        self.dense_of.get(u.index()).is_some_and(Option::is_some)
    }

    /// Universe ids of the served clients, in admission order.
    pub fn members(&self) -> &[ClientId] {
        &self.members
    }

    /// Canonical batch-scored profit of the served population.
    pub fn profit(&self) -> f64 {
        self.profit
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Request/SLO accounting so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The configured admission-latency SLO, in microseconds.
    pub fn config_slo_us(&self) -> u64 {
        self.config.slo_us
    }

    /// The served population as a dense system, with fault masking
    /// applied — exactly what the engine scores against.
    pub fn masked_population(&self) -> CloudSystem {
        self.population.with_failed_servers(&self.failed())
    }

    /// The engine's decision state over the dense population, with
    /// aggregates rebuilt against [`Engine::masked_population`].
    pub fn allocation(&self) -> Allocation {
        self.alloc.replayed_onto(&self.masked_population())
    }

    /// The first message of every connection.
    pub fn welcome(&self) -> ServerMessage {
        ServerMessage::Welcome {
            protocol: PROTOCOL_VERSION,
            clients: self.universe.num_clients() as u64,
            servers: self.universe.num_servers() as u64,
            epoch: self.epoch,
        }
    }

    // ------------------------------------------------------------------
    // Request dispatch
    // ------------------------------------------------------------------

    /// Handles one request. Single-threaded by construction: the caller
    /// (transport loop or test harness) serializes requests, which is
    /// what makes clock observations — and transcripts — deterministic.
    pub fn handle(&mut self, msg: &ClientMessage, clock: &dyn Clock) -> Outcome {
        let _span = telemetry::span!("serve.request");
        self.stats.requests += 1;
        match *msg {
            ClientMessage::Admit { req, client } => self.admit(req, client, clock),
            ClientMessage::Depart { req, client } => self.depart(req, client, clock),
            ClientMessage::Renegotiate { req, client, rate_agreed, rate_predicted } => {
                self.renegotiate(req, client, rate_agreed, rate_predicted, clock)
            }
            ClientMessage::Query { req } => Outcome {
                response: ServerMessage::State {
                    req,
                    epoch: self.epoch,
                    admitted: self.members.len() as u64,
                    profit: self.profit,
                    log: LogPosition(self.log_pos),
                },
                ops: Vec::new(),
            },
            ClientMessage::Subscribe { req } => Outcome {
                response: ServerMessage::Subscribed { req, log: LogPosition(self.log_pos) },
                ops: Vec::new(),
            },
            ClientMessage::Tick { req } => self.tick(req, clock),
            ClientMessage::Bye { req } => {
                Outcome { response: ServerMessage::Bye { req }, ops: Vec::new() }
            }
        }
    }

    fn admit(&mut self, req: u64, u: ClientId, clock: &dyn Clock) -> Outcome {
        let _span = telemetry::span!("serve.admit");
        let t0 = clock.now_us();
        if u.index() >= self.universe.num_clients() {
            return self.reject(req, u, RejectReason::UnknownClient, t0, clock);
        }
        if self.is_admitted(u) {
            return self.reject(req, u, RejectReason::AlreadyAdmitted, t0, clock);
        }

        // Grow the population by the applicant and ask the incremental
        // scorer for its best marginal placement.
        let dense = ClientId(self.members.len());
        let mut next_members = self.members.clone();
        next_members.push(u);
        let grown = self.build_population(&next_members);
        let masked = grown.with_failed_servers(&self.failed());
        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored =
            ScoredAllocation::lowered(&ctx.compiled, self.alloc.replayed_onto(&masked));
        let candidate = best_cluster(&ctx, scored.alloc(), dense);

        let Some(candidate) = candidate.filter(|c| c.score > 0.0) else {
            return self.reject(req, u, RejectReason::Unprofitable, t0, clock);
        };
        commit_scored(&mut scored, dense, &candidate);
        let cluster = candidate.cluster;
        let alloc = scored.into_allocation();
        let profit_before = self.profit;

        self.members = next_members;
        self.dense_of[u.index()] = Some(dense.index());
        self.population = grown;
        self.alloc = alloc;
        // Canonical profit: batch-score the *replayed* allocation, the
        // same computation any auditor reproduces from the public
        // accessors — so the reported number matches bit for bit.
        self.profit = self.canonical_profit();
        let profit = self.profit;
        self.stats.admitted += 1;
        telemetry::counter!("serve.admits").incr();

        let mut ops = vec![self.push_op(ModelOp::Admitted {
            client: u,
            cluster,
            placements: wire_placements(self.alloc.placements(dense)),
        })];
        ops.extend(self.after_mutation(clock));
        let (latency_us, slo_ok) = self.observe_latency(t0, clock);
        Outcome {
            response: ServerMessage::Admitted {
                req,
                client: u,
                cluster,
                profit,
                profit_delta: profit - profit_before,
                latency_us,
                slo_ok,
            },
            ops,
        }
    }

    fn depart(&mut self, req: u64, u: ClientId, clock: &dyn Clock) -> Outcome {
        let _span = telemetry::span!("serve.depart");
        let t0 = clock.now_us();
        if u.index() >= self.universe.num_clients() {
            return self.reject(req, u, RejectReason::UnknownClient, t0, clock);
        }
        if !self.is_admitted(u) {
            return self.reject(req, u, RejectReason::NotAdmitted, t0, clock);
        }

        self.remove_members(&[u]);
        self.profit = self.canonical_profit();
        self.stats.departed += 1;
        let mut ops = vec![self.push_op(ModelOp::Departed { client: u })];
        ops.extend(self.after_mutation(clock));
        let (latency_us, slo_ok) = self.observe_latency(t0, clock);
        Outcome {
            response: ServerMessage::Departed {
                req,
                client: u,
                profit: self.profit,
                latency_us,
                slo_ok,
            },
            ops,
        }
    }

    fn renegotiate(
        &mut self,
        req: u64,
        u: ClientId,
        rate_agreed: f64,
        rate_predicted: f64,
        clock: &dyn Clock,
    ) -> Outcome {
        let _span = telemetry::span!("serve.renegotiate");
        let t0 = clock.now_us();
        if u.index() >= self.universe.num_clients() {
            return self.reject(req, u, RejectReason::UnknownClient, t0, clock);
        }
        if !(rate_agreed.is_finite()
            && rate_agreed > 0.0
            && rate_predicted.is_finite()
            && rate_predicted > 0.0)
        {
            return self.reject(req, u, RejectReason::InvalidRates, t0, clock);
        }
        if !self.is_admitted(u) {
            return self.reject(req, u, RejectReason::NotAdmitted, t0, clock);
        }

        // Re-place the client from scratch under the proposed contract;
        // the old contract stays in force unless the new one carries a
        // positive marginal profit of its own.
        let dense = ClientId(self.dense_of[u.index()].expect("admitted"));
        let old_rates = self.rates[u.index()];
        self.rates[u.index()] = (rate_agreed, rate_predicted);
        let renegotiated = self.build_population(&self.members.clone());
        self.rates[u.index()] = old_rates;

        let masked = renegotiated.with_failed_servers(&self.failed());
        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored =
            ScoredAllocation::lowered(&ctx.compiled, self.alloc.replayed_onto(&masked));
        scored.clear_client(dense);
        let candidate = best_cluster(&ctx, scored.alloc(), dense);
        let Some(candidate) = candidate.filter(|c| c.score > 0.0) else {
            return self.reject(req, u, RejectReason::Unprofitable, t0, clock);
        };
        commit_scored(&mut scored, dense, &candidate);
        let cluster = candidate.cluster;
        let alloc = scored.into_allocation();
        let profit_before = self.profit;

        self.rates[u.index()] = (rate_agreed, rate_predicted);
        self.population = renegotiated;
        self.alloc = alloc;
        self.profit = self.canonical_profit();
        let profit = self.profit;
        self.stats.renegotiated += 1;
        telemetry::counter!("serve.renegotiations").incr();

        let mut ops = vec![
            self.push_op(ModelOp::Renegotiated { client: u, rate_agreed, rate_predicted }),
            self.push_op(ModelOp::Placements {
                client: u,
                cluster,
                placements: wire_placements(self.alloc.placements(dense)),
            }),
        ];
        ops.extend(self.after_mutation(clock));
        let (latency_us, slo_ok) = self.observe_latency(t0, clock);
        Outcome {
            response: ServerMessage::Renegotiated {
                req,
                client: u,
                profit,
                profit_delta: profit - profit_before,
                latency_us,
                slo_ok,
            },
            ops,
        }
    }

    fn tick(&mut self, req: u64, clock: &dyn Clock) -> Outcome {
        let t0 = clock.now_us();
        let (ops, shed) = self.fold();
        let (latency_us, slo_ok) = self.observe_latency(t0, clock);
        Outcome {
            response: ServerMessage::Ticked {
                req,
                epoch: self.epoch,
                profit: self.profit,
                shed,
                latency_us,
                slo_ok,
            },
            ops,
        }
    }

    fn reject(
        &mut self,
        req: u64,
        client: ClientId,
        reason: RejectReason,
        t0: u64,
        clock: &dyn Clock,
    ) -> Outcome {
        self.stats.rejected += 1;
        telemetry::counter!("serve.rejections").incr();
        let (latency_us, slo_ok) = self.observe_latency(t0, clock);
        Outcome {
            response: ServerMessage::Rejected { req, client, reason, latency_us, slo_ok },
            ops: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Epoch folds and faults
    // ------------------------------------------------------------------

    /// Applies fault events immediately (out of band of any plan): flips
    /// server availability, perturbs predicted rates, and runs the
    /// repair → shed → escalate path when a failure strands placements.
    /// Returns the emitted op-log entries.
    pub fn apply_faults(&mut self, events: &[FaultEvent]) -> Vec<(LogPosition, ModelOp)> {
        let mut ops = Vec::new();
        let mut newly_failed: Vec<ServerId> = Vec::new();
        let mut spiked_members: Vec<ClientId> = Vec::new();
        for event in events {
            match *event {
                FaultEvent::ServerFail { server } => {
                    if server.index() < self.down.len() && !self.down[server.index()] {
                        self.down[server.index()] = true;
                        newly_failed.push(server);
                        ops.push(self.push_op(ModelOp::ServerDown { server }));
                    }
                }
                FaultEvent::ServerRecover { server } => {
                    if server.index() < self.down.len() && self.down[server.index()] {
                        self.down[server.index()] = false;
                        ops.push(self.push_op(ModelOp::ServerUp { server }));
                    }
                }
                FaultEvent::RateSpike { client, factor } => {
                    if client.index() < self.rates.len() && factor.is_finite() && factor > 0.0 {
                        let (agreed, predicted) = self.rates[client.index()];
                        let spiked = predicted * factor;
                        if spiked.is_finite() && spiked > 0.0 {
                            self.rates[client.index()] = (agreed, spiked);
                            if self.is_admitted(client) {
                                self.population = self.build_population(&self.members.clone());
                                spiked_members.push(client);
                            }
                            ops.push(self.push_op(ModelOp::Renegotiated {
                                client,
                                rate_agreed: agreed,
                                rate_predicted: spiked,
                            }));
                        }
                    }
                }
            }
        }

        // A failure strands placements when a served client lives on the
        // dead server; decide before any re-seating shuffles dense ids.
        let stranded = newly_failed.iter().any(|&s| {
            self.members
                .iter()
                .enumerate()
                .any(|(d, _)| self.alloc.placements(ClientId(d)).iter().any(|&(srv, _)| srv == s))
        });

        // A spiked admitted client's stale placement may now be an
        // unstable queue (its arrival rate outgrew its GPS shares), which
        // violates a hard constraint — re-seat it under the new rate, or
        // shed it when no profitable seat exists.
        if !spiked_members.is_empty() {
            ops.extend(self.reseat(&spiked_members));
        }
        if stranded {
            ops.extend(self.repair());
        } else if !ops.is_empty() && spiked_members.is_empty() {
            // Even without stranded placements the masked population
            // changed (availability flips), so the canonical profit must
            // be re-scored. Re-seating and repair already did.
            self.profit = self.canonical_profit();
        }
        ops
    }

    /// Clears and freshly re-places the given (universe-id) members under
    /// the current rates, shedding any that no longer earn a profitable
    /// seat. Used after rate spikes, whose stale placements may violate
    /// stability.
    fn reseat(&mut self, members: &[ClientId]) -> Vec<(LogPosition, ModelOp)> {
        let masked = self.masked_population();
        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored =
            ScoredAllocation::lowered(&ctx.compiled, self.alloc.replayed_onto(&masked));
        for &u in members {
            let Some(dense) = self.dense_of[u.index()] else { continue };
            let dense = ClientId(dense);
            scored.clear_client(dense);
            if let Some(candidate) =
                best_cluster(&ctx, scored.alloc(), dense).filter(|c| c.score > 0.0)
            {
                commit_scored(&mut scored, dense, &candidate);
            }
            // No profitable seat: left cleared, so `adopt` sheds it.
        }
        self.adopt(scored.into_allocation())
    }

    /// The repair → shed → escalate state machine, mirroring the epoch
    /// manager's: incremental repair floored at the naive drop-the-victims
    /// baseline, escalating to bounded full re-solves when profit falls
    /// below the degradation threshold of the pre-fault profit.
    fn repair(&mut self) -> Vec<(LogPosition, ModelOp)> {
        let _span = telemetry::span!("serve.repair");
        telemetry::counter!("serve.repairs").incr();
        let reference = self.profit;
        let failed = self.failed();
        let masked = self.population.with_failed_servers(&failed);
        let stale = self.alloc.replayed_onto(&masked);

        // Naive baseline: drop every client that touches a dead server.
        let mut dead = vec![false; masked.num_servers()];
        for &s in &failed {
            dead[s.index()] = true;
        }
        let mut naive = stale.clone();
        for i in 0..masked.num_clients() {
            let client = ClientId(i);
            if naive.placements(client).iter().any(|&(s, _)| dead[s.index()]) {
                naive.clear_client(&masked, client);
            }
        }
        let naive_profit = evaluate(&masked, &naive).profit;

        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored = ScoredAllocation::lowered(&ctx.compiled, stale);
        ops::repair_failed_servers(&ctx, &mut scored, &failed);
        ops::shed_unprofitable(&ctx, &mut scored);
        let mut repaired = scored.into_allocation();
        let mut repaired_profit = evaluate(&masked, &repaired).profit;
        if repaired_profit < naive_profit {
            repaired = naive;
            repaired_profit = naive_profit;
        }

        let floor = self.config.repair.degradation_threshold * reference;
        if reference > 0.0 && repaired_profit < floor {
            telemetry::counter!("serve.repair.escalations").incr();
            let _esc = telemetry::span!("serve.repair.escalate");
            for retry in 0..=self.config.repair.max_resolve_retries {
                let result =
                    solve(&masked, &self.config.solver, self.escalation_seed(retry as u64));
                let profit = evaluate(&masked, &result.allocation).profit;
                if profit > repaired_profit {
                    repaired_profit = profit;
                    repaired = result.allocation;
                }
                if repaired_profit >= floor {
                    break;
                }
            }
        }
        self.adopt(repaired)
    }

    /// Folds the accepted ops into an epoch: applies the fault plan's
    /// records for the new epoch, re-optimizes the served population from
    /// a warm start, sheds what stopped being profitable, and streams the
    /// resulting deltas. Returns `(ops, clients shed)`.
    fn fold(&mut self) -> (Vec<(LogPosition, ModelOp)>, u64) {
        let _span = telemetry::span!("serve.fold");
        self.mutations = 0;
        self.stats.folds += 1;
        let shed_before = self.stats.shed;
        let mut ops = Vec::new();

        if let Some(plan) = self.plan.take() {
            let events: Vec<FaultEvent> =
                plan.events_at(self.epoch as usize).iter().map(|r| r.event).collect();
            ops.extend(self.apply_faults(&events));
            self.plan = Some(plan);
        }

        let masked = self.masked_population();
        let ctx = SolverCtx::new(&masked, &self.config.solver);
        let mut scored =
            ScoredAllocation::lowered(&ctx.compiled, self.alloc.replayed_onto(&masked));
        cloudalloc_core::improve_scored(&ctx, &mut scored, self.fold_seed());
        ops::shed_unprofitable(&ctx, &mut scored);
        ops.extend(self.adopt(scored.into_allocation()));

        self.epoch += 1;
        ops.push(self.push_op(ModelOp::Epoch { epoch: self.epoch, profit: self.profit }));
        telemetry::Event::new("serve.epoch")
            .field_u64("epoch", self.epoch)
            .field_u64("admitted", self.members.len() as u64)
            .field_f64("profit", self.profit)
            .emit();
        (ops, self.stats.shed - shed_before)
    }

    /// Installs a post-repair/post-fold allocation over the *current*
    /// population: emits `Placements` deltas for moved members, sheds
    /// members the new allocation no longer serves, and refreshes the
    /// canonical profit.
    fn adopt(&mut self, next: Allocation) -> Vec<(LogPosition, ModelOp)> {
        let mut moved: Vec<ModelOp> = Vec::new();
        let mut gone: Vec<ClientId> = Vec::new();
        for (d, &u) in self.members.iter().enumerate() {
            let dense = ClientId(d);
            let (old_p, new_p) = (self.alloc.placements(dense), next.placements(dense));
            if new_p.is_empty() {
                gone.push(u);
            } else if old_p != new_p || self.alloc.cluster_of(dense) != next.cluster_of(dense) {
                let cluster = next.cluster_of(dense).expect("placed clients are assigned");
                moved.push(ModelOp::Placements {
                    client: u,
                    cluster,
                    placements: wire_placements(new_p),
                });
            }
        }
        self.alloc = next;
        let mut ops: Vec<(LogPosition, ModelOp)> =
            moved.into_iter().map(|op| self.push_op(op)).collect();
        for &u in &gone {
            ops.push(self.push_op(ModelOp::Shed { client: u }));
            telemetry::counter!("serve.sheds").incr();
        }
        self.stats.shed += gone.len() as u64;
        if !gone.is_empty() {
            self.remove_members(&gone);
        }
        self.profit = self.canonical_profit();
        ops
    }

    fn after_mutation(&mut self, _clock: &dyn Clock) -> Vec<(LogPosition, ModelOp)> {
        self.mutations += 1;
        if self.config.epoch_every > 0 && self.mutations >= self.config.epoch_every {
            self.fold().0
        } else {
            Vec::new()
        }
    }

    // ------------------------------------------------------------------
    // Population plumbing
    // ------------------------------------------------------------------

    /// Builds the dense system for a membership list, applying the
    /// current (possibly renegotiated) rates.
    fn build_population(&self, members: &[ClientId]) -> CloudSystem {
        let clients = members
            .iter()
            .enumerate()
            .map(|(d, &u)| {
                let mut c = self.universe.client(u).clone();
                c.id = ClientId(d);
                (c.rate_agreed, c.rate_predicted) = self.rates[u.index()];
                c
            })
            .collect();
        self.universe
            .try_with_clients(clients)
            .expect("universe clients re-validate against their own catalog")
    }

    /// Removes members (universe ids), renumbering the dense population
    /// and carrying surviving placements over to their new dense ids.
    fn remove_members(&mut self, gone: &[ClientId]) {
        let survivors: Vec<ClientId> =
            self.members.iter().copied().filter(|u| !gone.contains(u)).collect();
        let next_population = self.build_population(&survivors);
        let mut next_alloc = Allocation::new(&next_population);
        for (new_d, &u) in survivors.iter().enumerate() {
            let old_d = ClientId(self.dense_of[u.index()].expect("member"));
            if let Some(cluster) = self.alloc.cluster_of(old_d) {
                next_alloc.assign_cluster(ClientId(new_d), cluster);
                for &(server, placement) in self.alloc.placements(old_d) {
                    next_alloc.place(&next_population, ClientId(new_d), server, placement);
                }
            }
        }
        for &u in gone {
            self.dense_of[u.index()] = None;
        }
        for (new_d, &u) in survivors.iter().enumerate() {
            self.dense_of[u.index()] = Some(new_d);
        }
        self.members = survivors;
        self.population = next_population;
        self.alloc = next_alloc;
    }

    /// The canonical batch score of the served population: `evaluate` on
    /// the masked dense system — the number an external re-score of the
    /// same population reproduces exactly.
    fn canonical_profit(&self) -> f64 {
        let masked = self.masked_population();
        evaluate(&masked, &self.alloc.replayed_onto(&masked)).profit
    }

    fn failed(&self) -> Vec<ServerId> {
        self.down.iter().enumerate().filter(|&(_, &d)| d).map(|(j, _)| ServerId(j)).collect()
    }

    fn observe_latency(&mut self, t0: u64, clock: &dyn Clock) -> (u64, bool) {
        let latency_us = clock.now_us().saturating_sub(t0);
        let slo_ok = latency_us <= self.config.slo_us;
        if !slo_ok {
            self.stats.slo_misses += 1;
            telemetry::counter!("serve.slo_misses").incr();
        }
        self.stats.max_latency_us = self.stats.max_latency_us.max(latency_us);
        telemetry::histogram!("serve.latency_us").record(latency_us);
        (latency_us, slo_ok)
    }

    fn push_op(&mut self, op: ModelOp) -> (LogPosition, ModelOp) {
        let pos = LogPosition(self.log_pos);
        self.log_pos += 1;
        (pos, op)
    }

    fn fold_seed(&self) -> u64 {
        (self.config.seed ^ 0x5E87_E5EE_D000_0000)
            .wrapping_add(self.epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn escalation_seed(&self, retry: u64) -> u64 {
        (self.config.seed ^ 0xFA17_5EED).wrapping_add(retry.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn wire_placements(placements: &[(ServerId, cloudalloc_model::Placement)]) -> Vec<WirePlacement> {
    placements
        .iter()
        .map(|&(server, p)| WirePlacement {
            server,
            alpha: p.alpha,
            phi_p: p.phi_p,
            phi_c: p.phi_c,
        })
        .collect()
}
