//! Wire protocol for the allocation-as-a-service front end.
//!
//! The transport is JSONL: one serde-encoded message per `\n`-terminated
//! line, in both directions. Clients speak [`ClientMessage`], the server
//! answers with [`ServerMessage`], and subscribed clients additionally
//! receive the server's op log — a totally ordered stream of [`ModelOp`]
//! deltas, each tagged with its [`LogPosition`] — so a mirror can fold
//! the ops and reconstruct the admitted population without polling.
//!
//! Design rules, in decreasing order of importance:
//!
//! 1. **Decoding never panics.** Malformed, truncated, or unknown input
//!    yields a typed [`WireError`]; the connection survives.
//! 2. **Forward compatibility.** Unknown *fields* in a known message are
//!    ignored (the serde shim reads declared fields by name and skips the
//!    rest), so an older peer tolerates a newer one's additions. Unknown
//!    *variants* are a hard [`WireError`] — a message the peer cannot
//!    represent must not be silently dropped.
//! 3. **Determinism.** Encoding is canonical: the same message value
//!    always produces the same bytes, so scripted-session transcripts can
//!    be compared byte-for-byte across runs and thread counts.
//!
//! Every request carries a client-chosen `req` correlation id, echoed in
//! the matching response; op-log [`ServerMessage::Delta`] records carry no
//! `req` because they are server-initiated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use cloudalloc_model::{ClientId, ClusterId, ServerId};
use serde::{Deserialize, Serialize};

/// Protocol revision carried in [`ServerMessage::Welcome`]; bump on any
/// change that is not a pure field addition.
pub const PROTOCOL_VERSION: u32 = 1;

/// Position of an op in the server's totally ordered op log. The first
/// op ever emitted has position 0; a subscriber that has folded position
/// `p` has seen `p + 1` ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogPosition(pub u64);

/// One client's placement on one server, as carried on the wire
/// (mirrors `cloudalloc_model::Placement` plus the server it lands on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirePlacement {
    /// Server the slice lives on.
    pub server: ServerId,
    /// Fraction of the client's traffic dispatched to this server.
    pub alpha: f64,
    /// Processing share held on the server.
    pub phi_p: f64,
    /// Communication share held on the server.
    pub phi_c: f64,
}

/// What a client may ask of the server. All ids are *universe* ids: the
/// dense client ids of the scenario file the server was started with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMessage {
    /// Ask to admit `client` into the served population. Answered with
    /// [`ServerMessage::Admitted`] or [`ServerMessage::Rejected`].
    Admit {
        /// Correlation id echoed in the response.
        req: u64,
        /// Universe id of the client asking for service.
        client: ClientId,
    },
    /// Withdraw `client` from the served population.
    Depart {
        /// Correlation id echoed in the response.
        req: u64,
        /// Universe id of the departing client.
        client: ClientId,
    },
    /// Propose a new contract for an admitted client. The server re-places
    /// the client under the new rates and accepts only if the new contract
    /// is profitable; on rejection the old contract stays in force.
    Renegotiate {
        /// Correlation id echoed in the response.
        req: u64,
        /// Universe id of the renegotiating client.
        client: ClientId,
        /// Proposed agreed (contract) arrival rate `λ̃`, `> 0`.
        rate_agreed: f64,
        /// Proposed predicted arrival rate `λ`, `> 0`.
        rate_predicted: f64,
    },
    /// Ask for a state snapshot ([`ServerMessage::State`]).
    Query {
        /// Correlation id echoed in the response.
        req: u64,
    },
    /// Start streaming op-log deltas to this connection.
    Subscribe {
        /// Correlation id echoed in the response.
        req: u64,
    },
    /// Force an epoch fold now (re-optimize + shed sweep). Primarily a
    /// test/ops seam; production folds fire on the `--epoch-every` cadence.
    Tick {
        /// Correlation id echoed in the response.
        req: u64,
    },
    /// Close the session; the server answers [`ServerMessage::Bye`] and
    /// drops the connection.
    Bye {
        /// Correlation id echoed in the response.
        req: u64,
    },
}

impl ClientMessage {
    /// The request's correlation id.
    pub fn req(&self) -> u64 {
        match *self {
            ClientMessage::Admit { req, .. }
            | ClientMessage::Depart { req, .. }
            | ClientMessage::Renegotiate { req, .. }
            | ClientMessage::Query { req }
            | ClientMessage::Subscribe { req }
            | ClientMessage::Tick { req }
            | ClientMessage::Bye { req } => req,
        }
    }
}

/// Why an admit/depart/renegotiate request was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The client id is outside the server's universe.
    UnknownClient,
    /// Admit for a client that is already served.
    AlreadyAdmitted,
    /// Depart/renegotiate for a client that is not currently served.
    NotAdmitted,
    /// Serving (or re-serving) the client at the offered contract would
    /// not increase profit.
    Unprofitable,
    /// A proposed rate was not positive and finite.
    InvalidRates,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::UnknownClient => "unknown client",
            RejectReason::AlreadyAdmitted => "already admitted",
            RejectReason::NotAdmitted => "not admitted",
            RejectReason::Unprofitable => "unprofitable",
            RejectReason::InvalidRates => "invalid rates",
        };
        f.write_str(s)
    }
}

/// One entry of the server's op log: the delta stream a subscriber folds
/// to mirror the served population. Ops reference universe client ids and
/// global server ids, so they stay meaningful across membership churn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelOp {
    /// `client` entered the served population with these placements.
    Admitted {
        /// Universe id of the admitted client.
        client: ClientId,
        /// Cluster the client was assigned to.
        cluster: ClusterId,
        /// The committed placements.
        placements: Vec<WirePlacement>,
    },
    /// `client` left the served population voluntarily.
    Departed {
        /// Universe id of the departed client.
        client: ClientId,
    },
    /// The server shed `client` (repair/fold found it unprofitable or
    /// unplaceable); it is no longer served and must re-admit to return.
    Shed {
        /// Universe id of the shed client.
        client: ClientId,
    },
    /// An admitted client's contract changed.
    Renegotiated {
        /// Universe id of the renegotiating client.
        client: ClientId,
        /// New agreed (contract) arrival rate.
        rate_agreed: f64,
        /// New predicted arrival rate.
        rate_predicted: f64,
    },
    /// An admitted client's placements moved (epoch fold or repair).
    Placements {
        /// Universe id of the re-placed client.
        client: ClientId,
        /// Cluster the client is now assigned to.
        cluster: ClusterId,
        /// The new placements.
        placements: Vec<WirePlacement>,
    },
    /// A server failed; stale placements on it earn nothing until repair.
    ServerDown {
        /// Global id of the failed server.
        server: ServerId,
    },
    /// A failed server recovered.
    ServerUp {
        /// Global id of the recovered server.
        server: ServerId,
    },
    /// An epoch fold completed; `profit` is the canonical batch-scored
    /// profit of the served population after the fold.
    Epoch {
        /// Index of the completed epoch.
        epoch: u64,
        /// Profit after the fold.
        profit: f64,
    },
}

/// What the server says. Responses echo the request's `req`; the op-log
/// [`ServerMessage::Delta`] stream is server-initiated and carries a
/// [`LogPosition`] instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMessage {
    /// First message on every connection.
    Welcome {
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u32,
        /// Number of clients in the server's universe (admissible ids are
        /// `0..clients`).
        clients: u64,
        /// Number of servers in the fleet.
        servers: u64,
        /// Current epoch index.
        epoch: u64,
    },
    /// Admit accepted; the client is now served.
    Admitted {
        /// Correlation id of the request.
        req: u64,
        /// Universe id of the admitted client.
        client: ClientId,
        /// Cluster the client was assigned to.
        cluster: ClusterId,
        /// Canonical profit of the served population after the admit.
        profit: f64,
        /// Profit change produced by the admit.
        profit_delta: f64,
        /// Decision latency in microseconds (see the clock seam).
        latency_us: u64,
        /// Whether the decision met the configured latency SLO.
        slo_ok: bool,
    },
    /// Admit/depart/renegotiate declined; state is unchanged.
    Rejected {
        /// Correlation id of the request.
        req: u64,
        /// Universe id of the client the request named.
        client: ClientId,
        /// Why the request was declined.
        reason: RejectReason,
        /// Decision latency in microseconds.
        latency_us: u64,
        /// Whether the decision met the configured latency SLO.
        slo_ok: bool,
    },
    /// Depart accepted; the client is no longer served.
    Departed {
        /// Correlation id of the request.
        req: u64,
        /// Universe id of the departed client.
        client: ClientId,
        /// Canonical profit after the departure.
        profit: f64,
        /// Decision latency in microseconds.
        latency_us: u64,
        /// Whether the decision met the configured latency SLO.
        slo_ok: bool,
    },
    /// Renegotiation accepted; the new contract is in force.
    Renegotiated {
        /// Correlation id of the request.
        req: u64,
        /// Universe id of the renegotiating client.
        client: ClientId,
        /// Canonical profit under the new contract.
        profit: f64,
        /// Profit change produced by the renegotiation.
        profit_delta: f64,
        /// Decision latency in microseconds.
        latency_us: u64,
        /// Whether the decision met the configured latency SLO.
        slo_ok: bool,
    },
    /// State snapshot answering [`ClientMessage::Query`].
    State {
        /// Correlation id of the request.
        req: u64,
        /// Current epoch index.
        epoch: u64,
        /// Number of currently served clients.
        admitted: u64,
        /// Canonical batch-scored profit of the served population.
        profit: f64,
        /// Next op-log position (ops emitted so far).
        log: LogPosition,
    },
    /// Subscription confirmed; deltas start at `log`.
    Subscribed {
        /// Correlation id of the request.
        req: u64,
        /// Next op-log position this connection will receive.
        log: LogPosition,
    },
    /// Epoch fold completed on request.
    Ticked {
        /// Correlation id of the request.
        req: u64,
        /// Epoch index after the fold.
        epoch: u64,
        /// Canonical profit after the fold.
        profit: f64,
        /// Clients shed by the fold.
        shed: u64,
        /// Fold latency in microseconds.
        latency_us: u64,
        /// Whether the fold met the configured latency SLO.
        slo_ok: bool,
    },
    /// One op-log entry, streamed to subscribed connections.
    Delta {
        /// Position of `op` in the server's op log.
        log: LogPosition,
        /// The op itself.
        op: ModelOp,
    },
    /// The request could not be understood (parse failure, or a request
    /// field outside its domain). `req` is 0 when the line did not parse
    /// far enough to recover a correlation id.
    Error {
        /// Correlation id of the offending request, or 0.
        req: u64,
        /// Human-readable description.
        message: String,
    },
    /// Session close acknowledgment.
    Bye {
        /// Correlation id of the request.
        req: u64,
    },
}

impl ServerMessage {
    /// The correlation id this message answers, if it answers one.
    pub fn req(&self) -> Option<u64> {
        match *self {
            ServerMessage::Admitted { req, .. }
            | ServerMessage::Rejected { req, .. }
            | ServerMessage::Departed { req, .. }
            | ServerMessage::Renegotiated { req, .. }
            | ServerMessage::State { req, .. }
            | ServerMessage::Subscribed { req, .. }
            | ServerMessage::Ticked { req, .. }
            | ServerMessage::Error { req, .. }
            | ServerMessage::Bye { req } => Some(req),
            ServerMessage::Welcome { .. } | ServerMessage::Delta { .. } => None,
        }
    }
}

/// Why a received line could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line was empty (or whitespace only).
    Empty,
    /// The line was not valid JSON, or valid JSON that does not match the
    /// expected message shape (unknown variant, wrong field type, ...).
    Malformed {
        /// The decoder's description of the failure.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Empty => f.write_str("empty line"),
            WireError::Malformed { detail } => write!(f, "malformed line: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one message as its canonical single-line JSON form (no
/// trailing newline — the transport appends exactly one `\n`).
pub fn encode_line<T: Serialize>(msg: &T) -> String {
    // The shim's encoder is infallible for the plain-data types this
    // protocol is built from (non-finite floats encode as `null`).
    serde_json::to_string(msg).expect("protocol messages always encode")
}

/// Decodes one received line (tolerating a trailing `\r`/`\n`) into a
/// message, returning a typed error — never panicking — on anything
/// malformed, truncated, or unrepresentable.
pub fn decode_line<T: Deserialize>(line: &str) -> Result<T, WireError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.trim().is_empty() {
        return Err(WireError::Empty);
    }
    serde_json::from_str(line).map_err(|e| WireError::Malformed { detail: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_single_line_and_round_trips() {
        let msg = ClientMessage::Renegotiate {
            req: 7,
            client: ClientId(3),
            rate_agreed: 2.5,
            rate_predicted: 2.25,
        };
        let line = encode_line(&msg);
        assert!(!line.contains('\n'));
        assert_eq!(decode_line::<ClientMessage>(&line).unwrap(), msg);
    }

    #[test]
    fn req_accessors_cover_every_variant() {
        assert_eq!(ClientMessage::Query { req: 9 }.req(), 9);
        assert_eq!(ServerMessage::Bye { req: 4 }.req(), Some(4));
        let delta = ServerMessage::Delta {
            log: LogPosition(0),
            op: ModelOp::Departed { client: ClientId(1) },
        };
        assert_eq!(delta.req(), None);
    }

    #[test]
    fn unknown_variant_is_a_typed_error() {
        let err = decode_line::<ClientMessage>(r#"{"Teleport":{"req":1}}"#).unwrap_err();
        assert!(matches!(err, WireError::Malformed { .. }));
    }

    #[test]
    fn empty_line_is_a_typed_error() {
        assert_eq!(decode_line::<ClientMessage>("  \r\n").unwrap_err(), WireError::Empty);
    }
}
