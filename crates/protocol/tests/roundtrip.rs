//! Property tests for the wire protocol: every message variant survives
//! encode→decode bit-for-bit, and no malformed/truncated input can make
//! the decoder panic — it must always return a typed [`WireError`].

use cloudalloc_model::{ClientId, ClusterId, ServerId};
use cloudalloc_protocol::{
    decode_line, encode_line, ClientMessage, LogPosition, ModelOp, RejectReason, ServerMessage,
    WireError, WirePlacement,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Raw material for one generated message: a variant selector plus a pool
/// of field values the builders below draw from. Floats come from bounded
/// ranges, so they are always finite — the shim's `float_roundtrip`
/// formatting makes finite f64s encode/decode exactly.
#[derive(Debug, Clone)]
struct Pool {
    variant: usize,
    a: u64,
    b: u64,
    x: f64,
    y: f64,
    placements: Vec<WirePlacement>,
}

fn pool(variants: usize) -> impl Strategy<Value = Pool> {
    let placement = (0u64..64, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(
        |(server, alpha, phi_p, phi_c)| WirePlacement {
            server: ServerId(server as usize),
            alpha,
            phi_p,
            phi_c,
        },
    );
    (0usize..variants, 0u64..1 << 48, 0u64..256, 0.001f64..1e6, 0.001f64..1e6, vec(placement, 0..4))
        .prop_map(|(variant, a, b, x, y, placements)| Pool { variant, a, b, x, y, placements })
}

fn client_message(p: &Pool) -> ClientMessage {
    let client = ClientId(p.b as usize);
    match p.variant {
        0 => ClientMessage::Admit { req: p.a, client },
        1 => ClientMessage::Depart { req: p.a, client },
        2 => ClientMessage::Renegotiate { req: p.a, client, rate_agreed: p.x, rate_predicted: p.y },
        3 => ClientMessage::Query { req: p.a },
        4 => ClientMessage::Subscribe { req: p.a },
        5 => ClientMessage::Tick { req: p.a },
        _ => ClientMessage::Bye { req: p.a },
    }
}

fn model_op(p: &Pool) -> ModelOp {
    let client = ClientId(p.b as usize);
    match p.variant {
        0 => ModelOp::Admitted {
            client,
            cluster: ClusterId((p.a % 8) as usize),
            placements: p.placements.clone(),
        },
        1 => ModelOp::Departed { client },
        2 => ModelOp::Shed { client },
        3 => ModelOp::Renegotiated { client, rate_agreed: p.x, rate_predicted: p.y },
        4 => ModelOp::Placements {
            client,
            cluster: ClusterId((p.a % 8) as usize),
            placements: p.placements.clone(),
        },
        5 => ModelOp::ServerDown { server: ServerId(p.b as usize) },
        6 => ModelOp::ServerUp { server: ServerId(p.b as usize) },
        _ => ModelOp::Epoch { epoch: p.a, profit: p.x },
    }
}

fn server_message(p: &Pool) -> ServerMessage {
    let client = ClientId(p.b as usize);
    let reasons = [
        RejectReason::UnknownClient,
        RejectReason::AlreadyAdmitted,
        RejectReason::NotAdmitted,
        RejectReason::Unprofitable,
        RejectReason::InvalidRates,
    ];
    match p.variant {
        0 => {
            ServerMessage::Welcome { protocol: p.a as u32, clients: p.b, servers: p.a, epoch: p.b }
        }
        1 => ServerMessage::Admitted {
            req: p.a,
            client,
            cluster: ClusterId((p.a % 8) as usize),
            profit: p.x,
            profit_delta: p.y,
            latency_us: p.a,
            slo_ok: p.b.is_multiple_of(2),
        },
        2 => ServerMessage::Rejected {
            req: p.a,
            client,
            reason: reasons[(p.a % reasons.len() as u64) as usize],
            latency_us: p.a,
            slo_ok: p.b.is_multiple_of(2),
        },
        3 => ServerMessage::Departed {
            req: p.a,
            client,
            profit: p.x,
            latency_us: p.a,
            slo_ok: p.b.is_multiple_of(2),
        },
        4 => ServerMessage::Renegotiated {
            req: p.a,
            client,
            profit: p.x,
            profit_delta: p.y,
            latency_us: p.a,
            slo_ok: p.b.is_multiple_of(2),
        },
        5 => ServerMessage::State {
            req: p.a,
            epoch: p.b,
            admitted: p.b,
            profit: p.x,
            log: LogPosition(p.a),
        },
        6 => ServerMessage::Subscribed { req: p.a, log: LogPosition(p.b) },
        7 => ServerMessage::Ticked {
            req: p.a,
            epoch: p.b,
            profit: p.x,
            shed: p.b,
            latency_us: p.a,
            slo_ok: p.b.is_multiple_of(2),
        },
        8 => ServerMessage::Delta {
            log: LogPosition(p.a),
            op: model_op(&Pool { variant: p.b as usize % 8, ..p.clone() }),
        },
        9 => ServerMessage::Error { req: p.a, message: format!("boom {}", p.b) },
        _ => ServerMessage::Bye { req: p.a },
    }
}

proptest! {
    /// Every `ClientMessage` survives serialize→parse bit-for-bit, and the
    /// canonical encoding is stable (re-encoding the decoded value yields
    /// the same bytes).
    fn client_message_round_trips(p in pool(7)) {
        let msg = client_message(&p);
        let line = encode_line(&msg);
        prop_assert!(!line.contains('\n'));
        let back: ClientMessage = decode_line(&line).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(encode_line(&back), line);
    }

    /// Every `ServerMessage` (including `Delta`-wrapped `ModelOp`s) survives
    /// serialize→parse bit-for-bit with a stable canonical encoding.
    fn server_message_round_trips(p in pool(11)) {
        let msg = server_message(&p);
        let line = encode_line(&msg);
        prop_assert!(!line.contains('\n'));
        let back: ServerMessage = decode_line(&line).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(encode_line(&back), line);
    }

    /// Every `ModelOp` survives a round trip on its own (subscribers fold
    /// ops straight off the wire).
    fn model_op_round_trips(p in pool(8)) {
        let op = model_op(&p);
        let line = encode_line(&op);
        let back: ModelOp = decode_line(&line).unwrap();
        prop_assert_eq!(back, op);
    }

    /// Truncating a valid encoded message at *any* byte boundary yields a
    /// typed error — never a panic, never a silently wrong parse.
    fn truncated_lines_error_not_panic(p in pool(11)) {
        let line = encode_line(&server_message(&p));
        for cut in 1..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let truncated = &line[..cut];
            match decode_line::<ServerMessage>(truncated) {
                Ok(parsed) => {
                    // A strict prefix of canonical JSON cannot itself be a
                    // complete canonical message.
                    prop_assert!(
                        false,
                        "truncated line {truncated:?} parsed as {parsed:?}"
                    );
                }
                Err(WireError::Empty) | Err(WireError::Malformed { .. }) => {}
            }
        }
    }

    /// Garbage bytes (valid UTF-8, arbitrary structure) always produce a
    /// typed error on both message types.
    fn garbage_lines_error_not_panic(bytes in vec(0u32..128, 0..40)) {
        let garbage: String = bytes.iter().filter_map(|&b| char::from_u32(b)).collect();
        if let Err(e) = decode_line::<ClientMessage>(&garbage) {
            let typed = matches!(e, WireError::Empty | WireError::Malformed { .. });
            prop_assert!(typed, "untyped client error for {garbage:?}");
        }
        if let Err(e) = decode_line::<ServerMessage>(&garbage) {
            let typed = matches!(e, WireError::Empty | WireError::Malformed { .. });
            prop_assert!(typed, "untyped server error for {garbage:?}");
        }
    }
}

/// Unknown *fields* inside a known variant are ignored: a newer server can
/// add fields without breaking older clients.
#[test]
fn unknown_fields_are_tolerated() {
    let line = r#"{"Admit":{"req":5,"client":2,"priority":"gold","hint":[1,2,3]}}"#;
    let msg: ClientMessage = decode_line(line).unwrap();
    assert_eq!(msg, ClientMessage::Admit { req: 5, client: ClientId(2) });

    let line = r#"{"Bye":{"req":9,"grace_ms":250}}"#;
    let msg: ServerMessage = decode_line(line).unwrap();
    assert_eq!(msg, ServerMessage::Bye { req: 9 });
}

/// Unknown *variants* are a hard typed error on every message type.
#[test]
fn unknown_variants_are_typed_errors() {
    for line in
        [r#"{"Teleport":{"req":1}}"#, r#"{"Admit":[1,2]}"#, r#"{"":{}}"#, r#"[1,2,3]"#, r#"42"#]
    {
        assert!(
            matches!(decode_line::<ClientMessage>(line), Err(WireError::Malformed { .. })),
            "expected Malformed for {line:?}"
        );
        assert!(
            matches!(decode_line::<ModelOp>(line), Err(WireError::Malformed { .. })),
            "expected Malformed for {line:?}"
        );
    }
}
