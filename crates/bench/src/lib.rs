//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §5); the functions here hold the common
//! logic — scenario sweeps, per-scenario normalization, aggregation —
//! so the binaries stay thin and the logic stays testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod diff;
mod figures;

pub use args::HarnessArgs;
pub use diff::{bench_diff, DiffOptions, DiffReport, Regression};
pub use figures::{figure4, figure5, run_scenario, Figure4Row, Figure5Row, ScenarioProfit};
