//! Minimal command-line parsing shared by the figure binaries (no extra
//! dependency: flags are few and fixed).

/// Common harness options.
///
/// Flags (all optional):
///
/// * `--scenarios N` — scenarios per sweep point (default 5; paper ≥ 20);
/// * `--mc N` — Monte-Carlo iterations per scenario (default 120; paper
///   ≥ 10,000);
/// * `--paper-scale` — shorthand for `--scenarios 20 --mc 10000`;
/// * `--quick` — tiny sweep (three points, 2 scenarios, 40 MC draws) for
///   smoke runs;
/// * `--seed N` — base seed (default 1);
/// * `--json PATH` — also write the aggregated rows as JSON;
/// * `--smoke` — CI smoke mode: a single tiny configuration exercising the
///   equivalence assertions (currently honoured by the `speedup` binary);
/// * `--deep` — extend the smoke run's scale tier to the million-client
///   row, solved under the memory budget (the budget-bounded deep tier;
///   no effect without `--smoke`, where the row already runs);
/// * `--telemetry-out PATH` — stream solver telemetry (spans, counters,
///   events) to `PATH` as JSONL. Requires a build with the `telemetry`
///   feature; otherwise the flag is accepted and a note is printed.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Scenarios per sweep point.
    pub scenarios: usize,
    /// Monte-Carlo iterations per scenario.
    pub mc_iterations: usize,
    /// Client counts on the x-axis.
    pub client_counts: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// CI smoke mode: tiny config, correctness assertions only.
    pub smoke: bool,
    /// Deep tier: include the million-client scale row in smoke runs.
    pub deep: bool,
    /// Optional telemetry JSONL output path.
    pub telemetry_out: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scenarios: 5,
            mc_iterations: 120,
            client_counts: cloudalloc_workload::paper_client_counts(),
            seed: 1,
            json: None,
            smoke: false,
            deep: false,
            telemetry_out: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`-style iterator contents.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut grab = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scenarios" => out.scenarios = grab("--scenarios").parse().expect("usize"),
                "--mc" => out.mc_iterations = grab("--mc").parse().expect("usize"),
                "--seed" => out.seed = grab("--seed").parse().expect("u64"),
                "--json" => out.json = Some(grab("--json")),
                "--paper-scale" => {
                    out.scenarios = 20;
                    out.mc_iterations = 10_000;
                }
                "--quick" => {
                    out.scenarios = 2;
                    out.mc_iterations = 40;
                    out.client_counts = vec![20, 60, 100];
                }
                "--smoke" => out.smoke = true,
                "--deep" => out.deep = true,
                "--telemetry-out" => out.telemetry_out = Some(grab("--telemetry-out")),
                other => panic!(
                    "unknown flag {other}; supported: --scenarios N, --mc N, --seed N, \
                     --json PATH, --paper-scale, --quick, --smoke, --deep, \
                     --telemetry-out PATH"
                ),
            }
        }
        out
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Arms the telemetry JSONL sink when `--telemetry-out` was passed.
    /// On builds without the `telemetry` feature, prints a note instead.
    ///
    /// # Panics
    ///
    /// Panics when the sink file cannot be created.
    pub fn init_telemetry(&self) {
        let Some(path) = &self.telemetry_out else { return };
        if cloudalloc_telemetry::ENABLED {
            cloudalloc_telemetry::init_jsonl(path).expect("writable telemetry path");
            // Flight-recorder memory timeline rides along with the spans.
            cloudalloc_telemetry::start_memory_sampler(std::time::Duration::from_millis(50));
        } else {
            eprintln!(
                "telemetry disabled at build time; rebuild with --features telemetry \
                 to capture {path}"
            );
        }
    }

    /// Flushes accumulated counters/histograms and closes the sink.
    pub fn finish_telemetry(&self) {
        let Some(path) = &self.telemetry_out else { return };
        if cloudalloc_telemetry::ENABLED {
            cloudalloc_telemetry::stop_memory_sampler();
            cloudalloc_telemetry::flush_metrics();
            cloudalloc_telemetry::close_sink();
            eprintln!("telemetry written to {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_modest() {
        let a = parse(&[]);
        assert_eq!(a.scenarios, 5);
        assert_eq!(a.mc_iterations, 120);
        assert_eq!(a.client_counts, vec![20, 40, 60, 80, 100, 150, 200]);
    }

    #[test]
    fn paper_scale_matches_section_vi() {
        let a = parse(&["--paper-scale"]);
        assert_eq!(a.scenarios, 20);
        assert_eq!(a.mc_iterations, 10_000);
    }

    #[test]
    fn quick_shrinks_the_sweep() {
        let a = parse(&["--quick"]);
        assert_eq!(a.client_counts, vec![20, 60, 100]);
        assert_eq!(a.scenarios, 2);
    }

    #[test]
    fn explicit_values_override() {
        let a = parse(&["--quick", "--scenarios", "9", "--seed", "7", "--json", "out.json"]);
        assert_eq!(a.scenarios, 9);
        assert_eq!(a.seed, 7);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert!(!a.smoke);
    }

    #[test]
    fn smoke_flag_is_recognized() {
        assert!(parse(&["--smoke"]).smoke);
    }

    #[test]
    fn deep_flag_is_recognized() {
        assert!(parse(&["--smoke", "--deep"]).deep);
        assert!(!parse(&["--smoke"]).deep);
    }

    #[test]
    fn telemetry_out_takes_a_path() {
        let a = parse(&["--telemetry-out", "spans.jsonl"]);
        assert_eq!(a.telemetry_out.as_deref(), Some("spans.jsonl"));
        assert_eq!(parse(&[]).telemetry_out, None);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flags_panic() {
        parse(&["--bogus"]);
    }
}
