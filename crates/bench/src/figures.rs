//! Figure-4 and Figure-5 sweeps: run the three solution methods on every
//! scenario, normalize per scenario by the best solution found, and
//! aggregate per sweep point.

use serde::{Deserialize, Serialize};

use cloudalloc_baselines::{modified_ps, monte_carlo, McConfig, PsConfig};
use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_metrics::OnlineStats;
use cloudalloc_workload::{generate, scenario_seeds, ScenarioConfig};

use crate::HarnessArgs;

/// Profit floor below which a scenario is treated as degenerate for
/// normalization: a healthy scenario earns on the order of one money
/// unit per client (utility intercepts are U(1,3)), so anything below
/// 5% of that is break-even noise where profit *ratios* are meaningless.
pub fn degenerate_threshold(num_clients: usize) -> f64 {
    0.05 * num_clients as f64
}

/// Raw profits of one scenario under every method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioProfit {
    /// Scenario seed.
    pub seed: u64,
    /// Profit of the proposed `Resource_Alloc` heuristic.
    pub proposed: f64,
    /// Profit of the best greedy initial solution (before local search).
    pub initial: f64,
    /// Profit of the modified Proportional-Share baseline.
    pub modified_ps: f64,
    /// Best profit found by the Monte-Carlo search.
    pub mc_best: f64,
    /// Worst raw random assignment seen by the Monte-Carlo search.
    pub mc_worst_raw: f64,
    /// Worst polished (local-searched) random assignment.
    pub mc_worst_polished: f64,
}

impl ScenarioProfit {
    /// The per-scenario normalizer: the best solution found by *any*
    /// method (the paper normalizes by the Monte-Carlo best; taking the
    /// max keeps every normalized value ≤ 1 even when the heuristic beats
    /// the sampled optimum).
    pub fn best_found(&self) -> f64 {
        self.proposed.max(self.modified_ps).max(self.mc_best)
    }
}

/// Runs all methods on one scenario.
pub fn run_scenario(num_clients: usize, seed: u64, mc_iterations: usize) -> ScenarioProfit {
    let system = generate(&ScenarioConfig::paper(num_clients), seed);
    // The paper's constraint (6) serves every client; enforce it for all
    // methods so the comparison isolates allocation quality from
    // admission policy.
    let solver = SolverConfig { require_service: true, ..Default::default() };
    let result = solve(&system, &solver, seed);
    let ps = cloudalloc_model::evaluate(&system, &modified_ps(&system, &PsConfig::default()));
    let mc = monte_carlo(
        &system,
        &McConfig { iterations: mc_iterations, solver: solver.clone(), polish_best: true },
        seed ^ 0xC0FFEE,
    );
    ScenarioProfit {
        seed,
        proposed: result.report.profit,
        initial: result.initial_profit,
        modified_ps: ps.profit,
        mc_best: mc.best_profit,
        mc_worst_raw: mc.worst_raw_profit,
        mc_worst_polished: mc.worst_polished_profit,
    }
}

/// One aggregated row of Figure 4 (normalized total profit vs clients).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Number of clients (x-axis).
    pub clients: usize,
    /// Mean normalized profit of the proposed heuristic.
    pub proposed: f64,
    /// Mean normalized profit of the modified PS baseline.
    pub modified_ps: f64,
    /// Mean normalized profit of the Monte-Carlo best (≤ 1 by
    /// construction; 1.0 whenever MC finds the overall best).
    pub best_found: f64,
    /// Scenarios aggregated (scenarios with non-positive normalizers are
    /// skipped, as normalization is meaningless there).
    pub scenarios: usize,
}

/// One aggregated row of Figure 5 (robustness of the initial solution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure5Row {
    /// Number of clients (x-axis).
    pub clients: usize,
    /// Worst raw random assignment (normalized), min over scenarios.
    pub worst_initial_raw: f64,
    /// Worst random assignment after the local search, min over scenarios.
    pub worst_initial_optimized: f64,
    /// Worst proposed-solution profit (normalized), min over scenarios.
    pub worst_proposed: f64,
    /// Best found (normalized ≡ 1 whenever any scenario qualifies).
    pub best_found: f64,
    /// Scenarios aggregated.
    pub scenarios: usize,
}

/// Collects the per-scenario profits of a full sweep.
fn sweep(args: &HarnessArgs) -> Vec<(usize, Vec<ScenarioProfit>)> {
    args.client_counts
        .iter()
        .map(|&n| {
            let profits = scenario_seeds(args.seed, n, args.scenarios)
                .into_iter()
                .map(|seed| run_scenario(n, seed, args.mc_iterations))
                .collect();
            (n, profits)
        })
        .collect()
}

/// Regenerates Figure 4.
pub fn figure4(args: &HarnessArgs) -> Vec<Figure4Row> {
    sweep(args)
        .into_iter()
        .map(|(clients, profits)| {
            let mut proposed = OnlineStats::new();
            let mut ps = OnlineStats::new();
            let mut best = OnlineStats::new();
            for p in &profits {
                let norm = p.best_found();
                // Scenarios near break-even are degenerate for ratio
                // purposes; skip them (the row reports how many remain).
                if norm <= degenerate_threshold(clients) {
                    continue;
                }
                proposed.push(p.proposed / norm);
                ps.push(p.modified_ps / norm);
                best.push(p.mc_best / norm);
            }
            Figure4Row {
                clients,
                proposed: proposed.mean(),
                modified_ps: ps.mean(),
                best_found: best.mean(),
                scenarios: proposed.count() as usize,
            }
        })
        .collect()
}

/// Regenerates Figure 5.
pub fn figure5(args: &HarnessArgs) -> Vec<Figure5Row> {
    sweep(args)
        .into_iter()
        .map(|(clients, profits)| {
            let mut raw = OnlineStats::new();
            let mut polished = OnlineStats::new();
            let mut proposed = OnlineStats::new();
            for p in &profits {
                let norm = p.best_found();
                if norm <= degenerate_threshold(clients) {
                    continue;
                }
                raw.push(p.mc_worst_raw / norm);
                polished.push(p.mc_worst_polished / norm);
                proposed.push(p.proposed / norm);
            }
            Figure5Row {
                clients,
                worst_initial_raw: raw.min(),
                worst_initial_optimized: polished.min(),
                worst_proposed: proposed.min(),
                best_found: if proposed.count() > 0 { 1.0 } else { f64::NAN },
                scenarios: proposed.count() as usize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            scenarios: 1,
            mc_iterations: 10,
            client_counts: vec![10],
            seed: 5,
            json: None,
            smoke: false,
            deep: false,
            telemetry_out: None,
        }
    }

    #[test]
    fn figure4_rows_are_normalized() {
        let rows = figure4(&tiny_args());
        assert_eq!(rows.len(), 1);
        let row = rows[0];
        assert_eq!(row.clients, 10);
        assert!(row.scenarios >= 1);
        assert!(row.proposed > 0.0 && row.proposed <= 1.0 + 1e-9);
        assert!(row.modified_ps <= 1.0 + 1e-9);
        assert!(row.best_found > 0.0 && row.best_found <= 1.0 + 1e-9);
    }

    #[test]
    fn figure5_orderings_hold() {
        let rows = figure5(&tiny_args());
        let row = rows[0];
        assert!(row.worst_initial_raw <= row.worst_initial_optimized + 1e-9);
        assert!(row.worst_initial_optimized <= row.best_found + 1e-9);
        assert!(row.worst_proposed <= row.best_found + 1e-9);
        assert_eq!(row.best_found, 1.0);
    }

    #[test]
    fn degenerate_threshold_scales_with_system_size() {
        assert!(degenerate_threshold(20) < degenerate_threshold(200));
        assert!((degenerate_threshold(100) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_profit_normalizer_is_the_max() {
        let p = ScenarioProfit {
            seed: 0,
            proposed: 5.0,
            initial: 4.0,
            modified_ps: 3.0,
            mc_best: 4.5,
            mc_worst_raw: 1.0,
            mc_worst_polished: 2.0,
        };
        assert_eq!(p.best_found(), 5.0);
    }
}
