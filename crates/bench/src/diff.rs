//! Noise-aware comparison of two `BENCH_speedup.json` artifacts — the
//! perf-regression gate behind the `bench-diff` binary.
//!
//! Rows are matched section-by-section on their configuration key
//! (seed, client count, thread count, …), then compared field-by-field
//! under per-field rules chosen for how each quantity behaves across
//! machines:
//!
//! * **profits** (and other deterministic outputs like `gap` and repair
//!   `victims`) must match *exactly* — the solver is bit-deterministic,
//!   so any drift is a correctness regression, not noise;
//! * **speedup ratios** get a one-sided relative tolerance: only a drop
//!   below `base × (1 − tolerance)` is a regression (faster is fine);
//! * **overhead ratios** (telemetry recording cost) get a one-sided
//!   absolute slack — they sit near zero, where relative bands are
//!   meaningless;
//! * **raw seconds, byte counts and core counts** are machine-dependent
//!   and never gate; they are reported for context only.
//!
//! Unmatched rows and sections (a smoke run covers a subset of the
//! committed full-run baseline) are counted and reported, never fatal —
//! the gate only fails on rows both files actually measured.

use serde::{Error as SerdeError, Value};

/// Tolerances for the noisy field classes.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative slack for `speedup` fields: a current value below
    /// `base × (1 − tolerance)` is a regression.
    pub tolerance: f64,
    /// Absolute slack for `*overhead*` fields: a current value above
    /// `base + overhead_slack` is a regression.
    pub overhead_slack: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // Speedup measurements on shared CI runners jitter by tens of
        // percent; 0.35 keeps the gate quiet on noise while still
        // catching a halved speedup. Overheads are ratios near zero.
        Self { tolerance: 0.35, overhead_slack: 0.10 }
    }
}

/// One gating failure.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Section name (`scoring`, `restarts`, …).
    pub section: String,
    /// Rendered row key, e.g. `seed=1 clients=80`.
    pub key: String,
    /// Field that regressed.
    pub field: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Which rule tripped.
    pub rule: &'static str,
}

/// The outcome of a comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Gating failures; empty means the gate passes.
    pub regressions: Vec<Regression>,
    /// Matched rows that were compared.
    pub compared_rows: usize,
    /// Gating fields that were checked across those rows.
    pub compared_fields: usize,
    /// Rows/sections present in only one file (non-fatal), rendered.
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// True when any gating rule tripped.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench-diff: {} rows compared, {} gating fields checked, {} unmatched, \
             {} regressions\n",
            self.compared_rows,
            self.compared_fields,
            self.unmatched.len(),
            self.regressions.len()
        );
        for u in &self.unmatched {
            out.push_str(&format!("  unmatched (not gated): {u}\n"));
        }
        if !self.regressions.is_empty() {
            let mut table = cloudalloc_metrics::Table::new(vec![
                "section".into(),
                "row".into(),
                "field".into(),
                "baseline".into(),
                "current".into(),
                "rule".into(),
            ]);
            for r in &self.regressions {
                table.row(vec![
                    r.section.clone(),
                    r.key.clone(),
                    r.field.clone(),
                    format!("{:.6}", r.base),
                    format!("{:.6}", r.current),
                    r.rule.into(),
                ]);
            }
            out.push_str(&table.to_string());
        }
        out
    }
}

/// How one field participates in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldKind {
    /// Part of the row-matching key (configuration, not measurement).
    Key,
    /// Deterministic output: must match exactly.
    Exact,
    /// Speedup ratio: one-sided relative tolerance.
    Ratio,
    /// Overhead ratio near zero: one-sided absolute slack.
    Overhead,
    /// Machine-dependent or unknown: reported context, never gates.
    Info,
}

fn classify(name: &str) -> FieldKind {
    const KEYS: &[&str] = &[
        "seed",
        "clients",
        "servers",
        "steps",
        "threads",
        "clusters",
        "groups",
        "searches",
        "granularity",
        "failed_servers",
    ];
    if KEYS.contains(&name) {
        FieldKind::Key
    } else if name.ends_with("_profit") || name == "gap" || name == "victims" {
        FieldKind::Exact
    } else if name == "speedup" {
        FieldKind::Ratio
    } else if name.contains("overhead") {
        FieldKind::Overhead
    } else {
        // _seconds, _bytes, available_cores — and whatever fields future
        // harness versions add.
        FieldKind::Info
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// A row's identity: its key fields, sorted by name so field order in
/// the JSON never matters.
fn row_key(row: &Value) -> Result<String, SerdeError> {
    let mut parts: Vec<String> = row
        .as_map()?
        .iter()
        .filter(|(name, _)| classify(name) == FieldKind::Key)
        .filter_map(|(name, v)| as_f64(v).map(|x| (name.clone(), x)))
        .map(|(name, x)| format!("{name}={x}"))
        .collect();
    parts.sort();
    Ok(parts.join(" "))
}

fn compare_row(
    section: &str,
    key: &str,
    base: &Value,
    cur: &Value,
    opts: &DiffOptions,
    report: &mut DiffReport,
) -> Result<(), SerdeError> {
    for (field, base_v) in base.as_map()? {
        let kind = classify(field);
        if matches!(kind, FieldKind::Key | FieldKind::Info) {
            continue;
        }
        let Some(base_x) = as_f64(base_v) else { continue };
        let cur_v = match cur.field(field) {
            Ok(v) => v,
            Err(_) => {
                report.unmatched.push(format!("{section} [{key}]: field {field} absent"));
                continue;
            }
        };
        let Some(cur_x) = as_f64(cur_v) else { continue };
        report.compared_fields += 1;
        let failed = match kind {
            FieldKind::Exact => (base_x != cur_x, "exact (deterministic output)"),
            FieldKind::Ratio => {
                (cur_x < base_x * (1.0 - opts.tolerance), "speedup below tolerance band")
            }
            FieldKind::Overhead => {
                (cur_x > base_x + opts.overhead_slack, "overhead above slack band")
            }
            FieldKind::Key | FieldKind::Info => unreachable!("filtered above"),
        };
        if failed.0 {
            report.regressions.push(Regression {
                section: section.to_string(),
                key: key.to_string(),
                field: field.clone(),
                base: base_x,
                current: cur_x,
                rule: failed.1,
            });
        }
    }
    Ok(())
}

/// Compares two parsed `BENCH_speedup.json` documents.
///
/// # Errors
///
/// Fails when either document is not an object of row arrays.
pub fn bench_diff(base: &Value, cur: &Value, opts: &DiffOptions) -> Result<DiffReport, SerdeError> {
    let mut report = DiffReport::default();
    for (section, base_rows) in base.as_map()? {
        let cur_rows = match cur.field(section) {
            Ok(v) => v,
            Err(_) => {
                if !base_rows.as_seq()?.is_empty() {
                    report.unmatched.push(format!("section {section} absent from current"));
                }
                continue;
            }
        };
        let cur_rows = cur_rows.as_seq()?;
        let mut cur_claimed = vec![false; cur_rows.len()];
        for base_row in base_rows.as_seq()? {
            let key = row_key(base_row)?;
            let mut hit = None;
            for (i, cur_row) in cur_rows.iter().enumerate() {
                if !cur_claimed[i] && row_key(cur_row)? == key {
                    hit = Some(i);
                    break;
                }
            }
            match hit {
                Some(i) => {
                    cur_claimed[i] = true;
                    report.compared_rows += 1;
                    compare_row(section, &key, base_row, &cur_rows[i], opts, &mut report)?;
                }
                None => report.unmatched.push(format!("{section} [{key}]: baseline-only row")),
            }
        }
        for (i, claimed) in cur_claimed.iter().enumerate() {
            if !claimed {
                report
                    .unmatched
                    .push(format!("{section} [{}]: current-only row", row_key(&cur_rows[i])?));
            }
        }
    }
    for (section, cur_rows) in cur.as_map()? {
        if base.field(section).is_err() && !cur_rows.as_seq()?.is_empty() {
            report.unmatched.push(format!("section {section} absent from baseline"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    const BASE: &str = r#"{
        "scoring": [
            {"seed": 1, "clients": 80, "servers": 208, "steps": 4000,
             "full_seconds": 0.004, "incremental_seconds": 0.0005,
             "speedup": 8.0, "full_profit": -208.5, "incremental_profit": -208.5}
        ],
        "telemetry_overhead": [
            {"seed": 1, "clients": 200, "recording_seconds": 0.2,
             "suppressed_seconds": 0.19, "overhead": 0.05,
             "recording_profit": 10.0, "suppressed_profit": 10.0}
        ]
    }"#;

    #[test]
    fn identical_files_pass() {
        let report = bench_diff(&doc(BASE), &doc(BASE), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());
        assert_eq!(report.compared_rows, 2);
        assert!(report.unmatched.is_empty(), "{:?}", report.unmatched);
    }

    #[test]
    fn noise_within_the_band_passes_but_a_halved_speedup_fails() {
        // 15% slower is runner jitter…
        let noisy = BASE.replace("\"speedup\": 8.0", "\"speedup\": 6.8");
        let report = bench_diff(&doc(BASE), &doc(&noisy), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());

        // …a halving is the injected synthetic regression the gate exists
        // to catch.
        let regressed = BASE.replace("\"speedup\": 8.0", "\"speedup\": 4.0");
        let report = bench_diff(&doc(BASE), &doc(&regressed), &DiffOptions::default()).unwrap();
        assert!(report.is_regression());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].field, "speedup");
        assert!(report.render().contains("tolerance band"), "{}", report.render());
    }

    #[test]
    fn faster_is_never_a_regression() {
        let faster = BASE.replace("\"speedup\": 8.0", "\"speedup\": 16.0");
        let report = bench_diff(&doc(BASE), &doc(&faster), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());
    }

    #[test]
    fn profit_drift_fails_exactly() {
        // A millionth of profit drift means the solver changed behavior.
        let drifted =
            BASE.replace("\"incremental_profit\": -208.5", "\"incremental_profit\": -208.500001");
        let report = bench_diff(&doc(BASE), &doc(&drifted), &DiffOptions::default()).unwrap();
        assert!(report.is_regression());
        assert_eq!(report.regressions[0].field, "incremental_profit");
        assert_eq!(report.regressions[0].rule, "exact (deterministic output)");
    }

    #[test]
    fn overhead_gates_on_absolute_slack() {
        let worse = BASE.replace("\"overhead\": 0.05", "\"overhead\": 0.3");
        let report = bench_diff(&doc(BASE), &doc(&worse), &DiffOptions::default()).unwrap();
        assert!(report.is_regression());
        assert_eq!(report.regressions[0].field, "overhead");

        let slightly = BASE.replace("\"overhead\": 0.05", "\"overhead\": 0.12");
        let report = bench_diff(&doc(BASE), &doc(&slightly), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());
    }

    #[test]
    fn seconds_and_machine_fields_never_gate() {
        let slower = BASE
            .replace("\"full_seconds\": 0.004", "\"full_seconds\": 4.0")
            .replace("\"recording_seconds\": 0.2", "\"recording_seconds\": 99.0");
        let report = bench_diff(&doc(BASE), &doc(&slower), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());
    }

    #[test]
    fn subset_runs_report_unmatched_rows_non_fatally() {
        // A smoke run measures fewer rows and an extra seed; only the
        // overlap gates.
        let smoke = r#"{
            "scoring": [
                {"seed": 9, "clients": 80, "servers": 208, "steps": 4000,
                 "speedup": 8.0, "full_profit": -1.0, "incremental_profit": -1.0}
            ]
        }"#;
        let report = bench_diff(&doc(BASE), &doc(smoke), &DiffOptions::default()).unwrap();
        assert!(!report.is_regression(), "{}", report.render());
        assert_eq!(report.compared_rows, 0);
        // baseline-only scoring row, current-only scoring row, missing
        // telemetry_overhead section.
        assert_eq!(report.unmatched.len(), 3, "{:?}", report.unmatched);
    }

    #[test]
    fn key_matching_ignores_field_order() {
        let reordered = r#"{
            "scoring": [
                {"clients": 80, "steps": 4000, "seed": 1, "servers": 208,
                 "incremental_profit": -208.5, "full_profit": -208.5, "speedup": 8.0}
            ],
            "telemetry_overhead": []
        }"#;
        let report = bench_diff(&doc(BASE), &doc(reordered), &DiffOptions::default()).unwrap();
        assert_eq!(report.compared_rows, 1);
        assert!(!report.is_regression(), "{}", report.render());
        // The baseline's non-empty telemetry_overhead row goes unmatched,
        // not silently dropped.
        assert_eq!(report.unmatched.len(), 1);
    }
}
