//! Perf-regression gate: compares a fresh `speedup --json` artifact
//! against the committed `BENCH_speedup.json` baseline and exits nonzero
//! on regression (see `cloudalloc_bench::bench_diff` for the per-field
//! rules).
//!
//! ```text
//! bench-diff BASELINE.json CURRENT.json [--tolerance 0.35] [--overhead-slack 0.10]
//! ```

use cloudalloc_bench::{bench_diff, DiffOptions};
use serde::Value;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(word) = it.next() {
        let mut grab = |name: &str| -> f64 {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .parse()
                .unwrap_or_else(|_| panic!("{name} requires a number"))
        };
        match word.as_str() {
            "--tolerance" => opts.tolerance = grab("--tolerance"),
            "--overhead-slack" => opts.overhead_slack = grab("--overhead-slack"),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; supported: --tolerance X, --overhead-slack X");
                std::process::exit(2);
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench-diff BASELINE.json CURRENT.json [--tolerance X] [--overhead-slack X]"
        );
        std::process::exit(2);
    }
    let read = |path: &str| -> Value {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    };
    let report = bench_diff(&read(&paths[0]), &read(&paths[1]), &opts)
        .unwrap_or_else(|e| panic!("malformed bench artifact: {e}"));
    print!("{}", report.render());
    if report.is_regression() {
        eprintln!("bench-diff: FAIL — performance regressed beyond the noise band");
        std::process::exit(1);
    }
    println!("bench-diff: OK");
}
