//! Experiment **E8**: the energy/consolidation story of the paper's
//! introduction — "energy efficiency can be maximized through system-wide
//! resource allocation and server consolidation ... in spite of non
//! energy-proportional characteristics of current server machines".
//!
//! A fixed client population's demand is scaled from idle to saturation;
//! at each point we compare the proposed allocator against the modified
//! Proportional-Share baseline on active servers, energy cost (the
//! `P0 + P1·ρ` model with a large non-proportional `P0`), and profit.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin energy [--seed N]
//! ```

use cloudalloc_baselines::{modified_ps, PsConfig};
use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_metrics::Table;
use cloudalloc_model::evaluate;
use cloudalloc_workload::{generate, Range, ScenarioConfig};

const NUM_CLIENTS: usize = 40;

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    let mut table = Table::new(vec![
        "demand".into(),
        "active (ours)".into(),
        "active (PS)".into(),
        "cost (ours)".into(),
        "cost (PS)".into(),
        "profit (ours)".into(),
        "profit (PS)".into(),
    ]);
    println!(
        "E8 — consolidation under scaled demand ({NUM_CLIENTS} clients; \
         non-proportional servers: P0 dominates at low utilization)"
    );
    for step in 0..=5 {
        let multiplier = 0.2 + 0.35 * step as f64;
        let scenario = ScenarioConfig {
            arrival_rate: Range::new(0.5 * multiplier, 4.5 * multiplier),
            ..ScenarioConfig::paper(NUM_CLIENTS)
        };
        let system = generate(&scenario, args.seed);
        let ours = solve(&system, &SolverConfig::default(), args.seed);
        let ps = evaluate(&system, &modified_ps(&system, &PsConfig::default()));
        table.row(vec![
            format!("{multiplier:.2}x"),
            ours.report.active_servers.to_string(),
            ps.active_servers.to_string(),
            format!("{:.1}", ours.report.cost),
            format!("{:.1}", ps.cost),
            format!("{:.1}", ours.report.profit),
            format!("{:.1}", ps.profit),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: at low demand the profit-maximizing allocator powers only\n\
         a fraction of the fleet (energy cost scales with demand), while PS's\n\
         active-set search is coarser; the gap in cost per unit of profit widens\n\
         as the non-proportional P0 term dominates"
    );
}
