//! Regenerates **Figure 5** of the paper: robustness of the solution —
//! worst random initial solution before and after local-search
//! optimization, worst-case proposed solution, and the best found result,
//! all normalized per scenario.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin fig5 [--scenarios N]
//!     [--mc N] [--paper-scale] [--quick] [--seed N] [--json PATH]
//! ```

use cloudalloc_bench::{figure5, HarnessArgs};
use cloudalloc_metrics::Table;
use cloudalloc_telemetry as telemetry;

fn main() {
    let args = HarnessArgs::from_env();
    args.init_telemetry();
    telemetry::progress!(
        "fig5: {} points x {} scenarios, {} MC iterations each",
        args.client_counts.len(),
        args.scenarios,
        args.mc_iterations
    );
    let rows = figure5(&args);

    let mut table = Table::new(vec![
        "clients".into(),
        "worst_initial_raw".into(),
        "worst_initial_optimized".into(),
        "worst_proposed".into(),
        "best_found".into(),
        "scenarios".into(),
    ]);
    for row in &rows {
        table.row(vec![
            row.clients.to_string(),
            format!("{:.4}", row.worst_initial_raw),
            format!("{:.4}", row.worst_initial_optimized),
            format!("{:.4}", row.worst_proposed),
            format!("{:.4}", row.best_found),
            row.scenarios.to_string(),
        ]);
    }
    println!("Figure 5 — random initial solutions vs final results (normalized, per-point minima)");
    println!("{table}");
    println!(
        "expected shape: worst_initial_raw « worst_initial_optimized ≈ worst_proposed ≤ 1.0\n\
         (the paper: quality improves dramatically after optimizing the initial solution)"
    );

    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&rows).expect("serializable"))
            .expect("writable json path");
        telemetry::progress!("wrote {path}");
    }
    args.finish_telemetry();
}
