//! Experiment **E4**: ablations over the heuristic's own design knobs —
//! the α-grid granularity, the number of initial solutions, and each
//! local-search operator — at a fixed scenario size.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin ablation [--seed N] [--scenarios N]
//! ```

use std::time::Instant;

use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_metrics::{OnlineStats, Table};
use cloudalloc_workload::{generate, scenario_seeds, ScenarioConfig};

const NUM_CLIENTS: usize = 100;

fn run_config(label: &str, config: &SolverConfig, seeds: &[u64], table: &mut Table) {
    let mut profit = OnlineStats::new();
    let mut active = OnlineStats::new();
    let start = Instant::now();
    for &seed in seeds {
        let system = generate(&ScenarioConfig::paper(NUM_CLIENTS), seed);
        let result = solve(&system, config, seed);
        profit.push(result.report.profit);
        active.push(result.report.active_servers as f64);
    }
    let elapsed = start.elapsed().as_secs_f64() / seeds.len() as f64;
    table.row(vec![
        label.to_string(),
        format!("{:.3}", profit.mean()),
        format!("{:.3}", profit.ci95()),
        format!("{:.1}", active.mean()),
        format!("{elapsed:.2}s"),
    ]);
}

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    let seeds = scenario_seeds(args.seed, NUM_CLIENTS, args.scenarios.min(5));
    let headers = vec![
        "config".into(),
        "profit".into(),
        "ci95".into(),
        "active_servers".into(),
        "time/scenario".into(),
    ];

    println!("E4a — α-grid granularity (N={NUM_CLIENTS}, {} scenarios)", seeds.len());
    let mut t = Table::new(headers.clone());
    for g in [4usize, 8, 10, 20, 40] {
        let config = SolverConfig { alpha_granularity: g, ..Default::default() };
        run_config(&format!("G={g}"), &config, &seeds, &mut t);
    }
    println!("{t}");

    println!("E4b — number of initial solutions");
    let mut t = Table::new(headers.clone());
    for n in [1usize, 3, 5, 10] {
        let config = SolverConfig { num_init_solns: n, ..Default::default() };
        run_config(&format!("init={n}"), &config, &seeds, &mut t);
    }
    println!("{t}");

    println!("E4c — local-search operators (each disabled in turn)");
    let mut t = Table::new(headers);
    run_config("all operators", &SolverConfig::default(), &seeds, &mut t);
    run_config(
        "no share re-balance",
        &SolverConfig { adjust_shares: false, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "no dispersion re-balance",
        &SolverConfig { adjust_dispersion: false, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "no turn-on",
        &SolverConfig { turn_on: false, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "no turn-off",
        &SolverConfig { turn_off: false, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "no reassignment",
        &SolverConfig { reassign: false, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "with swap extension",
        &SolverConfig { swap: true, ..Default::default() },
        &seeds,
        &mut t,
    );
    run_config(
        "greedy only (no local search)",
        &SolverConfig {
            adjust_shares: false,
            adjust_dispersion: false,
            turn_on: false,
            turn_off: false,
            reassign: false,
            max_rounds: 1,
            ..Default::default()
        },
        &seeds,
        &mut t,
    );
    println!("{t}");

    println!("E4d — shadow price ψ (capacity reservation during greedy insertion)");
    let mut t = Table::new(vec![
        "config".into(),
        "profit".into(),
        "ci95".into(),
        "active_servers".into(),
        "time/scenario".into(),
    ]);
    run_config("auto (mean λ̃·slope)", &SolverConfig::default(), &seeds, &mut t);
    for psi in [0.1f64, 0.5, 1.0, 2.0, 5.0] {
        let config = SolverConfig { shadow_price: Some(psi), ..Default::default() };
        run_config(&format!("ψ={psi}"), &config, &seeds, &mut t);
    }
    println!("{t}");
}
