//! Experiment **E7**: robustness of the analytic design basis.
//!
//! The optimizer plans with M/M/1 formulas. This experiment measures what
//! happens when reality violates the assumptions:
//!
//! * **E7a — service-time shape**: replay a solved allocation with
//!   deterministic (CV²=0), exponential (CV²=1) and increasingly bursty
//!   hyperexponential service; report the measured-vs-analytic response
//!   error and the realized revenue.
//! * **E7b — server failures**: inject exponential up/down failures at
//!   decreasing availability; report response inflation and revenue loss.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin robustness [--seed N]
//! ```

use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_metrics::{OnlineStats, Table};
use cloudalloc_simulator::{
    simulate, FailureConfig, RoutingPolicy, ServiceDistribution, SimConfig,
};
use cloudalloc_telemetry as telemetry;
use cloudalloc_workload::{generate, ScenarioConfig};

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    args.init_telemetry();
    let system = generate(&ScenarioConfig::paper(40), args.seed);
    let result = solve(&system, &SolverConfig::default(), args.seed);
    let analytic_revenue = result.report.revenue;
    let served: Vec<usize> = (0..system.num_clients())
        .filter(|&i| result.report.clients[i].response_time.is_finite())
        .collect();
    telemetry::progress!(
        "solved 40 clients: profit {:.2}, revenue {analytic_revenue:.2}, {} served",
        result.report.profit,
        served.len()
    );
    let base = SimConfig {
        horizon: 10_000.0,
        warmup: 1_000.0,
        seed: args.seed ^ 0xE7,
        ..Default::default()
    };

    let measure = |config: &SimConfig| -> (f64, f64) {
        let report = simulate(&system, &result.allocation, config);
        let mut err = OnlineStats::new();
        for &i in &served {
            let analytic = result.report.clients[i].response_time;
            let measured = report.clients[i].mean_response();
            if measured.is_finite() {
                err.push((measured - analytic) / analytic);
            }
        }
        (err.mean(), report.measured_revenue(&system))
    };

    println!("E7a — service-time shape (same allocation, same means, different CV²)");
    let mut table = Table::new(vec![
        "service".into(),
        "cv2".into(),
        "mean response drift".into(),
        "measured revenue".into(),
        "vs analytic".into(),
    ]);
    let shapes = [
        ("deterministic", ServiceDistribution::Deterministic),
        ("exponential (model)", ServiceDistribution::Exponential),
        ("hyperexp", ServiceDistribution::HyperExponential { cv2: 2.0 }),
        ("hyperexp", ServiceDistribution::HyperExponential { cv2: 4.0 }),
        ("hyperexp", ServiceDistribution::HyperExponential { cv2: 8.0 }),
    ];
    for (name, service) in shapes {
        let (drift, revenue) = measure(&SimConfig { service, ..base });
        table.row(vec![
            name.into(),
            format!("{:.0}", service.cv2()),
            format!("{:+.1}%", drift * 100.0),
            format!("{revenue:.2}"),
            format!("{:+.1}%", (revenue / analytic_revenue - 1.0) * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: deterministic service beats the model (negative drift),\n\
         burstier service inflates responses roughly linearly in (1+CV²)/2\n"
    );

    println!("E7b — server failures (exponential up/down, MTTR = 20 time units)");
    let mut table = Table::new(vec![
        "availability".into(),
        "mtbf".into(),
        "mean response drift".into(),
        "measured revenue".into(),
        "vs analytic".into(),
    ]);
    for availability in [1.0, 0.999, 0.99, 0.95, 0.90] {
        let config = if availability >= 1.0 {
            base
        } else {
            let mttr = 20.0;
            let mtbf = mttr * availability / (1.0 - availability);
            SimConfig { failures: Some(FailureConfig::new(mtbf, mttr)), ..base }
        };
        let (drift, revenue) = measure(&config);
        table.row(vec![
            format!("{:.1}%", availability * 100.0),
            config.failures.map(|f| format!("{:.0}", f.mtbf)).unwrap_or_else(|| "-".into()),
            format!("{:+.1}%", drift * 100.0),
            format!("{revenue:.2}"),
            format!("{:+.1}%", (revenue / analytic_revenue - 1.0) * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: revenue degrades super-linearly as availability drops —\n\
         outages park whole queues, and the utility functions punish the tail\n"
    );

    println!("E7c — dispatcher reaction to intra-epoch drift (static α vs least-work)");
    let mut table = Table::new(vec![
        "actual load".into(),
        "static routing".into(),
        "least-work routing".into(),
        "revenue static".into(),
        "revenue least-work".into(),
    ]);
    for drift in [1.0f64, 1.1, 1.2, 1.3] {
        // The epoch's allocation stays fixed while reality drifts: the
        // simulator replays the same placements at scaled arrival rates.
        let rates: Vec<f64> = system.clients().iter().map(|c| c.rate_predicted * drift).collect();
        let drifted = system.with_predicted_rates(&rates);
        let mean_of = |config: &SimConfig| -> (f64, f64) {
            let report = simulate(&drifted, &result.allocation, config);
            let mut resp = OnlineStats::new();
            for &i in &served {
                let m = report.clients[i].mean_response();
                if m.is_finite() {
                    resp.push(m);
                }
            }
            (resp.mean(), report.measured_revenue(&drifted))
        };
        let (static_r, static_rev) = mean_of(&base);
        let (lw_r, lw_rev) = mean_of(&SimConfig { routing: RoutingPolicy::LeastWork, ..base });
        table.row(vec![
            format!("{:.0}%", drift * 100.0),
            format!("{static_r:.3}"),
            format!("{lw_r:.3}"),
            format!("{static_rev:.2}"),
            format!("{lw_rev:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the work-aware dispatcher (the paper's \"proper reaction of\n\
         request dispatchers\") absorbs small drifts that static splitting cannot"
    );
    args.finish_telemetry();
}
