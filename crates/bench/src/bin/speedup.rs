//! Experiment **E5**: distributed decision-making speedup. The paper
//! argues the per-cluster agents cut the decision time by roughly the
//! number of clusters. This binary measures the greedy construction
//! phase, sequential vs distributed, as the cluster count grows (total
//! server count held fixed).
//!
//! Wall-clock speedup requires physical cores; on constrained machines
//! (CI containers often expose a single CPU) we additionally report the
//! **critical path** — the busiest agent's compute time — which is the
//! decision time on ideal parallel hardware and the quantity behind the
//! paper's ÷K claim.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin speedup [--seed N]
//! ```

use std::time::Instant;

use cloudalloc_core::{greedy_pass, SolverConfig, SolverCtx};
use cloudalloc_distributed::greedy_distributed_timed;
use cloudalloc_metrics::Table;
use cloudalloc_model::{evaluate, ClientId};
use cloudalloc_workload::{generate, Range, ScenarioConfig};

const NUM_CLIENTS: usize = 200;
const REPS: usize = 3;

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    // A fine dispersion grid makes each Assign_Distribute call expensive
    // enough that the division of work dominates protocol overhead (the
    // regime the paper's complexity analysis addresses).
    let solver = SolverConfig { alpha_granularity: 40, ..SolverConfig::default() };
    let mut table = Table::new(vec![
        "clusters".into(),
        "servers".into(),
        "sequential".into(),
        "dist_wall".into(),
        "critical_path".into(),
        "ideal_speedup".into(),
        "profit_seq".into(),
        "profit_dist".into(),
    ]);
    println!(
        "E5 — greedy-phase decision time, sequential vs per-cluster agents \
         (N={NUM_CLIENTS}, ~constant total servers, {REPS} reps, {} cores)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    for clusters in [1usize, 2, 5, 10] {
        // Hold the total server count roughly constant: fewer clusters get
        // more servers per class.
        let per_class = (20.0 / clusters as f64).max(1.0);
        let config = ScenarioConfig {
            num_clusters: clusters,
            servers_per_class: Range::new(per_class, per_class),
            ..ScenarioConfig::paper(NUM_CLIENTS)
        };
        let system = generate(&config, args.seed);
        let ctx = SolverCtx::new(&system, &solver);
        let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();

        let mut seq_time = f64::INFINITY;
        let mut seq_profit = 0.0;
        for _ in 0..REPS {
            let start = Instant::now();
            let alloc = greedy_pass(&ctx, &order);
            seq_time = seq_time.min(start.elapsed().as_secs_f64());
            seq_profit = evaluate(&system, &alloc).profit;
        }
        let mut dist_wall = f64::INFINITY;
        let mut critical = f64::INFINITY;
        let mut dist_profit = 0.0;
        for _ in 0..REPS {
            let start = Instant::now();
            let (alloc, busy) = greedy_distributed_timed(&ctx, &order);
            dist_wall = dist_wall.min(start.elapsed().as_secs_f64());
            let path = busy.iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
            critical = critical.min(path);
            dist_profit = evaluate(&system, &alloc).profit;
        }
        table.row(vec![
            clusters.to_string(),
            system.num_servers().to_string(),
            format!("{seq_time:.3}s"),
            format!("{dist_wall:.3}s"),
            format!("{critical:.3}s"),
            format!("{:.2}x", seq_time / critical),
            format!("{seq_profit:.2}"),
            format!("{dist_profit:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: ideal_speedup grows roughly linearly with the cluster count\n\
         (paper: ÷K with K clusters, minus communication overhead); dist_wall only\n\
         tracks it when the machine has as many free cores as clusters"
    );
}
