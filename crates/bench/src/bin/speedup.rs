//! Experiment **E5**: decision-time speedups, in three parts.
//!
//! * **E5a — distributed greedy.** The paper argues the per-cluster agents
//!   cut the decision time by roughly the number of clusters. This section
//!   measures the greedy construction phase, sequential vs distributed, as
//!   the cluster count grows (total server count held fixed). Wall-clock
//!   speedup requires physical cores; on constrained machines (CI
//!   containers often expose a single CPU) we additionally report the
//!   **critical path** — the busiest agent's compute time — which is the
//!   decision time on ideal parallel hardware and the quantity behind the
//!   paper's ÷K claim.
//! * **E5b — incremental scoring.** Replays an identical trace of local
//!   moves through the journaled [`ScoredAllocation`] evaluator and
//!   through from-scratch [`evaluate`] calls (the pre-incremental scoring
//!   discipline), asserting the final profits agree to 1e-6 and reporting
//!   the wall-clock ratio.
//! * **E5c — restart fan-out.** Times `solve` with one worker thread vs
//!   all available cores on a best-of-N configuration; the per-pass RNG
//!   streams make the result identical for any thread count. Records the
//!   thread count actually requested for the parallel leg *and* the
//!   machine's core count (earlier revisions wrote whatever
//!   `available_parallelism` returned into `threads`, which on a one-core
//!   CI box rendered every "parallel" row as `"threads": 1`).
//! * **E5d — candidate search.** The allocation-free, run-deduplicated,
//!   slack-pruned `assign_distribute` path vs the retained exhaustive
//!   reference. An untimed verification pass first asserts every candidate
//!   is **bit-for-bit** identical (placements, score, response time) on a
//!   greedy construction plus a loaded-state re-search sweep; then each
//!   path is timed separately on identical inputs.
//! * **E5e — telemetry overhead.** On builds with the `telemetry` feature,
//!   times identical solves with recording enabled vs suppressed (the
//!   runtime gate) and asserts the profits **bit-identical** — telemetry
//!   observes the solver but never steers it. A third leg measures the
//!   full flight recorder (JSONL sink armed, span-tree records and the
//!   background memory sampler streaming to a temp file) against the
//!   same suppressed baseline; it is skipped when `--telemetry-out`
//!   already owns the process-wide sink. Without the feature the layer
//!   compiles to no-ops and the section reports itself skipped.
//! * **E5f — compiled lowering.** The structure-of-arrays fast path
//!   (per-server capacity/cost arrays, cached `cap/exec` inverse-service
//!   tables, per-(class, client) level-constant tables) vs the retained
//!   array-of-structs path that resolves every field through the frontend
//!   model mid-search. Both run the same dedup/pruning machinery, so the
//!   ratio isolates exactly what the lowering buys. An untimed pass first
//!   asserts every candidate bit-for-bit identical; the timed workload
//!   gives every server a distinct background load, which defeats the
//!   signature dedup — one curve per server, the regime where per-curve
//!   constant reuse (vs per-curve recomputation) dominates the search.
//! * **E5g — fault repair.** Fails 20% of the active servers and compares
//!   the incremental repair (`evict → re-disperse / re-place / shed`, then
//!   an admission-shedding pass) against a bounded full re-solve on the
//!   masked system. Asserts the repair never falls below the naive
//!   drop-the-victims baseline **and** that it is strictly faster than the
//!   re-solve — the latency headroom that justifies the epoch loop's
//!   repair-first, escalate-late policy.
//! * **E5i — datacenter scale.** Sweeps the [`ScenarioConfig::scale`]
//!   family from 10k clients up to a million (full mode only; `--smoke`
//!   stops at 100k), generating each system through the *streaming*
//!   scenario pipeline under a fixed staging [`MemoryBudget`] and solving
//!   it with the hierarchical sketch-then-exact scheme
//!   ([`solve_hierarchical`]). Records wall-clock, profit, the process's
//!   peak RSS (self-measured from `/proc/self/status` `VmHWM`, no
//!   dependencies), and — where the flat solve is still tractable — the
//!   hierarchical-vs-flat profit gap, asserted within the documented
//!   one-sided [`PROFIT_BAND`]. Rows of 100k clients and beyond gate peak
//!   RSS against a per-size budget; the 10k row additionally re-runs the
//!   hierarchical solve single-threaded and asserts the profit
//!   bit-identical to the pooled run.
//! * **E5h — intra-solve fan-out.** A *single* paper-scale solve
//!   (`num_init_solns = 1`, so the restart fan-out of E5c contributes
//!   nothing) with one worker vs eight. This isolates the per-cluster
//!   fan-out inside the solve: candidate searches and the cluster-grained
//!   local-search phases dispatch over the pool with a deterministic
//!   fixed-order reduction, so the profit is asserted **bit-identical**
//!   across thread counts. The ≥3x wall-clock gate additionally applies
//!   whenever the machine exposes at least eight cores; on smaller boxes
//!   the bit-identity assertion still runs and the gate reports itself
//!   skipped.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin speedup [--seed N] [--json PATH] [--smoke]
//! ```
//!
//! The per-seed records of every section are always written as JSON
//! (default `BENCH_speedup.json`, override with `--json`). `--smoke` runs
//! the E5d/E5e/E5f/E5g/E5h equivalence assertions on tiny configurations
//! plus the E5i scale rows up to 100k clients — the CI gate: the process
//! exits non-zero when any pair of paths disagrees, a profit leaves the
//! hierarchical band, or the peak RSS blows its budget. `--smoke --deep`
//! extends E5i to the million-client row, solved in memory-budgeted
//! waves so the deep tier runs routinely rather than full-mode-only.

use std::time::Instant;

use serde::Serialize;

use cloudalloc_core::{
    best_cluster, best_cluster_aos, best_cluster_reference, commit, greedy_pass, solve,
    solve_hierarchical_streamed, Candidate, HierConfig, SolverConfig, SolverCtx, PROFIT_BAND,
};
use cloudalloc_distributed::greedy_distributed_timed;
use cloudalloc_metrics::Table;
use cloudalloc_model::{
    evaluate, Allocation, ClientId, ClusterId, MemoryBudget, Placement, ScoredAllocation, ServerId,
};
use cloudalloc_workload::{generate, Range, ScenarioConfig, ScenarioStream};

const NUM_CLIENTS: usize = 200;
const SCORING_CLIENTS: usize = 80;
const SCORING_STEPS: usize = 4_000;
const SCORING_SEEDS: usize = 3;
const REPS: usize = 3;
/// E5d runs are only milliseconds long; extra reps tame timer noise.
const SEARCH_REPS: usize = 7;
/// Worker count for the E5h parallel leg.
const INTRA_THREADS: usize = 8;
/// Minimum E5h wall-clock speedup demanded when the machine actually has
/// [`INTRA_THREADS`] cores to run on.
const INTRA_SPEEDUP_FLOOR: f64 = 3.0;
/// Clusters per sketch group in the E5i hierarchical solves.
const SCALE_GROUP_SIZE: usize = 8;
/// Staging budget handed to the streaming scenario assembly in E5i: the
/// client-draw buffer is bounded to this many mebibytes regardless of the
/// population size (1 MiB ≈ 18k staged clients per chunk).
const SCALE_STAGING_MIB: usize = 1;
/// Solve-side residency budget of the E5i hierarchical runs: group
/// sub-problems are extracted and solved in waves whose estimated
/// footprint fits this many mebibytes (≈ a handful of scale-preset
/// groups per wave), so only a sliver of the population's sub-problems
/// is ever resident at once. Wave boundaries never change the result.
const SCALE_SOLVE_MIB: usize = 8;

/// One local-search move of the scoring trace, pre-resolved so both
/// engines replay bit-identical mutations.
enum TraceOp {
    Clear(ClientId),
    Move { client: ClientId, cluster: ClusterId, server: ServerId, placement: Placement },
}

/// SplitMix64 step for the trace generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic trace of churn resembling the solver's local
/// search: clients clear out, hop clusters and resize their shares. The
/// trace is resolved against a scratch allocation so every op is valid
/// regardless of which engine replays it.
fn build_trace(
    system: &cloudalloc_model::CloudSystem,
    start: &Allocation,
    seed: u64,
    steps: usize,
) -> Vec<TraceOp> {
    let mut scratch = start.clone();
    let mut state = seed;
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        let client = ClientId(mix(&mut state) as usize % system.num_clients());
        if mix(&mut state).is_multiple_of(8) {
            scratch.clear_client(system, client);
            trace.push(TraceOp::Clear(client));
            continue;
        }
        let cluster = ClusterId(mix(&mut state) as usize % system.num_clusters());
        let servers: Vec<ServerId> = system.servers_in(cluster).map(|s| s.id).collect();
        if servers.is_empty() {
            continue;
        }
        if scratch.cluster_of(client) != Some(cluster) {
            scratch.clear_client(system, client);
            trace.push(TraceOp::Clear(client));
        }
        let server = servers[mix(&mut state) as usize % servers.len()];
        let unit = |state: &mut u64| (mix(state) % 1_000) as f64 / 1_000.0;
        let placement = Placement {
            alpha: 0.05 + 0.95 * unit(&mut state),
            phi_p: 0.05 + 0.45 * unit(&mut state),
            phi_c: 0.05 + 0.45 * unit(&mut state),
        };
        scratch.assign_cluster(client, cluster);
        scratch.place(system, client, server, placement);
        trace.push(TraceOp::Move { client, cluster, server, placement });
    }
    trace
}

/// Replays the trace with from-scratch scoring: every move is followed by
/// a full [`evaluate`] pass, exactly how the solver scored candidates
/// before the incremental engine.
fn replay_full(
    system: &cloudalloc_model::CloudSystem,
    start: &Allocation,
    trace: &[TraceOp],
) -> (f64, f64) {
    let mut alloc = start.clone();
    let begin = Instant::now();
    let mut profit = 0.0;
    for op in trace {
        match *op {
            TraceOp::Clear(client) => {
                alloc.clear_client(system, client);
            }
            TraceOp::Move { client, cluster, server, placement } => {
                alloc.assign_cluster(client, cluster);
                alloc.place(system, client, server, placement);
            }
        }
        profit = evaluate(system, &alloc).profit;
    }
    (begin.elapsed().as_secs_f64(), profit)
}

/// Replays the trace through the journaled incremental evaluator, querying
/// the cached score after every move.
fn replay_incremental(
    system: &cloudalloc_model::CloudSystem,
    start: &Allocation,
    trace: &[TraceOp],
) -> (f64, f64) {
    let mut scored = ScoredAllocation::new(system, start.clone());
    let begin = Instant::now();
    let mut profit = 0.0;
    for op in trace {
        match *op {
            TraceOp::Clear(client) => {
                scored.clear_client(client);
            }
            TraceOp::Move { client, cluster, server, placement } => {
                scored.assign_cluster(client, cluster);
                scored.place(client, server, placement);
            }
        }
        profit = scored.profit();
    }
    (begin.elapsed().as_secs_f64(), profit)
}

/// Per-seed record of the incremental-vs-full scoring comparison (E5b).
#[derive(Debug, Serialize)]
struct ScoringRecord {
    seed: u64,
    clients: usize,
    servers: usize,
    steps: usize,
    full_seconds: f64,
    incremental_seconds: f64,
    speedup: f64,
    full_profit: f64,
    incremental_profit: f64,
}

/// Per-seed record of the one-thread-vs-all-cores restart comparison
/// (E5c). `threads` is the worker count the parallel leg *requested*;
/// `available_cores` is what the machine actually offers — on a one-core
/// box the two legs run the same schedule and the speedup is ~1.
#[derive(Debug, Serialize)]
struct RestartsRecord {
    seed: u64,
    clients: usize,
    threads: usize,
    available_cores: usize,
    single_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    single_profit: f64,
    parallel_profit: f64,
}

/// Per-seed record of the single-solve intra-solve fan-out comparison
/// (E5h): one paper-scale solve, one worker vs [`INTRA_THREADS`].
#[derive(Debug, Serialize)]
struct IntraSolveRecord {
    seed: u64,
    clients: usize,
    clusters: usize,
    threads: usize,
    available_cores: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    serial_profit: f64,
    parallel_profit: f64,
}

/// Per-seed record of the deduplicated-vs-reference candidate search
/// comparison (E5d).
#[derive(Debug, Serialize)]
struct CandidateSearchRecord {
    seed: u64,
    clients: usize,
    servers: usize,
    searches: usize,
    old_seconds: f64,
    new_seconds: f64,
    speedup: f64,
    old_profit: f64,
    new_profit: f64,
}

/// Per-seed record of the recording-on vs recording-suppressed solve
/// comparison (E5e). Empty on builds without the `telemetry` feature.
#[derive(Debug, Serialize)]
struct TelemetryOverheadRecord {
    seed: u64,
    clients: usize,
    recording_seconds: f64,
    suppressed_seconds: f64,
    /// `(recording − suppressed) / suppressed`; noise can make it negative.
    overhead: f64,
    recording_profit: f64,
    suppressed_profit: f64,
    /// Full flight recording (JSONL sink + memory sampler) wall clock;
    /// `None` when `--telemetry-out` already owns the sink.
    flight_seconds: Option<f64>,
    /// `(flight − suppressed) / suppressed`.
    flight_overhead: Option<f64>,
    /// Bit-identical to the other two profits (asserted).
    flight_profit: Option<f64>,
}

/// Per-seed record of the compiled (structure-of-arrays) vs retained
/// array-of-structs search comparison (E5f).
#[derive(Debug, Serialize)]
struct LoweringRecord {
    seed: u64,
    clients: usize,
    servers: usize,
    granularity: usize,
    searches: usize,
    aos_seconds: f64,
    compiled_seconds: f64,
    speedup: f64,
    aos_profit: f64,
    compiled_profit: f64,
}

/// Per-seed record of the incremental-repair vs full-re-solve comparison
/// on a fault scenario (E5g).
#[derive(Debug, Serialize)]
struct RepairLatencyRecord {
    seed: u64,
    clients: usize,
    failed_servers: usize,
    victims: usize,
    repair_seconds: f64,
    resolve_seconds: f64,
    speedup: f64,
    naive_profit: f64,
    repair_profit: f64,
    resolve_profit: f64,
}

/// Per-size record of the datacenter-scale sweep (E5i). `flat_*` and
/// `gap` are `None` where the flat solve is no longer tractable;
/// `peak_rss_bytes` is `None` off Linux (no `/proc/self/status`).
#[derive(Debug, Serialize)]
struct ScaleRecord {
    seed: u64,
    clients: usize,
    servers: usize,
    clusters: usize,
    groups: usize,
    generate_seconds: f64,
    hier_seconds: f64,
    hier_profit: f64,
    flat_seconds: Option<f64>,
    flat_profit: Option<f64>,
    /// `1 − hier_profit / flat_profit`; negative when hierarchical wins.
    gap: Option<f64>,
    peak_rss_bytes: Option<usize>,
    rss_budget_bytes: usize,
    /// Wave budget the hierarchical solve ran under ([`SCALE_SOLVE_MIB`]).
    solve_budget_mib: usize,
}

#[derive(Debug, Serialize)]
struct SpeedupReport {
    scoring: Vec<ScoringRecord>,
    restarts: Vec<RestartsRecord>,
    intra_solve: Vec<IntraSolveRecord>,
    candidate_search: Vec<CandidateSearchRecord>,
    telemetry_overhead: Vec<TelemetryOverheadRecord>,
    lowering: Vec<LoweringRecord>,
    repair: Vec<RepairLatencyRecord>,
    scale: Vec<ScaleRecord>,
}

fn bench_distributed_greedy(seed: u64) {
    // A fine dispersion grid makes each Assign_Distribute call expensive
    // enough that the division of work dominates protocol overhead (the
    // regime the paper's complexity analysis addresses).
    let solver = SolverConfig { alpha_granularity: 40, ..SolverConfig::default() };
    let mut table = Table::new(vec![
        "clusters".into(),
        "servers".into(),
        "sequential".into(),
        "dist_wall".into(),
        "critical_path".into(),
        "ideal_speedup".into(),
        "profit_seq".into(),
        "profit_dist".into(),
    ]);
    println!(
        "E5a — greedy-phase decision time, sequential vs per-cluster agents \
         (N={NUM_CLIENTS}, ~constant total servers, {REPS} reps, {} cores)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    for clusters in [1usize, 2, 5, 10] {
        // Hold the total server count roughly constant: fewer clusters get
        // more servers per class.
        let per_class = (20.0 / clusters as f64).max(1.0);
        let config = ScenarioConfig {
            num_clusters: clusters,
            servers_per_class: Range::new(per_class, per_class),
            ..ScenarioConfig::paper(NUM_CLIENTS)
        };
        let system = generate(&config, seed);
        let ctx = SolverCtx::new(&system, &solver);
        let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();

        let mut seq_time = f64::INFINITY;
        let mut seq_profit = 0.0;
        for _ in 0..REPS {
            let start = Instant::now();
            let alloc = greedy_pass(&ctx, &order);
            seq_time = seq_time.min(start.elapsed().as_secs_f64());
            seq_profit = evaluate(&system, &alloc).profit;
        }
        let mut dist_wall = f64::INFINITY;
        let mut critical = f64::INFINITY;
        let mut dist_profit = 0.0;
        for _ in 0..REPS {
            let start = Instant::now();
            let (alloc, busy) = greedy_distributed_timed(&ctx, &order);
            dist_wall = dist_wall.min(start.elapsed().as_secs_f64());
            let path = busy.iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
            critical = critical.min(path);
            dist_profit = evaluate(&system, &alloc).profit;
        }
        table.row(vec![
            clusters.to_string(),
            system.num_servers().to_string(),
            format!("{seq_time:.3}s"),
            format!("{dist_wall:.3}s"),
            format!("{critical:.3}s"),
            format!("{:.2}x", seq_time / critical),
            format!("{seq_profit:.2}"),
            format!("{dist_profit:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: ideal_speedup grows roughly linearly with the cluster count\n\
         (paper: ÷K with K clusters, minus communication overhead); dist_wall only\n\
         tracks it when the machine has as many free cores as clusters\n"
    );
}

fn bench_incremental_scoring(base_seed: u64) -> Vec<ScoringRecord> {
    let mut table = Table::new(vec![
        "seed".into(),
        "servers".into(),
        "full".into(),
        "incremental".into(),
        "speedup".into(),
        "profit_full".into(),
        "profit_incr".into(),
    ]);
    println!(
        "E5b — scoring a trace of {SCORING_STEPS} local moves \
         (N={SCORING_CLIENTS}, best of {REPS} reps per engine)"
    );
    let mut records = Vec::new();
    for offset in 0..SCORING_SEEDS as u64 {
        let seed = base_seed.wrapping_add(offset);
        let system = generate(&ScenarioConfig::paper(SCORING_CLIENTS), seed);
        let solver = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &solver);
        let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
        let start = greedy_pass(&ctx, &order);
        let trace = build_trace(&system, &start, seed ^ 0xE5B, SCORING_STEPS);

        let mut full = (f64::INFINITY, 0.0);
        let mut incremental = (f64::INFINITY, 0.0);
        for _ in 0..REPS {
            let (t, p) = replay_full(&system, &start, &trace);
            if t < full.0 {
                full = (t, p);
            }
            let (t, p) = replay_incremental(&system, &start, &trace);
            if t < incremental.0 {
                incremental = (t, p);
            }
        }
        assert!(
            (full.1 - incremental.1).abs() <= 1e-6 * (1.0 + full.1.abs()),
            "seed {seed}: engines disagree on the final profit: \
             full {} vs incremental {}",
            full.1,
            incremental.1
        );
        let speedup = full.0 / incremental.0;
        table.row(vec![
            seed.to_string(),
            system.num_servers().to_string(),
            format!("{:.4}s", full.0),
            format!("{:.4}s", incremental.0),
            format!("{speedup:.1}x"),
            format!("{:.4}", full.1),
            format!("{:.4}", incremental.1),
        ]);
        records.push(ScoringRecord {
            seed,
            clients: SCORING_CLIENTS,
            servers: system.num_servers(),
            steps: SCORING_STEPS,
            full_seconds: full.0,
            incremental_seconds: incremental.0,
            speedup,
            full_profit: full.1,
            incremental_profit: incremental.1,
        });
    }
    println!("{table}");
    println!(
        "expected shape: the incremental engine rescores only the clients and\n\
         servers a move touched, so the ratio grows with the system size\n"
    );
    records
}

fn bench_restarts(base_seed: u64) -> Vec<RestartsRecord> {
    let available_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = available_cores;
    let mut table = Table::new(vec![
        "seed".into(),
        "1 thread".into(),
        format!("{threads} threads"),
        "speedup".into(),
        "profit_1".into(),
        format!("profit_{threads}"),
    ]);
    println!(
        "E5c — best-of-8 construction + local search, 1 worker vs {threads} \
         (N={SCORING_CLIENTS}, {available_cores} cores, best of {REPS} reps)"
    );
    let mut records = Vec::new();
    for offset in 0..SCORING_SEEDS as u64 {
        let seed = base_seed.wrapping_add(offset);
        let system = generate(&ScenarioConfig::paper(SCORING_CLIENTS), seed);
        let single_cfg =
            SolverConfig { num_init_solns: 8, num_threads: Some(1), ..SolverConfig::default() };
        let parallel_cfg =
            SolverConfig { num_init_solns: 8, num_threads: Some(threads), ..single_cfg.clone() };

        let mut single = (f64::INFINITY, 0.0);
        let mut parallel = (f64::INFINITY, 0.0);
        for _ in 0..REPS {
            let begin = Instant::now();
            let result = solve(&system, &single_cfg, seed);
            let t = begin.elapsed().as_secs_f64();
            if t < single.0 {
                single = (t, result.report.profit);
            }
            let begin = Instant::now();
            let result = solve(&system, &parallel_cfg, seed);
            let t = begin.elapsed().as_secs_f64();
            if t < parallel.0 {
                parallel = (t, result.report.profit);
            }
        }
        assert!(
            (single.1 - parallel.1).abs() <= 1e-6 * (1.0 + single.1.abs()),
            "seed {seed}: thread count changed the result: {} vs {}",
            single.1,
            parallel.1
        );
        table.row(vec![
            seed.to_string(),
            format!("{:.3}s", single.0),
            format!("{:.3}s", parallel.0),
            format!("{:.2}x", single.0 / parallel.0),
            format!("{:.4}", single.1),
            format!("{:.4}", parallel.1),
        ]);
        records.push(RestartsRecord {
            seed,
            clients: SCORING_CLIENTS,
            threads,
            available_cores,
            single_seconds: single.0,
            parallel_seconds: parallel.0,
            speedup: single.0 / parallel.0,
            single_profit: single.1,
            parallel_profit: parallel.1,
        });
    }
    println!("{table}");
    println!(
        "expected shape: identical profits per seed for every thread count;\n\
         wall-clock speedup bounded by min(8 passes, physical cores)\n"
    );
    records
}

/// E5h: one paper-scale solve (`num_init_solns = 1`) so the only
/// parallelism in play is the intra-solve per-cluster fan-out — candidate
/// searches and the cluster-grained local-search phases dispatched over
/// the solver pool with the deterministic fixed-order reduction.
///
/// Profit bit-identity between the serial and parallel legs is asserted
/// unconditionally. The ≥[`INTRA_SPEEDUP_FLOOR`]x wall-clock gate applies
/// only when the machine exposes at least [`INTRA_THREADS`] cores: the
/// schedule is identical either way, but a one-core CI box cannot
/// manufacture wall-clock parallelism to measure.
fn bench_intra_solve(base_seed: u64, smoke: bool) -> Vec<IntraSolveRecord> {
    let available_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // A cluster count comfortably above the worker count keeps every
    // worker's chunk non-trivial; the paper family's default of 5 would
    // leave most of an 8-worker pool idle.
    let (clients, clusters, reps) = if smoke { (48, 8, 1) } else { (NUM_CLIENTS, 16, REPS) };
    let mut table = Table::new(vec![
        "seed".into(),
        "clusters".into(),
        "1 thread".into(),
        format!("{INTRA_THREADS} threads"),
        "speedup".into(),
        "profit_1".into(),
        format!("profit_{INTRA_THREADS}"),
    ]);
    println!(
        "E5h — intra-solve fan-out, single solve (num_init_solns=1), 1 worker \
         vs {INTRA_THREADS} (N={clients}, K={clusters}, {available_cores} \
         cores, best of {reps} reps)"
    );
    let mut records = Vec::new();
    let seed = base_seed;
    let scenario = ScenarioConfig { num_clusters: clusters, ..ScenarioConfig::paper(clients) };
    let system = generate(&scenario, seed);
    let base_cfg = if smoke { SolverConfig::fast() } else { SolverConfig::default() };
    let serial_cfg = SolverConfig { num_init_solns: 1, num_threads: Some(1), ..base_cfg };
    let parallel_cfg = SolverConfig { num_threads: Some(INTRA_THREADS), ..serial_cfg.clone() };

    let mut serial = (f64::INFINITY, 0.0);
    let mut parallel = (f64::INFINITY, 0.0);
    for _ in 0..reps {
        let begin = Instant::now();
        let result = solve(&system, &serial_cfg, seed);
        let t = begin.elapsed().as_secs_f64();
        if t < serial.0 {
            serial = (t, result.report.profit);
        }
        let begin = Instant::now();
        let result = solve(&system, &parallel_cfg, seed);
        let t = begin.elapsed().as_secs_f64();
        if t < parallel.0 {
            parallel = (t, result.report.profit);
        }
    }
    assert_eq!(
        serial.1.to_bits(),
        parallel.1.to_bits(),
        "seed {seed}: intra-solve fan-out changed the result: {} vs {}",
        serial.1,
        parallel.1
    );
    let speedup = serial.0 / parallel.0;
    if available_cores >= INTRA_THREADS {
        assert!(
            speedup >= INTRA_SPEEDUP_FLOOR,
            "seed {seed}: intra-solve speedup {speedup:.2}x fell below the \
             {INTRA_SPEEDUP_FLOOR}x floor on a {available_cores}-core machine"
        );
    } else {
        println!(
            "note: {available_cores} core(s) < {INTRA_THREADS} workers — the \
             {INTRA_SPEEDUP_FLOOR}x wall-clock gate is skipped; profit \
             bit-identity was asserted regardless"
        );
    }
    table.row(vec![
        seed.to_string(),
        clusters.to_string(),
        format!("{:.3}s", serial.0),
        format!("{:.3}s", parallel.0),
        format!("{speedup:.2}x"),
        format!("{:.4}", serial.1),
        format!("{:.4}", parallel.1),
    ]);
    records.push(IntraSolveRecord {
        seed,
        clients,
        clusters,
        threads: INTRA_THREADS,
        available_cores,
        serial_seconds: serial.0,
        parallel_seconds: parallel.0,
        speedup,
        serial_profit: serial.1,
        parallel_profit: parallel.1,
    });
    println!("{table}");
    println!(
        "expected shape: profits bit-identical by construction (asserted);\n\
         wall-clock speedup tracks min(workers, cores, clusters/chunk) — the\n\
         fan-out covers candidate search and the cluster-local phases, while\n\
         delta replay and the global-profit operators stay serial\n"
    );
    records
}

/// Peak resident-set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`, reported in kB). `None` where the file
/// or the field is unavailable (non-Linux); no dependency needed.
fn read_vm_hwm() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: usize = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// E5i: the datacenter-scale sweep. Every system is *streamed* into
/// existence — the generator stages at most [`SCALE_STAGING_MIB`] MiB of
/// drawn clients at a time while lowering them chunk-by-chunk (asserted
/// by `within_budget`), and the finished lowering is handed straight to
/// [`solve_hierarchical_streamed`], so the population is lowered exactly
/// once per run and the solve adds only one [`SCALE_SOLVE_MIB`]-MiB wave
/// of group sub-problems on top of assemble-time residency. The
/// hierarchical solve handles the sizes where the flat solver's
/// every-client-against-every-cluster coupling stops being tractable;
/// where flat still runs (10k clients) the profit gap is asserted within
/// the one-sided [`PROFIT_BAND`] and the hierarchical solve is re-run
/// single-threaded to assert profit bit-identity across worker counts.
/// From 100k clients up, the process's peak RSS is gated against a
/// per-size budget. `deep` extends a smoke run to the million-client
/// row — the budget-bounded deep tier that lets CI run it routinely
/// instead of full-mode-only.
fn bench_scale(base_seed: u64, smoke: bool, deep: bool) -> Vec<ScaleRecord> {
    // (clients, run flat comparison, peak-RSS budget in bytes).
    const MIB: usize = 1 << 20;
    let mut sizes = vec![(10_000, true, 512 * MIB), (100_000, false, 512 * MIB)];
    if !smoke || deep {
        sizes.push((1_000_000, false, 1024 * MIB));
    }
    let mut table = Table::new(vec![
        "clients".into(),
        "servers".into(),
        "clusters".into(),
        "groups".into(),
        "generate".into(),
        "hier".into(),
        "flat".into(),
        "gap".into(),
        "peak_rss".into(),
    ]);
    println!(
        "E5i — datacenter scale: streamed generation ({SCALE_STAGING_MIB} MiB staging) \
         + hierarchical solve (groups of {SCALE_GROUP_SIZE} clusters, {SCALE_SOLVE_MIB} MiB \
         wave budget), up to {} clients",
        sizes.last().expect("non-empty sweep").0
    );
    let seed = base_seed;
    let config = SolverConfig { max_rounds: 2, ..SolverConfig::fast() };
    let hier_cfg = HierConfig {
        group_size: Some(SCALE_GROUP_SIZE),
        memory_budget: Some(MemoryBudget::from_mib(SCALE_SOLVE_MIB)),
    };
    let mut records = Vec::new();
    for &(clients, run_flat, rss_budget_bytes) in &sizes {
        let scenario = ScenarioConfig::scale(clients);
        let begin = Instant::now();
        let streamed =
            ScenarioStream::new(scenario, seed).assemble(MemoryBudget::from_mib(SCALE_STAGING_MIB));
        let generate_seconds = begin.elapsed().as_secs_f64();
        assert!(
            streamed.within_budget(),
            "{clients} clients: staging peak {} bytes exceeded the {} MiB budget",
            streamed.peak_staging_bytes(),
            SCALE_STAGING_MIB
        );
        let system = streamed.system;
        let lowered = streamed.clients;
        // Flat rows re-run the hierarchical solve single-threaded below;
        // keep a copy of the lowering for it (tiny at 10k clients). The
        // big rows hand the one-and-only lowering straight to the solve.
        let serial_lowered = run_flat.then(|| lowered.clone());
        let groups = system.num_clusters().div_ceil(SCALE_GROUP_SIZE);

        let begin = Instant::now();
        let hier = solve_hierarchical_streamed(&system, lowered, &config, &hier_cfg, seed);
        let hier_seconds = begin.elapsed().as_secs_f64();

        let (flat_seconds, flat_profit, gap) = if run_flat {
            let begin = Instant::now();
            let flat = solve(&system, &config, seed);
            let flat_seconds = begin.elapsed().as_secs_f64();
            assert!(
                hier.report.profit >= (1.0 - PROFIT_BAND) * flat.report.profit,
                "{clients} clients: hierarchical profit {} fell out of the \
                 {PROFIT_BAND} band below flat {}",
                hier.report.profit,
                flat.report.profit
            );
            // Worker-count invariance on the sweep's own workload: the
            // pooled run above (session default threads) must match a
            // single-worker run bit for bit.
            let serial_cfg = SolverConfig { num_threads: Some(1), ..config.clone() };
            let serial = solve_hierarchical_streamed(
                &system,
                serial_lowered.expect("cloned for flat rows"),
                &serial_cfg,
                &hier_cfg,
                seed,
            );
            assert_eq!(
                serial.report.profit.to_bits(),
                hier.report.profit.to_bits(),
                "{clients} clients: hierarchical profit depends on the worker count"
            );
            let gap = 1.0 - hier.report.profit / flat.report.profit;
            (Some(flat_seconds), Some(flat.report.profit), Some(gap))
        } else {
            (None, None, None)
        };

        let peak_rss_bytes = read_vm_hwm();
        match peak_rss_bytes {
            Some(rss) if clients >= 100_000 => {
                assert!(
                    rss <= rss_budget_bytes,
                    "{clients} clients: peak RSS {:.1} MiB exceeded the {:.0} MiB budget",
                    rss as f64 / MIB as f64,
                    rss_budget_bytes as f64 / MIB as f64
                );
            }
            None => println!("note: /proc/self/status unavailable — peak-RSS gate skipped"),
            _ => {}
        }

        table.row(vec![
            clients.to_string(),
            system.num_servers().to_string(),
            system.num_clusters().to_string(),
            groups.to_string(),
            format!("{generate_seconds:.2}s"),
            format!("{hier_seconds:.2}s"),
            flat_seconds.map_or_else(|| "-".into(), |t| format!("{t:.2}s")),
            gap.map_or_else(|| "-".into(), |g| format!("{:+.2}%", g * 100.0)),
            peak_rss_bytes
                .map_or_else(|| "-".into(), |b| format!("{:.0}MiB", b as f64 / MIB as f64)),
        ]);
        records.push(ScaleRecord {
            seed,
            clients,
            servers: system.num_servers(),
            clusters: system.num_clusters(),
            groups,
            generate_seconds,
            hier_seconds,
            hier_profit: hier.report.profit,
            flat_seconds,
            flat_profit,
            gap,
            peak_rss_bytes,
            rss_budget_bytes,
            solve_budget_mib: SCALE_SOLVE_MIB,
        });
    }
    println!("{table}");
    println!(
        "expected shape: hierarchical wall-clock grows near-linearly with the\n\
         population (sketch is O(clients x groups), groups solve independently)\n\
         while the profit stays within the documented band of flat where flat\n\
         is feasible; peak RSS is gated per size, with the staging buffer and\n\
         the solve waves both bounded by their budgets regardless of population\n"
    );
    records
}

/// Panics (non-zero exit — the CI gate) unless two search results are
/// bit-for-bit identical: same servers, same placement bits, same score
/// and response-time bits.
fn assert_candidates_identical(
    fast: &Option<Candidate>,
    reference: &Option<Candidate>,
    what: &str,
) {
    match (fast, reference) {
        (None, None) => {}
        (Some(f), Some(r)) => {
            assert_eq!(f.cluster, r.cluster, "{what}: cluster");
            assert_eq!(f.placements.len(), r.placements.len(), "{what}: placement count");
            for (a, b) in f.placements.iter().zip(r.placements.iter()) {
                assert_eq!(a.0, b.0, "{what}: server id");
                assert_eq!(a.1.alpha.to_bits(), b.1.alpha.to_bits(), "{what}: alpha bits");
                assert_eq!(a.1.phi_p.to_bits(), b.1.phi_p.to_bits(), "{what}: phi_p bits");
                assert_eq!(a.1.phi_c.to_bits(), b.1.phi_c.to_bits(), "{what}: phi_c bits");
            }
            assert_eq!(f.score.to_bits(), r.score.to_bits(), "{what}: score bits");
            assert_eq!(
                f.response_time.to_bits(),
                r.response_time.to_bits(),
                "{what}: response-time bits"
            );
        }
        _ => panic!("{what}: fast = {fast:?} but reference = {reference:?}"),
    }
}

/// The E5d workload: a full greedy construction followed by a clear +
/// re-search sweep against the loaded allocation. Both paths see identical
/// allocation states (the committed candidates are bitwise equal, as the
/// verification pass proves), so timing each alone is a fair comparison.
/// The timer covers only the searches and commits — not the final
/// from-scratch profit evaluation, which is identical for both paths.
/// Returns the final profit, the number of `best_cluster` searches, and
/// the elapsed search time in seconds.
fn run_candidate_searches(
    system: &cloudalloc_model::CloudSystem,
    ctx: &SolverCtx<'_>,
    use_reference: bool,
) -> (f64, usize, f64) {
    let search = |alloc: &Allocation, client: ClientId| {
        if use_reference {
            best_cluster_reference(ctx, alloc, client)
        } else {
            best_cluster(ctx, alloc, client)
        }
    };
    let mut alloc = Allocation::new(system);
    let mut searches = 0;
    let begin = Instant::now();
    for i in 0..system.num_clients() {
        searches += 1;
        if let Some(cand) = search(&alloc, ClientId(i)) {
            commit(ctx, &mut alloc, ClientId(i), &cand);
        }
    }
    for i in 0..system.num_clients() {
        if alloc.cluster_of(ClientId(i)).is_none() {
            continue;
        }
        alloc.clear_client(system, ClientId(i));
        searches += 1;
        if let Some(cand) = search(&alloc, ClientId(i)) {
            commit(ctx, &mut alloc, ClientId(i), &cand);
        }
    }
    let seconds = begin.elapsed().as_secs_f64();
    (evaluate(system, &alloc).profit, searches, seconds)
}

/// Untimed verification: walks the same workload once with both paths in
/// lock-step, asserting every candidate bitwise identical. Returns the
/// profits of both final allocations (asserted bit-equal too).
fn verify_candidate_searches(
    system: &cloudalloc_model::CloudSystem,
    ctx: &SolverCtx<'_>,
) -> (f64, f64) {
    let mut fast_alloc = Allocation::new(system);
    let mut ref_alloc = Allocation::new(system);
    let step = |fast_alloc: &mut Allocation, ref_alloc: &mut Allocation, i: usize| {
        let fast = best_cluster(ctx, fast_alloc, ClientId(i));
        let reference = best_cluster_reference(ctx, ref_alloc, ClientId(i));
        assert_candidates_identical(&fast, &reference, &format!("client {i}"));
        if let Some(cand) = fast {
            commit(ctx, fast_alloc, ClientId(i), &cand);
            commit(ctx, ref_alloc, ClientId(i), &cand);
        }
    };
    for i in 0..system.num_clients() {
        step(&mut fast_alloc, &mut ref_alloc, i);
    }
    for i in 0..system.num_clients() {
        if fast_alloc.cluster_of(ClientId(i)).is_none() {
            continue;
        }
        fast_alloc.clear_client(system, ClientId(i));
        ref_alloc.clear_client(system, ClientId(i));
        step(&mut fast_alloc, &mut ref_alloc, i);
    }
    let new_profit = evaluate(system, &fast_alloc).profit;
    let old_profit = evaluate(system, &ref_alloc).profit;
    assert_eq!(
        new_profit.to_bits(),
        old_profit.to_bits(),
        "old/new candidate-search profits must be bit-identical"
    );
    (old_profit, new_profit)
}

fn bench_candidate_search(base_seed: u64, smoke: bool) -> Vec<CandidateSearchRecord> {
    let mut table = Table::new(vec![
        "seed".into(),
        "servers".into(),
        "searches".into(),
        "old".into(),
        "new".into(),
        "speedup".into(),
        "profit_old".into(),
        "profit_new".into(),
    ]);
    let (clients, seeds) = if smoke { (16, 1) } else { (SCORING_CLIENTS, SCORING_SEEDS as u64) };
    println!(
        "E5d — candidate search, deduplicated/indexed vs exhaustive reference \
         (N={clients}, best of {SEARCH_REPS} reps per path)"
    );
    let mut records = Vec::new();
    for offset in 0..seeds {
        let seed = base_seed.wrapping_add(offset);
        let scenario = if smoke {
            let mut cfg = ScenarioConfig::small(clients);
            cfg.servers_per_class = Range::new(1.0, 2.0);
            cfg
        } else {
            ScenarioConfig::paper(clients)
        };
        let system = generate(&scenario, seed);
        let solver = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &solver);

        // Correctness first, untimed: every candidate bit-for-bit equal.
        let (old_profit, new_profit) = verify_candidate_searches(&system, &ctx);

        let mut old_seconds = f64::INFINITY;
        let mut new_seconds = f64::INFINITY;
        let mut searches = 0;
        for _ in 0..SEARCH_REPS {
            let (_, n, t) = run_candidate_searches(&system, &ctx, true);
            old_seconds = old_seconds.min(t);
            let (_, n2, t) = run_candidate_searches(&system, &ctx, false);
            new_seconds = new_seconds.min(t);
            assert_eq!(n, n2, "both paths must perform the same searches");
            searches = n;
        }
        let speedup = old_seconds / new_seconds;
        table.row(vec![
            seed.to_string(),
            system.num_servers().to_string(),
            searches.to_string(),
            format!("{old_seconds:.4}s"),
            format!("{new_seconds:.4}s"),
            format!("{speedup:.1}x"),
            format!("{old_profit:.4}"),
            format!("{new_profit:.4}"),
        ]);
        records.push(CandidateSearchRecord {
            seed,
            clients,
            servers: system.num_servers(),
            searches,
            old_seconds,
            new_seconds,
            speedup,
            old_profit,
            new_profit,
        });
    }
    println!("{table}");
    println!(
        "expected shape: identical profits by construction (asserted bitwise);\n\
         server-class run dedup and slack pruning give a multi-x speedup that\n\
         grows with servers-per-class\n"
    );
    records
}

/// The E5f workload: the same construction + re-search sweep as E5d, but
/// with the search routine injected so the compiled and AoS paths run the
/// identical dedup/pruning machinery on identical allocation states.
fn run_lowering_searches(
    system: &cloudalloc_model::CloudSystem,
    ctx: &SolverCtx<'_>,
    search: &dyn Fn(&SolverCtx<'_>, &Allocation, ClientId) -> Option<Candidate>,
) -> (f64, usize, f64) {
    let mut alloc = Allocation::new(system);
    let mut searches = 0;
    let begin = Instant::now();
    for i in 0..system.num_clients() {
        searches += 1;
        if let Some(cand) = search(ctx, &alloc, ClientId(i)) {
            commit(ctx, &mut alloc, ClientId(i), &cand);
        }
    }
    for i in 0..system.num_clients() {
        if alloc.cluster_of(ClientId(i)).is_none() {
            continue;
        }
        alloc.clear_client(system, ClientId(i));
        searches += 1;
        if let Some(cand) = search(ctx, &alloc, ClientId(i)) {
            commit(ctx, &mut alloc, ClientId(i), &cand);
        }
    }
    let seconds = begin.elapsed().as_secs_f64();
    (evaluate(system, &alloc).profit, searches, seconds)
}

/// Untimed E5f verification: both paths in lock-step, every candidate
/// asserted bitwise identical, final profits asserted bit-equal.
fn verify_lowering_searches(
    system: &cloudalloc_model::CloudSystem,
    ctx: &SolverCtx<'_>,
) -> (f64, f64) {
    let mut compiled_alloc = Allocation::new(system);
    let mut aos_alloc = Allocation::new(system);
    let step = |compiled_alloc: &mut Allocation, aos_alloc: &mut Allocation, i: usize| {
        let compiled = best_cluster(ctx, compiled_alloc, ClientId(i));
        let aos = best_cluster_aos(ctx, aos_alloc, ClientId(i));
        assert_candidates_identical(&compiled, &aos, &format!("client {i} (compiled vs aos)"));
        if let Some(cand) = compiled {
            commit(ctx, compiled_alloc, ClientId(i), &cand);
            commit(ctx, aos_alloc, ClientId(i), &cand);
        }
    };
    for i in 0..system.num_clients() {
        step(&mut compiled_alloc, &mut aos_alloc, i);
    }
    for i in 0..system.num_clients() {
        if compiled_alloc.cluster_of(ClientId(i)).is_none() {
            continue;
        }
        compiled_alloc.clear_client(system, ClientId(i));
        aos_alloc.clear_client(system, ClientId(i));
        step(&mut compiled_alloc, &mut aos_alloc, i);
    }
    let compiled_profit = evaluate(system, &compiled_alloc).profit;
    let aos_profit = evaluate(system, &aos_alloc).profit;
    assert_eq!(
        compiled_profit.to_bits(),
        aos_profit.to_bits(),
        "compiled/aos candidate-search profits must be bit-identical"
    );
    (aos_profit, compiled_profit)
}

fn bench_lowering(base_seed: u64, smoke: bool) -> Vec<LoweringRecord> {
    let mut table = Table::new(vec![
        "seed".into(),
        "servers".into(),
        "searches".into(),
        "aos".into(),
        "compiled".into(),
        "speedup".into(),
        "profit_aos".into(),
        "profit_compiled".into(),
    ]);
    let (clients, seeds) = if smoke { (16, 1) } else { (SCORING_CLIENTS, SCORING_SEEDS as u64) };
    // Heterogeneous residual loads (every server carries a distinct
    // background load) defeat the signature dedup, so the search builds
    // one curve per server — the regime the lowering targets: the AoS
    // path recomputes the per-level service-rate divisions and sqrt terms
    // for every curve, while the compiled path derives each curve from
    // the per-class constant table it built once.
    let granularity = SolverConfig::default().alpha_granularity;
    println!(
        "E5f — candidate search, compiled structure-of-arrays vs retained \
         array-of-structs (N={clients}, all servers background-loaded, \
         granularity {granularity}, best of {SEARCH_REPS} reps per path)"
    );
    let mut records = Vec::new();
    for offset in 0..seeds {
        let seed = base_seed.wrapping_add(offset);
        let mut scenario = if smoke {
            let mut cfg = ScenarioConfig::small(clients);
            cfg.servers_per_class = Range::new(1.0, 2.0);
            cfg
        } else {
            ScenarioConfig::paper(clients)
        };
        scenario.background_fraction = 1.0;
        let system = generate(&scenario, seed);
        let solver = SolverConfig { alpha_granularity: granularity, ..SolverConfig::default() };
        let ctx = SolverCtx::new(&system, &solver);

        // Correctness first, untimed: every candidate bit-for-bit equal.
        let (aos_profit, compiled_profit) = verify_lowering_searches(&system, &ctx);

        let mut aos_seconds = f64::INFINITY;
        let mut compiled_seconds = f64::INFINITY;
        let mut searches = 0;
        for _ in 0..SEARCH_REPS {
            let (_, n, t) = run_lowering_searches(&system, &ctx, &best_cluster_aos);
            aos_seconds = aos_seconds.min(t);
            let (_, n2, t) = run_lowering_searches(&system, &ctx, &best_cluster);
            compiled_seconds = compiled_seconds.min(t);
            assert_eq!(n, n2, "both paths must perform the same searches");
            searches = n;
        }
        let speedup = aos_seconds / compiled_seconds;
        table.row(vec![
            seed.to_string(),
            system.num_servers().to_string(),
            searches.to_string(),
            format!("{aos_seconds:.4}s"),
            format!("{compiled_seconds:.4}s"),
            format!("{speedup:.2}x"),
            format!("{aos_profit:.4}"),
            format!("{compiled_profit:.4}"),
        ]);
        records.push(LoweringRecord {
            seed,
            clients,
            servers: system.num_servers(),
            granularity,
            searches,
            aos_seconds,
            compiled_seconds,
            speedup,
            aos_profit,
            compiled_profit,
        });
    }
    println!("{table}");
    println!(
        "expected shape: identical profits by construction (asserted bitwise);\n\
         the structure-of-arrays lowering and per-class level-constant tables\n\
         beat per-curve recomputation, more so the less the signature dedup\n\
         can merge (heterogeneous loads, as here)\n"
    );
    records
}

/// Rebuilds an allocation against another (here: masked) system so its
/// cached per-server aggregates start from that system's background
/// loads — the precondition for lowering it into a scored view.
fn rebuild_on(system: &cloudalloc_model::CloudSystem, alloc: &Allocation) -> Allocation {
    let mut fresh = Allocation::new(system);
    for i in 0..system.num_clients() {
        let client = ClientId(i);
        if let Some(cluster) = alloc.cluster_of(client) {
            fresh.assign_cluster(client, cluster);
            for &(server, placement) in alloc.placements(client) {
                fresh.place(system, client, server, placement);
            }
        }
    }
    fresh
}

fn bench_repair_latency(base_seed: u64, smoke: bool) -> Vec<RepairLatencyRecord> {
    use cloudalloc_core::ops;
    let mut table = Table::new(vec![
        "seed".into(),
        "failed".into(),
        "victims".into(),
        "repair".into(),
        "resolve".into(),
        "speedup".into(),
        "profit_naive".into(),
        "profit_repair".into(),
        "profit_resolve".into(),
    ]);
    let (clients, seeds) = if smoke { (16, 1) } else { (SCORING_CLIENTS, SCORING_SEEDS as u64) };
    println!(
        "E5g — fault repair, incremental evict/re-place/shed vs full re-solve \
         on the masked system (N={clients}, 20% of active servers failed, \
         best of {REPS} reps per path)"
    );
    let mut records = Vec::new();
    for offset in 0..seeds {
        let seed = base_seed.wrapping_add(offset);
        let scenario =
            if smoke { ScenarioConfig::small(clients) } else { ScenarioConfig::paper(clients) };
        let system = generate(&scenario, seed);
        let solver = SolverConfig::default();
        let alloc = solve(&system, &solver, seed).allocation;
        let active: Vec<ServerId> = alloc.active_servers().collect();
        if active.is_empty() {
            println!("seed {seed}: no active servers, skipping");
            continue;
        }
        let failed: Vec<ServerId> = active[..(active.len() / 5).max(1)].to_vec();
        let masked = system.with_failed_servers(&failed);
        let ctx = SolverCtx::new(&masked, &solver);
        let stale = rebuild_on(&masked, &alloc);

        // The baseline the repair must beat: drop every victim outright.
        let mut naive = stale.clone();
        let mut dead = vec![false; masked.num_servers()];
        for &s in &failed {
            dead[s.index()] = true;
        }
        let mut victims = 0;
        for i in 0..masked.num_clients() {
            let client = ClientId(i);
            if naive.placements(client).iter().any(|&(s, _)| dead[s.index()]) {
                naive.clear_client(&masked, client);
                victims += 1;
            }
        }
        let naive_profit = evaluate(&masked, &naive).profit;

        let mut repair = (f64::INFINITY, 0.0);
        let mut resolve = (f64::INFINITY, 0.0);
        for _ in 0..REPS {
            let fresh = stale.clone();
            let begin = Instant::now();
            let mut scored = ScoredAllocation::lowered(&ctx.compiled, fresh);
            ops::repair_failed_servers(&ctx, &mut scored, &failed);
            ops::shed_unprofitable(&ctx, &mut scored);
            let t = begin.elapsed().as_secs_f64();
            if t < repair.0 {
                repair = (t, scored.profit());
            }
            let begin = Instant::now();
            let result = solve(&masked, &solver, seed);
            let t = begin.elapsed().as_secs_f64();
            if t < resolve.0 {
                resolve = (t, result.report.profit);
            }
        }
        assert!(
            repair.1 >= naive_profit - 1e-9,
            "seed {seed}: repair profit {} fell below the naive drop baseline {naive_profit}",
            repair.1
        );
        assert!(
            repair.0 < resolve.0,
            "seed {seed}: incremental repair ({:.4}s) must be faster than the \
             full re-solve ({:.4}s)",
            repair.0,
            resolve.0
        );
        let speedup = resolve.0 / repair.0;
        table.row(vec![
            seed.to_string(),
            failed.len().to_string(),
            victims.to_string(),
            format!("{:.4}s", repair.0),
            format!("{:.4}s", resolve.0),
            format!("{speedup:.1}x"),
            format!("{naive_profit:.4}"),
            format!("{:.4}", repair.1),
            format!("{:.4}", resolve.1),
        ]);
        records.push(RepairLatencyRecord {
            seed,
            clients,
            failed_servers: failed.len(),
            victims,
            repair_seconds: repair.0,
            resolve_seconds: resolve.0,
            speedup,
            naive_profit,
            repair_profit: repair.1,
            resolve_profit: resolve.1,
        });
    }
    println!("{table}");
    println!(
        "expected shape: repair touches only the victims, the re-solve\n\
         reconstructs everything — a multi-x latency gap (asserted), at a\n\
         profit never below the drop-the-victims baseline (asserted)\n"
    );
    records
}

/// E5e with the `telemetry` feature: identical solves with recording on vs
/// suppressed via the runtime gate, profits asserted bit-identical. The
/// single-binary comparison isolates exactly the per-event atomics cost
/// (both runs carry the same code, only the gate differs).
#[cfg(feature = "telemetry")]
fn bench_telemetry_overhead(base_seed: u64, smoke: bool) -> Vec<TelemetryOverheadRecord> {
    use cloudalloc_telemetry as telemetry;
    let (clients, seeds) = if smoke { (16, 1) } else { (SCORING_CLIENTS, SCORING_SEEDS as u64) };
    let mut table = Table::new(vec![
        "seed".into(),
        "recording".into(),
        "suppressed".into(),
        "overhead".into(),
        "flight".into(),
        "flight_ovh".into(),
        "profit_rec".into(),
        "profit_sup".into(),
    ]);
    println!(
        "E5e — telemetry overhead, recording on vs suppressed \
         (N={clients}, best of {REPS} reps per mode)"
    );
    let mut records = Vec::new();
    for offset in 0..seeds {
        let seed = base_seed.wrapping_add(offset);
        let scenario =
            if smoke { ScenarioConfig::small(clients) } else { ScenarioConfig::paper(clients) };
        let system = generate(&scenario, seed);
        let config = SolverConfig::default();

        let mut recording = (f64::INFINITY, 0.0);
        let mut suppressed = (f64::INFINITY, 0.0);
        for _ in 0..REPS {
            telemetry::set_recording(true);
            let begin = Instant::now();
            let result = solve(&system, &config, seed);
            let t = begin.elapsed().as_secs_f64();
            if t < recording.0 {
                recording = (t, result.report.profit);
            }
            telemetry::set_recording(false);
            let begin = Instant::now();
            let result = solve(&system, &config, seed);
            let t = begin.elapsed().as_secs_f64();
            if t < suppressed.0 {
                suppressed = (t, result.report.profit);
            }
            telemetry::set_recording(true);
        }
        assert_eq!(
            recording.1.to_bits(),
            suppressed.1.to_bits(),
            "seed {seed}: telemetry recording changed the solver result: \
             {} vs {}",
            recording.1,
            suppressed.1
        );

        // Third leg: the full flight recorder — JSONL sink armed (span
        // start/end records stream to disk) plus the background memory
        // sampler. Skipped when the harness's own --telemetry-out owns
        // the process-wide sink.
        let mut flight = None;
        if !telemetry::sink_active() {
            let dir = std::env::temp_dir().join("cloudalloc-bench-flight");
            std::fs::create_dir_all(&dir).expect("temp dir for flight sink");
            let sink = dir.join(format!("e5e_seed{seed}.jsonl"));
            let mut best = (f64::INFINITY, 0.0);
            for _ in 0..REPS {
                telemetry::init_jsonl(&sink).expect("writable flight sink");
                telemetry::start_memory_sampler(std::time::Duration::from_millis(25));
                telemetry::set_recording(true);
                let begin = Instant::now();
                let result = solve(&system, &config, seed);
                let t = begin.elapsed().as_secs_f64();
                telemetry::stop_memory_sampler();
                telemetry::close_sink();
                if t < best.0 {
                    best = (t, result.report.profit);
                }
            }
            assert_eq!(
                best.1.to_bits(),
                suppressed.1.to_bits(),
                "seed {seed}: flight recording changed the solver result: \
                 {} vs {}",
                best.1,
                suppressed.1
            );
            flight = Some(best);
        }

        let overhead = (recording.0 - suppressed.0) / suppressed.0;
        let flight_overhead = flight.map(|(t, _)| (t - suppressed.0) / suppressed.0);
        table.row(vec![
            seed.to_string(),
            format!("{:.4}s", recording.0),
            format!("{:.4}s", suppressed.0),
            format!("{:+.2}%", overhead * 100.0),
            flight.map_or("-".into(), |(t, _)| format!("{t:.4}s")),
            flight_overhead.map_or("-".into(), |o| format!("{:+.2}%", o * 100.0)),
            format!("{:.4}", recording.1),
            format!("{:.4}", suppressed.1),
        ]);
        records.push(TelemetryOverheadRecord {
            seed,
            clients,
            recording_seconds: recording.0,
            suppressed_seconds: suppressed.0,
            overhead,
            recording_profit: recording.1,
            suppressed_profit: suppressed.1,
            flight_seconds: flight.map(|(t, _)| t),
            flight_overhead,
            flight_profit: flight.map(|(_, p)| p),
        });
    }
    println!("{table}");
    println!(
        "expected shape: profits bit-identical (asserted); counter-only\n\
         overhead within a couple percent, full flight recording (span\n\
         tree + memory sampler on disk) under ten percent\n"
    );
    records
}

/// E5e without the feature: nothing to measure — every telemetry call is
/// an empty inline function, so the cost is zero by construction.
#[cfg(not(feature = "telemetry"))]
fn bench_telemetry_overhead(_base_seed: u64, _smoke: bool) -> Vec<TelemetryOverheadRecord> {
    println!(
        "E5e — telemetry overhead: skipped (built without the `telemetry`\n\
         feature; the layer compiles to no-ops and costs nothing)\n"
    );
    Vec::new()
}

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    args.init_telemetry();
    let path = args.json.clone().unwrap_or_else(|| "BENCH_speedup.json".into());
    if args.smoke {
        // CI smoke gate: the E5d/E5f equivalence assertions, the E5e
        // telemetry bit-identity assertion, the E5h intra-solve
        // thread-invariance assertion (tiny configs), and the E5i scale
        // rows (10k with flat comparison, 100k hierarchical + RSS gate;
        // --deep adds the budget-bounded million-client row).
        let candidate_search = bench_candidate_search(args.seed, true);
        let telemetry_overhead = bench_telemetry_overhead(args.seed, true);
        let lowering = bench_lowering(args.seed, true);
        let repair = bench_repair_latency(args.seed, true);
        let intra_solve = bench_intra_solve(args.seed, true);
        let scale = bench_scale(args.seed, true, args.deep);
        let report = SpeedupReport {
            scoring: Vec::new(),
            restarts: Vec::new(),
            intra_solve,
            candidate_search,
            telemetry_overhead,
            lowering,
            repair,
            scale,
        };
        std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable"))
            .expect("writable json path");
        cloudalloc_telemetry::progress!("wrote {path}");
        args.finish_telemetry();
        return;
    }
    bench_distributed_greedy(args.seed);
    let scoring = bench_incremental_scoring(args.seed);
    let restarts = bench_restarts(args.seed);
    let intra_solve = bench_intra_solve(args.seed, false);
    let candidate_search = bench_candidate_search(args.seed, false);
    let telemetry_overhead = bench_telemetry_overhead(args.seed, false);
    let lowering = bench_lowering(args.seed, false);
    let repair = bench_repair_latency(args.seed, false);
    let scale = bench_scale(args.seed, false, true);

    let report = SpeedupReport {
        scoring,
        restarts,
        intra_solve,
        candidate_search,
        telemetry_overhead,
        lowering,
        repair,
        scale,
    };
    std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable"))
        .expect("writable json path");
    cloudalloc_telemetry::progress!("wrote {path}");
    args.finish_telemetry();
}
