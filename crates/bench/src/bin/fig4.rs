//! Regenerates **Figure 4** of the paper: normalized total profit of the
//! proposed heuristic, the modified Proportional-Share baseline and the
//! Monte-Carlo best-found solution, versus the number of clients.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin fig4 [--scenarios N]
//!     [--mc N] [--paper-scale] [--quick] [--seed N] [--json PATH]
//! ```

use cloudalloc_bench::{figure4, HarnessArgs};
use cloudalloc_metrics::Table;
use cloudalloc_telemetry as telemetry;

fn main() {
    let args = HarnessArgs::from_env();
    args.init_telemetry();
    telemetry::progress!(
        "fig4: {} points x {} scenarios, {} MC iterations each (paper: >=20 scenarios, >=10000 MC)",
        args.client_counts.len(),
        args.scenarios,
        args.mc_iterations
    );
    let rows = figure4(&args);

    let mut table = Table::new(vec![
        "clients".into(),
        "proposed".into(),
        "modified_ps".into(),
        "best_found".into(),
        "scenarios".into(),
    ]);
    for row in &rows {
        table.row(vec![
            row.clients.to_string(),
            format!("{:.4}", row.proposed),
            format!("{:.4}", row.modified_ps),
            format!("{:.4}", row.best_found),
            row.scenarios.to_string(),
        ]);
    }
    println!("Figure 4 — normalized total profit vs number of clients");
    println!("{table}");
    let worst_gap = rows.iter().map(|r| 1.0 - r.proposed).fold(f64::NEG_INFINITY, f64::max);
    println!("max gap of proposed vs best found: {:.1}% (paper reports <= 9%)", worst_gap * 100.0);

    if let Some(path) = &args.json {
        std::fs::write(path, serde_json::to_string_pretty(&rows).expect("serializable"))
            .expect("writable json path");
        telemetry::progress!("wrote {path}");
    }
    args.finish_telemetry();
}
