//! Experiment **E3**: validates the analytic response-time model (paper
//! Eq. (1)) against the discrete-event simulator, on allocations produced
//! by the solver for a paper-scale scenario.
//!
//! ```text
//! cargo run -p cloudalloc-bench --release --bin validate_des [--seed N]
//! ```

use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_metrics::{Histogram, OnlineStats, Table};
use cloudalloc_simulator::{simulate, validate, GpsMode, SimConfig};
use cloudalloc_workload::{generate, ScenarioConfig};

fn main() {
    let args = cloudalloc_bench::HarnessArgs::from_env();
    args.init_telemetry();
    let num_clients = 60;
    let system = generate(&ScenarioConfig::paper(num_clients), args.seed);
    // Strict constraint (6): validating the model wants every client
    // served and measured.
    let config = SolverConfig { require_service: true, ..Default::default() };
    let result = solve(&system, &config, args.seed);
    cloudalloc_telemetry::progress!(
        "solved {} clients over {} servers: profit {:.3}, {} active servers",
        num_clients,
        system.num_servers(),
        result.report.profit,
        result.report.active_servers
    );

    let iso_cfg = SimConfig { seed: args.seed ^ 0xD5, ..SimConfig::validation(0) };
    let rows = validate(&system, &result.allocation, &iso_cfg);
    let shared_cfg = SimConfig { mode: GpsMode::Shared, ..iso_cfg };
    let shared = simulate(&system, &result.allocation, &shared_cfg);

    let mut table = Table::new(vec![
        "client".into(),
        "analytic".into(),
        "measured(iso)".into(),
        "rel_err".into(),
        "measured(gps)".into(),
        "samples".into(),
    ]);
    let mut errs = OnlineStats::new();
    let mut gps_wins = 0usize;
    for row in &rows {
        let gps = shared.clients[row.client].mean_response();
        if gps <= row.analytic {
            gps_wins += 1;
        }
        errs.push(row.relative_error());
        table.row(vec![
            row.client.to_string(),
            format!("{:.4}", row.analytic),
            format!("{:.4}", row.measured),
            format!("{:.2}%", row.relative_error() * 100.0),
            format!("{gps:.4}"),
            row.samples.to_string(),
        ]);
    }
    println!("E3 — analytic vs simulated mean response times ({} served clients)", rows.len());
    println!("{table}");
    println!(
        "isolated-queue model: mean rel. error {:.2}% (max {:.2}%)",
        errs.mean() * 100.0,
        errs.max() * 100.0
    );
    // Distribution of the per-client relative errors.
    let mut hist = Histogram::new(-0.05, 0.05, 10);
    for row in &rows {
        hist.record(row.measured / row.analytic - 1.0);
    }
    println!("\nrelative-error distribution (analytic vs isolated engine):");
    print!("{}", hist.render(30));
    println!(
        "work-conserving GPS: {}/{} clients at or below the analytic prediction \
         (the analytic model is a conservative bound)",
        gps_wins,
        rows.len()
    );
    args.finish_telemetry();
}
