//! Criterion micro-benchmarks of the extension layers: one epoch step
//! (warm-started local search) and the multi-tier compilation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudalloc_core::SolverConfig;
use cloudalloc_epoch::{EpochConfig, EpochManager, EwmaPredictor};
use cloudalloc_model::UtilityFunction;
use cloudalloc_multitier::{compile, Application, Tier};
use cloudalloc_workload::{generate, ScenarioConfig};

fn bench_epoch_step(c: &mut Criterion) {
    let system = generate(&ScenarioConfig::paper(20), 29);
    let base: Vec<f64> = system.clients().iter().map(|cl| cl.rate_predicted).collect();
    let drifted: Vec<f64> = base.iter().map(|r| r * 1.03).collect();

    let mut group = c.benchmark_group("epoch");
    group.sample_size(10);
    group.bench_function("warm_step_20_clients", |b| {
        b.iter_batched(
            || {
                EpochManager::new(
                    system.clone(),
                    EwmaPredictor::new(0.4, &base),
                    EpochConfig {
                        solver: SolverConfig::fast(),
                        resolve_threshold: 0.5,
                        ..Default::default()
                    },
                    1,
                )
            },
            |mut manager| manager.step(black_box(&drifted)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_multitier_compile(c: &mut Criterion) {
    let infrastructure = generate(&ScenarioConfig::small(1), 31);
    let apps: Vec<Application> = (0..10)
        .map(|i| {
            Application::new(
                format!("app{i}"),
                vec![
                    Tier::new(1.0, 0.3, 0.3, 0.5),
                    Tier::new(1.5, 0.5, 0.3, 0.8),
                    Tier::new(0.5, 0.8, 0.2, 1.2),
                ],
                0.5 + 0.1 * i as f64,
                0.5 + 0.1 * i as f64,
                UtilityFunction::linear(3.0, 0.5),
            )
        })
        .collect();
    c.bench_function("multitier_compile_10_apps", |b| {
        b.iter(|| compile(black_box(&apps), black_box(&infrastructure)))
    });
}

criterion_group!(benches, bench_epoch_step, bench_multitier_compile);
criterion_main!(benches);
