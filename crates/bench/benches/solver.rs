//! Criterion micro-benchmarks of the solver's hot paths (experiment E6):
//! the closed-form KKT share solver, the dispersion water-filling, one
//! `Assign_Distribute` call, a full greedy pass and a full solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cloudalloc_core::{
    best_cluster,
    dispersion::{optimal_dispersion, DispersionBranch},
    greedy_pass,
    kkt::{optimal_shares, ShareDemand},
    solve, SolverConfig, SolverCtx,
};
use cloudalloc_model::{Allocation, ClientId};
use cloudalloc_workload::{generate, ScenarioConfig};

fn bench_kkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("kkt_shares");
    group.sample_size(50);
    for n in [2usize, 8, 32] {
        let demands: Vec<ShareDemand> = (0..n)
            .map(|i| ShareDemand {
                arrival: 0.1 + 0.4 * (i as f64 / n as f64),
                rate_per_share: 3.0 + (i % 5) as f64,
                weight: 0.5 + (i % 3) as f64,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, demands| {
            b.iter(|| optimal_shares(black_box(0.95), black_box(demands), 1e-6, 1e-3))
        });
    }
    group.finish();
}

fn bench_dispersion(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispersion_waterfill");
    group.sample_size(50);
    for n in [2usize, 8, 32] {
        let branches: Vec<DispersionBranch> = (0..n)
            .map(|i| DispersionBranch {
                service_p: 2.0 + (i % 7) as f64,
                service_c: 2.5 + (i % 5) as f64,
                cost_slope: 0.1 * (i % 3) as f64,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &branches, |b, branches| {
            b.iter(|| optimal_dispersion(black_box(1.2), black_box(1.0), black_box(branches), 1e-3))
        });
    }
    group.finish();
}

fn bench_assign_distribute(c: &mut Criterion) {
    let system = generate(&ScenarioConfig::paper(40), 7);
    let config = SolverConfig::default();
    let ctx = SolverCtx::new(&system, &config);
    // Pre-load the system with 30 clients; benchmark inserting the 31st.
    let mut alloc = Allocation::new(&system);
    for i in 0..30 {
        if let Some(cand) = best_cluster(&ctx, &alloc, ClientId(i)) {
            cloudalloc_core::commit(&ctx, &mut alloc, ClientId(i), &cand);
        }
    }
    c.bench_function("assign_distribute_one_client", |b| {
        b.iter(|| best_cluster(&ctx, black_box(&alloc), ClientId(31)))
    });
}

fn bench_greedy_and_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let system = generate(&ScenarioConfig::paper(40), 11);
    let config = SolverConfig::default();
    let ctx = SolverCtx::new(&system, &config);
    let order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
    group.bench_function("greedy_pass_40_clients", |b| {
        b.iter(|| greedy_pass(&ctx, black_box(&order)))
    });
    let fast = SolverConfig::fast();
    group.bench_function("solve_fast_40_clients", |b| {
        b.iter(|| solve(black_box(&system), &fast, 3))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kkt,
    bench_dispersion,
    bench_assign_distribute,
    bench_greedy_and_solve
);
criterion_main!(benches);
