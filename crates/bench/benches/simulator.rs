//! Criterion micro-benchmarks of the discrete-event simulator (experiment
//! E6): event throughput of the isolated-queues and fluid-GPS engines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cloudalloc_core::{solve, SolverConfig};
use cloudalloc_simulator::{simulate, GpsMode, SimConfig};
use cloudalloc_workload::{generate, ScenarioConfig};

fn bench_engines(c: &mut Criterion) {
    let system = generate(&ScenarioConfig::paper(20), 19);
    let result = solve(&system, &SolverConfig::fast(), 1);
    let base = SimConfig { horizon: 300.0, warmup: 30.0, seed: 5, ..Default::default() };

    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    group.bench_function("isolated_20_clients_300tu", |b| {
        b.iter(|| simulate(black_box(&system), black_box(&result.allocation), &base))
    });
    let shared = SimConfig { mode: GpsMode::Shared, ..base };
    group.bench_function("shared_gps_20_clients_300tu", |b| {
        b.iter(|| simulate(black_box(&system), black_box(&result.allocation), &shared))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
