use cloudalloc_bench::run_scenario;
use cloudalloc_workload::scenario_seeds;
fn main() {
    for seed in scenario_seeds(1, 80, 5) {
        let p = run_scenario(80, seed, 40);
        println!(
            "seed {seed}: proposed {:.3} initial {:.3} ps {:.3} mc_best {:.3}",
            p.proposed, p.initial, p.modified_ps, p.mc_best
        );
    }
}
