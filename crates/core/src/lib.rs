//! The `Resource_Alloc` heuristic of *"Maximizing Profit in Cloud
//! Computing System via Resource Allocation"* (Goudarzi & Pedram, 2011).
//!
//! The solver maximizes `Σ_i λ̃_i·U_i(R_i) − Σ_j y_j·(P0_j + P1_j·ρ_j)`
//! over client→cluster assignment (`x`), request dispersion (`α`), GPS
//! shares (`φ`) and server power states (`y`) — a non-convex MINLP — with
//! the paper's multi-stage heuristic:
//!
//! 1. **Greedy construction** ([`best_initial`]): clients inserted in
//!    random order, each into the cluster maximizing approximate profit
//!    via [`assign_distribute`] (closed-form KKT shares on an α-grid,
//!    combined by dynamic programming); best of
//!    [`SolverConfig::num_init_solns`] passes.
//! 2. **Local search** ([`improve`]): per-server share re-balancing
//!    ([`ops::adjust_resource_shares`]), per-client dispersion
//!    re-balancing ([`ops::adjust_dispersion_rates`]), server activation
//!    and shutdown ([`ops::turn_on_servers`], [`ops::turn_off_servers`]),
//!    and inter-cluster reassignment ([`ops::reassign_clients`]), looped
//!    until the profit is steady.
//!
//! Every operator commits only profit-improving changes, so
//! [`solve`] produces a monotone profit trace and always returns a
//! feasible allocation when one is reachable.
//!
//! # Example
//!
//! ```
//! use cloudalloc_core::{solve, SolverConfig};
//! use cloudalloc_workload::{generate, ScenarioConfig};
//!
//! let system = generate(&ScenarioConfig::small(8), 42);
//! let result = solve(&system, &SolverConfig::default(), 0);
//! assert!(result.report.profit >= result.initial_profit);
//! assert!(cloudalloc_model::check_feasibility(&system, &result.allocation).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assign;
mod assign_aos;
mod bounds;
mod config;
mod ctx;
mod explain;
mod hier;
mod initial;
mod rounds;
mod scratch;
mod solve;

pub mod dispersion;
pub mod kkt;
pub mod ops;
pub mod par;

pub use assign::{
    assign_distribute, assign_distribute_excluding, assign_distribute_reference, best_cluster,
    best_cluster_reference, commit, commit_scored, Candidate,
};
pub use assign_aos::{assign_distribute_aos, best_cluster_aos};
pub use bounds::{client_bounds, profit_upper_bound, ClientBound};
pub use config::SolverConfig;
pub use ctx::SolverCtx;
pub use explain::{cluster_digests, explain, ClusterDigest};
pub use hier::{
    solve_hierarchical, solve_hierarchical_streamed, HierConfig, HierError, PROFIT_BAND,
};
pub use initial::{best_initial, greedy_pass, random_assignment};
pub use solve::{
    improve, improve_scored, solve, solve_prelowered, solve_restarts, SearchStats, SolveResult,
};
