//! Deterministic fan-out primitive shared by every parallel stage of the
//! solver (greedy passes, multi-seed restarts, per-cluster candidate
//! search, the intra-round operator fan-out, and the distributed
//! Monte-Carlo shards).
//!
//! [`run_parallel`] is a *steal-free* chunked map: the job→worker
//! assignment is a pure function of `(jobs, threads)` — worker `w` owns
//! one contiguous chunk — and results land in job order, so the reduction
//! a caller performs over the returned `Vec` visits candidates in exactly
//! the order the serial loop would. That, plus per-job derived seeds
//! ([`pass_seed`]), is what makes every solve bit-identical across thread
//! counts.
//!
//! Nested dispatch is flattened rather than multiplied: workers (and the
//! caller while it executes its own chunk) set a thread-local in-pool
//! flag, and any [`run_parallel`] call made from inside a chunk runs
//! serially inline. The outermost fan-out therefore owns all the
//! hardware, and inner stages (e.g. the per-cluster candidate search
//! inside a greedy pass that is itself one job of a best-of-N fan-out)
//! stay cheap serial loops — with results identical either way.

use std::cell::Cell;

use cloudalloc_telemetry as telemetry;

thread_local! {
    /// Set while the current thread is executing a chunk of a
    /// [`run_parallel`] dispatch (worker threads *and* the caller).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// `true` while the calling thread is executing jobs on behalf of an
/// enclosing [`run_parallel`] dispatch. Parallel entry points check this
/// to fall back to their serial path instead of spawning nested pools.
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Clears the in-pool flag on drop, so a panicking job cannot leave the
/// caller thread permanently marked as a worker.
struct PoolGuard;

impl PoolGuard {
    fn enter() -> Self {
        IN_POOL.with(|flag| flag.set(true));
        PoolGuard
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        IN_POOL.with(|flag| flag.set(false));
    }
}

/// Decorrelates per-job RNG streams (SplitMix64 finalizer over the
/// golden-ratio-striped job index). Job 0 keeps the raw seed so a
/// single-job run and the first job of a multi-job run draw the same
/// stream.
pub fn pass_seed(seed: u64, pass: u64) -> u64 {
    if pass == 0 {
        return seed;
    }
    let mut z = seed ^ pass.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `jobs` independent tasks on up to `threads` scoped workers and
/// returns the results in job order.
///
/// Scheduling is static: worker `w` owns one contiguous chunk of the job
/// range (sizes differ by at most one), with no work stealing, so the
/// mapping of jobs to workers — and therefore any per-thread state the
/// jobs touch — is deterministic. `f` must be a pure function of its job
/// index for the solver's reproducibility guarantee; under that contract
/// the returned `Vec` is identical for every `threads >= 1`.
///
/// Falls back to a serial inline loop when one worker suffices or when
/// the calling thread is already a pool worker (see [`in_worker`]), so
/// nested dispatches never over-subscribe the machine.
pub fn run_parallel<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(jobs).max(1);
    if threads == 1 || in_worker() {
        return (0..jobs).map(f).collect();
    }
    telemetry::counter!("par.dispatches").incr();
    telemetry::counter!("par.tasks").add(jobs as u64);
    // Flight recorder: the dispatch span is the causal parent of every
    // worker lane — the handle rides into each chunk so per-worker spans
    // nest under it instead of starting new roots on their threads.
    let _dispatch = telemetry::span!("par.dispatch");
    let parent = telemetry::current_span();
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    {
        // Split the result buffer into one contiguous chunk per worker:
        // `extra` leftover jobs go one apiece to the lowest-index workers.
        let base = jobs / threads;
        let extra = jobs % threads;
        let mut chunks: Vec<(usize, &mut [Option<T>])> = Vec::with_capacity(threads);
        let mut rest = slots.as_mut_slice();
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < extra);
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((start, head));
            rest = tail;
            start += len;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let mut chunks = chunks.into_iter();
            let own = chunks.next().expect("threads >= 1");
            for (chunk_start, chunk) in chunks {
                scope.spawn(move || run_chunk(chunk_start, chunk, f, parent));
            }
            // The caller is worker 0: it pays for its own share instead of
            // blocking on the join.
            run_chunk(own.0, own.1, f, parent);
        });
    }
    slots.into_iter().map(|slot| slot.expect("every job ran")).collect()
}

/// Executes one worker's chunk, filling `chunk[i]` with `f(start + i)`.
fn run_chunk<T, F>(start: usize, chunk: &mut [Option<T>], f: &F, parent: telemetry::SpanHandle)
where
    F: Fn(usize) -> T,
{
    let _guard = PoolGuard::enter();
    // Nest this worker's lane (and everything inside it) under the
    // dispatching span, even though it runs on a different thread.
    let _adopt = telemetry::adopt_parent(parent);
    let _lane = telemetry::span!("par.lane");
    telemetry::histogram!("par.chunk_size").record(chunk.len() as u64);
    for (offset, slot) in chunk.iter_mut().enumerate() {
        let _span = telemetry::span!("par.task");
        *slot = Some(f(start + offset));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_arrive_in_job_order_for_every_thread_count() {
        for threads in [1, 2, 3, 8, 17] {
            let got = run_parallel(13, threads, |job| job * job);
            let want: Vec<usize> = (0..13).map(|job| job * job).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_jobs_yield_an_empty_vec() {
        let got: Vec<usize> = run_parallel(0, 4, |job| job);
        assert!(got.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_parallel(57, 5, |job| seen.lock().unwrap().push(job));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        // Record which thread ran each job; a steal-free contiguous
        // chunking means each thread's job set is an interval and sizes
        // differ by at most one.
        let owners = Mutex::new(vec![None; 23]);
        run_parallel(23, 4, |job| {
            owners.lock().unwrap()[job] = Some(std::thread::current().id());
        });
        let owners = owners.into_inner().unwrap();
        let mut sizes = Vec::new();
        let mut distinct = HashSet::new();
        let mut run = 1;
        for pair in owners.windows(2) {
            if pair[0] == pair[1] {
                run += 1;
            } else {
                sizes.push(run);
                run = 1;
            }
        }
        sizes.push(run);
        for owner in owners {
            distinct.insert(owner.expect("job ran"));
        }
        assert_eq!(sizes.len(), 4, "each worker owns exactly one interval");
        assert_eq!(distinct.len(), 4);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "chunk sizes {sizes:?} are unbalanced");
    }

    #[test]
    fn nested_dispatch_runs_serially_inline() {
        let outer = run_parallel(4, 4, |job| {
            assert!(in_worker(), "chunk bodies must be flagged as pool work");
            // The nested call must not spawn: it runs on this thread.
            let inner_threads: HashSet<_> =
                run_parallel(6, 4, |_| std::thread::current().id()).into_iter().collect();
            assert_eq!(inner_threads.len(), 1, "nested dispatch spawned workers");
            job
        });
        assert!(!in_worker(), "flag must clear once the dispatch returns");
        assert_eq!(outer, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pass_seed_is_stable_and_keeps_the_raw_seed_for_pass_zero() {
        assert_eq!(pass_seed(42, 0), 42);
        assert_ne!(pass_seed(42, 1), pass_seed(42, 2));
        assert_eq!(pass_seed(7, 3), pass_seed(7, 3));
    }
}
