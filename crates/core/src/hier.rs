//! Hierarchical solve for datacenter-scale systems (DESIGN.md §3i, §3k).
//!
//! The flat `Resource_Alloc` pipeline prices every client against every
//! cluster: one greedy insertion is `O(clusters × servers_per_cluster ×
//! G)`, and the local-search rounds repeat that coupling. At the paper's
//! five clusters that is the right trade; at thousands of clusters almost
//! all of that work is spent rejecting clusters the client was never
//! going to win.
//!
//! [`solve_hierarchical`] cuts the coupling with a streamed, two-level
//! scheme over the *compiled* view of the system:
//!
//! 1. **Sketch pass** — clusters are partitioned into contiguous
//!    *groups* of [`HierConfig::effective_group_size`] clusters. Each
//!    group is summarized by three numbers (its best per-server
//!    processing and communication capacity, and its total processing
//!    capacity), and every client picks one group by a closed-form
//!    score: the revenue its SLA would earn at the group's optimistic
//!    single-server response time, discounted by the group's running
//!    load pressure. Below [`SKETCH_PARALLEL_MIN`] clients the pass is
//!    the historical serial `O(clients × groups)` loop in client-id
//!    order. At scale it runs in fixed *windows* of [`SKETCH_WINDOW`]
//!    clients: within a window every client scores against the group
//!    loads frozen at window start (plus its own work, as always), the
//!    scoring fans out over [`crate::par::run_parallel`] in fixed
//!    [`SKETCH_JOB`]-client jobs, and a serial fold applies the picked
//!    loads in client-id order. Window and job boundaries are pure
//!    functions of the population — never of the worker count — and each
//!    pick is a pure function of `(client, frozen loads)`, so the pass
//!    is bit-identical at every thread count.
//! 2. **Exact pass, in waves** — each group becomes a self-contained
//!    sub-system extracted straight from the parent's compiled arrays
//!    (`cloudalloc_model::compile_group`: dense renumbering plus a
//!    verbatim copy of the client lowering), and the *existing* flat
//!    pipeline runs on it via [`crate::solve_prelowered`]: same greedy
//!    construction, same operators, same per-cluster fan-out semantics.
//!    Groups are solved in contiguous *waves* sized so the estimated
//!    footprint of the extracted sub-problems fits
//!    [`HierConfig::memory_budget`]; each wave is extracted, solved on
//!    the pool (one derived seed per *global* group index, via
//!    [`crate::pass_seed`]), stitched back onto the original ids
//!    serially in group order, and dropped before the next wave — a
//!    group's working set exists only while its solve runs. Because the
//!    per-group seeds come from global indices and each group solve is a
//!    pure function of `(sub-system, config, seed)`, wave boundaries
//!    cannot change the result: any budget produces output bit-identical
//!    to unbounded all-at-once extraction.
//!
//! Every stage is a pure function of `(system, config, hier, seed)`, so
//! the result is bit-identical at every thread count. The price is that
//! clients can no longer migrate between groups during the local search;
//! EXPERIMENTS.md §E5i documents the resulting one-sided profit band
//! against the flat solve at paper scale (hierarchical profit within
//! [`PROFIT_BAND`] below flat, and free to exceed it). With a single
//! group the scheme degenerates to the flat solve exactly.

use std::fmt;
use std::ops::Range;

use cloudalloc_model::{
    compile_group, compile_streamed, evaluate, Allocation, ClientId, CloudSystem, ClusterId,
    CompiledSystem, GroupProblem, LoweredClients, MemoryBudget,
};
use cloudalloc_telemetry as telemetry;

use crate::config::SolverConfig;
use crate::par::{pass_seed, run_parallel};
use crate::solve::{solve_prelowered, SearchStats, SolveResult};

/// Documented one-sided profit band of the hierarchical solve vs the
/// flat solve at paper scale: hierarchical profit stays within this
/// fraction *below* the flat profit (and may exceed it). Asserted by the
/// `hierarchical_profit_stays_in_band_at_paper_scale` test and the E5i
/// bench gate.
pub const PROFIT_BAND: f64 = 0.15;

/// Population below which the sketch pass keeps the historical fully
/// serial scan (one client at a time, loads updated after each). The
/// windowed parallel schedule only pays off — and only changes routing —
/// past this size.
const SKETCH_PARALLEL_MIN: usize = 4096;

/// Clients per frozen-pressure window of the parallel sketch: every
/// client in a window scores against the group loads as of window start.
const SKETCH_WINDOW: usize = 1024;

/// Clients per scoring job inside one sketch window. Fixed — job
/// boundaries must be a pure function of the population, never of the
/// worker count, or the fold order would vary across machines.
const SKETCH_JOB: usize = 128;

/// Upper clamp of the adaptive group size: past this, one sub-problem's
/// exact solve dominates the pipeline regardless of cluster count.
const ADAPTIVE_GROUP_CAP: usize = 64;

/// A hierarchical configuration the solver cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierError {
    /// An explicit group size of zero clusters was requested.
    ZeroGroupSize,
    /// A memory budget of zero was requested.
    ZeroMemoryBudget,
}

impl fmt::Display for HierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroGroupSize => write!(f, "group size needs at least one cluster per group"),
            Self::ZeroMemoryBudget => write!(f, "memory budget needs at least 1 MiB"),
        }
    }
}

impl std::error::Error for HierError {}

/// Tuning of the hierarchical scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierConfig {
    /// Explicit clusters-per-group override. `None` (the default)
    /// derives the size from the system shape and the budget; see
    /// [`HierConfig::effective_group_size`]. One group reproduces the
    /// flat solve.
    pub group_size: Option<usize>,
    /// Solve-side residency budget: groups are solved in contiguous
    /// waves whose estimated extracted footprint fits the budget, each
    /// wave dropped after stitching. `None` (the default) extracts and
    /// solves every group in a single wave. Wave boundaries never change
    /// the result — only peak memory.
    pub memory_budget: Option<MemoryBudget>,
}

impl HierConfig {
    /// A config with a fixed group size and no budget (the historical
    /// shape; used by tests and benches pinning the group structure).
    pub fn fixed(group_size: usize) -> Self {
        Self { group_size: Some(group_size), memory_budget: None }
    }

    /// Builds a config from optional raw CLI-style inputs, rejecting the
    /// zero values [`HierConfig::validate`] (and the panicking
    /// [`MemoryBudget`] constructors) would otherwise trap on. This is
    /// the one validation site for hierarchical knobs: callers parsing
    /// user input surface the [`HierError`] instead of panicking.
    pub fn try_new(
        group_size: Option<usize>,
        memory_budget_mib: Option<usize>,
    ) -> Result<Self, HierError> {
        let memory_budget = match memory_budget_mib {
            Some(0) => return Err(HierError::ZeroMemoryBudget),
            Some(mib) => Some(MemoryBudget::from_mib(mib)),
            None => None,
        };
        let config = Self { group_size, memory_budget };
        config.validate()?;
        Ok(config)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`HierError::ZeroGroupSize`] when an explicit group size of zero
    /// was set. (A zero budget is unrepresentable: [`MemoryBudget`]
    /// cannot hold zero bytes — [`HierConfig::try_new`] rejects it while
    /// still typed.)
    pub fn validate(&self) -> Result<(), HierError> {
        match self.group_size {
            Some(0) => Err(HierError::ZeroGroupSize),
            _ => Ok(()),
        }
    }

    /// Resolves the clusters-per-group for a system of `clusters`
    /// clusters, `servers` servers and `clients` clients against a
    /// catalog of `num_classes` hardware classes.
    ///
    /// An explicit [`HierConfig::group_size`] always wins. Otherwise the
    /// adaptive rule is:
    ///
    /// 1. start from `⌈√clusters⌉`, clamped to `[1, 64]` — the sketch
    ///    costs `O(clients × clusters / g)` while the per-group exact
    ///    solve grows superlinearly in `g`, so `√clusters` balances the
    ///    two ends of the pipeline and the cap keeps any single
    ///    sub-problem tractable;
    /// 2. while a [`HierConfig::memory_budget`] is set and an
    ///    average-shaped group (`servers·g/clusters` servers,
    ///    `clients·g/clusters` clients, rounded up) is estimated by
    ///    [`GroupProblem::estimated_bytes`] not to fit it, halve `g`
    ///    (never below one) — so on uniform layouts no single
    ///    sub-problem is expected to exceed the budget.
    ///
    /// The rule reads only the given counts — never the thread count or
    /// the environment — so the resolved size (and therefore the whole
    /// solve) stays a pure function of `(system, config)`.
    pub fn effective_group_size(
        &self,
        clusters: usize,
        servers: usize,
        clients: usize,
        num_classes: usize,
    ) -> usize {
        if let Some(size) = self.group_size {
            return size;
        }
        let mut g = ((clusters as f64).sqrt().ceil() as usize).clamp(1, ADAPTIVE_GROUP_CAP);
        if let Some(budget) = self.memory_budget {
            while g > 1 {
                let group_servers = (servers * g).div_ceil(clusters.max(1));
                let group_clients = (clients * g).div_ceil(clusters.max(1));
                if GroupProblem::estimated_bytes(group_servers, group_clients, num_classes)
                    <= budget.bytes()
                {
                    break;
                }
                g /= 2;
            }
        }
        g
    }
}

/// Cluster-group capacity summary driving the sketch pass.
struct GroupSketch {
    /// First cluster id of the group (groups are contiguous ranges).
    cluster_start: usize,
    /// One past the last cluster id of the group.
    cluster_end: usize,
    /// Servers in the group (sizes the wave scheduler's estimate).
    num_servers: usize,
    /// Best per-server processing capacity in the group.
    max_cap_p: f64,
    /// Best per-server communication capacity in the group.
    max_cap_c: f64,
    /// Total processing capacity of the group.
    total_cap_p: f64,
    /// Running processing work (`λ·t̄^p`) of sketch-assigned clients.
    load: f64,
}

/// Builds the per-group capacity summaries — `O(servers)` over the
/// compiled per-server arrays (same resolved capacities, same scan
/// order, hence the same bits as the historical frontend walk).
fn summarize_groups(compiled: &CompiledSystem<'_>, group_size: usize) -> Vec<GroupSketch> {
    let clusters = compiled.num_clusters();
    let num_groups = clusters.div_ceil(group_size);
    let mut groups = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        let cluster_start = g * group_size;
        let cluster_end = ((g + 1) * group_size).min(clusters);
        let mut sketch = GroupSketch {
            cluster_start,
            cluster_end,
            num_servers: 0,
            max_cap_p: 0.0,
            max_cap_c: 0.0,
            total_cap_p: 0.0,
            load: 0.0,
        };
        for k in cluster_start..cluster_end {
            for &server in compiled.cluster_servers(ClusterId(k)) {
                sketch.num_servers += 1;
                sketch.max_cap_p = sketch.max_cap_p.max(compiled.cap_processing(server));
                sketch.max_cap_c = sketch.max_cap_c.max(compiled.cap_communication(server));
                sketch.total_cap_p += compiled.cap_processing(server);
            }
        }
        groups.push(sketch);
    }
    groups
}

/// Scores one client against every group at the *current* (frozen) loads
/// and returns its pick and processing work — the pure per-client kernel
/// shared by the serial and parallel sketch schedules. Pressure includes
/// the client's own work, as the historical serial loop always did.
#[inline]
fn best_group(compiled: &CompiledSystem<'_>, id: ClientId, groups: &[GroupSketch]) -> (usize, f64) {
    let exec_p = compiled.exec_processing(id);
    let exec_c = compiled.exec_communication(id);
    let work = compiled.rate_predicted(id) * exec_p;
    let rate_agreed = compiled.rate_agreed(id);
    let utility = compiled.utility(id);
    let mut best_group = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (g, sketch) in groups.iter().enumerate() {
        if sketch.total_cap_p <= 0.0 {
            continue;
        }
        // Optimistic response time on the group's best hardware: one
        // server carrying the whole client at full share.
        let r_hat = exec_p / sketch.max_cap_p + exec_c / sketch.max_cap_c;
        let revenue_est = rate_agreed * utility.value(r_hat);
        let pressure = (sketch.load + work) / sketch.total_cap_p;
        let score = revenue_est * (1.0 - pressure);
        // Strict improvement only: ties break toward the lowest
        // group id, mirroring the flat solver's cluster tie-break.
        if score > best_score {
            best_score = score;
            best_group = g;
        }
    }
    (best_group, work)
}

/// The sketch pass: assigns every client to one cluster group, returning
/// `group_of[client]`. Serial below [`SKETCH_PARALLEL_MIN`] clients; at
/// scale, frozen-pressure windows of [`SKETCH_WINDOW`] clients whose
/// scoring fans out in fixed [`SKETCH_JOB`]-client jobs, folded serially
/// in client-id order. Deterministic at every worker count by
/// construction (see the module docs).
fn sketch_assign(
    compiled: &CompiledSystem<'_>,
    groups: &mut [GroupSketch],
    threads: usize,
) -> Vec<usize> {
    let n = compiled.num_clients();
    let window = if n < SKETCH_PARALLEL_MIN { 1 } else { SKETCH_WINDOW };
    let mut group_of = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + window).min(n);
        if end - start == 1 {
            let (g, work) = best_group(compiled, ClientId(start), groups);
            groups[g].load += work;
            group_of.push(g);
        } else {
            let jobs = (end - start).div_ceil(SKETCH_JOB);
            let picks: Vec<Vec<(usize, f64)>> = {
                let frozen: &[GroupSketch] = groups;
                run_parallel(jobs, threads.min(jobs), |j| {
                    let lo = start + j * SKETCH_JOB;
                    let hi = (lo + SKETCH_JOB).min(end);
                    (lo..hi).map(|i| best_group(compiled, ClientId(i), frozen)).collect()
                })
            };
            // The exact deterministic reduction: loads applied one client
            // at a time in id order, independent of how the jobs ran.
            for (g, work) in picks.into_iter().flatten() {
                groups[g].load += work;
                group_of.push(g);
            }
        }
        start = end;
    }
    group_of
}

/// Partitions the groups into contiguous solve waves whose combined
/// estimated sub-problem footprint fits the budget — always at least one
/// group per wave, so a tiny budget degrades to group-at-a-time instead
/// of deadlock. `None` keeps everything in one wave.
fn plan_waves(
    groups: &[GroupSketch],
    members: &[Vec<ClientId>],
    num_classes: usize,
    budget: Option<MemoryBudget>,
) -> Vec<Range<usize>> {
    let Some(budget) = budget else {
        return std::iter::once(0..groups.len()).collect();
    };
    let mut waves = Vec::new();
    let mut start = 0;
    let mut bytes = 0usize;
    for (g, (sketch, group_members)) in groups.iter().zip(members).enumerate() {
        let cost =
            GroupProblem::estimated_bytes(sketch.num_servers, group_members.len(), num_classes);
        if g > start && bytes.saturating_add(cost) > budget.bytes() {
            waves.push(start..g);
            start = g;
            bytes = 0;
        }
        bytes = bytes.saturating_add(cost);
    }
    if start < groups.len() {
        waves.push(start..groups.len());
    }
    waves
}

/// Runs the hierarchical scheme: sketch pass, budget-bounded waves of
/// per-group exact solves fanned over the solver pool, serial stitch,
/// full re-evaluation. Lowers the system once
/// ([`CompiledSystem::new`]) and extracts every group sub-problem from
/// the compiled arrays; callers already holding a streamed lowering
/// should use [`solve_hierarchical_streamed`] to skip this step.
///
/// The returned [`SolveResult`] reports the stitched allocation and its
/// exact profit; `initial_profit` aggregates the groups' greedy starts
/// and `stats` their search traces (max rounds, converged iff every
/// group converged).
///
/// # Panics
///
/// Panics if `config` fails [`SolverConfig::validate`] or `hier` fails
/// [`HierConfig::validate`].
pub fn solve_hierarchical(
    system: &CloudSystem,
    config: &SolverConfig,
    hier: &HierConfig,
    seed: u64,
) -> SolveResult {
    let _span = telemetry::span!("hier.total");
    let compiled = {
        let _span = telemetry::span!("hier.lower");
        CompiledSystem::new(system)
    };
    solve_hier_compiled(&compiled, config, hier, seed)
}

/// [`solve_hierarchical`] for a population lowered ahead of time — the
/// datacenter-scale path: a generator that streamed its clients through
/// [`LoweredClients::push_chunk`] hands the finished arrays straight to
/// the solve, which never re-lowers them. Bit-identical to
/// [`solve_hierarchical`] on the same inputs (streamed and batch
/// lowerings are bit-identical by construction).
///
/// # Panics
///
/// Panics if the configs fail validation or `clients` disagrees with
/// `system` (incomplete, or a different population).
pub fn solve_hierarchical_streamed(
    system: &CloudSystem,
    clients: LoweredClients,
    config: &SolverConfig,
    hier: &HierConfig,
    seed: u64,
) -> SolveResult {
    let _span = telemetry::span!("hier.total");
    let compiled = compile_streamed(system, clients);
    solve_hier_compiled(&compiled, config, hier, seed)
}

/// The shared body: everything after the parent lowering exists.
fn solve_hier_compiled(
    compiled: &CompiledSystem<'_>,
    config: &SolverConfig,
    hier: &HierConfig,
    seed: u64,
) -> SolveResult {
    config.validate();
    if let Err(e) = hier.validate() {
        panic!("{e}");
    }
    let system = compiled.system();
    let num_classes = compiled.server_classes().len();
    let group_size = hier.effective_group_size(
        compiled.num_clusters(),
        compiled.num_servers(),
        compiled.num_clients(),
        num_classes,
    );
    let threads = config.effective_threads();

    let mut groups = summarize_groups(compiled, group_size);
    let group_of = {
        let _span = telemetry::span!("hier.sketch");
        sketch_assign(compiled, &mut groups, threads)
    };

    let mut members: Vec<Vec<ClientId>> = vec![Vec::new(); groups.len()];
    for (i, &g) in group_of.iter().enumerate() {
        members[g].push(ClientId(i));
    }

    telemetry::counter!("hier.groups").add(groups.len() as u64);
    // Per-group routing shape: how many clients the sketch sent to each
    // group and how hard it loaded the group relative to its capacity.
    // PR 7 landed the hierarchical solve nearly blind; these are the
    // numbers needed to judge sketch balance without re-deriving it.
    for (g, (sketch, group_members)) in groups.iter().zip(&members).enumerate() {
        telemetry::histogram!("hier.group.clients").record(group_members.len() as u64);
        let pressure =
            if sketch.total_cap_p > 0.0 { sketch.load / sketch.total_cap_p } else { 0.0 };
        telemetry::float_counter!("hier.routing.pressure").add(pressure);
        telemetry::Event::new("hier.group")
            .field_u64("group", g as u64)
            .field_u64("clients", group_members.len() as u64)
            .field_u64("clusters", (sketch.cluster_end - sketch.cluster_start) as u64)
            .field_f64("load", sketch.load)
            .field_f64("total_cap_p", sketch.total_cap_p)
            .field_f64("pressure", pressure)
            .emit();
    }

    let waves = plan_waves(&groups, &members, num_classes, hier.memory_budget);
    telemetry::counter!("hier.waves").add(waves.len() as u64);

    // Budget-bounded group pipeline: per wave, extract from the compiled
    // parent, solve on the pool (seeds derive from *global* group
    // indices, so wave boundaries cannot change any group's result),
    // stitch serially in group order, drop the sub-problems. Group
    // cluster `k` is original cluster `cluster_start + k`; servers and
    // clients map through the recorded id tables.
    let num_waves = waves.len();
    let groups_span = telemetry::span!("hier.groups.solve");
    let mut allocation = Allocation::new(system);
    let mut initial_profit = 0.0;
    let mut rounds = 0;
    let mut converged = true;
    for wave in waves {
        let wave_start = wave.start;
        let problems: Vec<GroupProblem> = {
            let _span = telemetry::span!("hier.extract");
            wave.clone()
                .map(|g| {
                    compile_group(
                        compiled,
                        groups[g].cluster_start..groups[g].cluster_end,
                        &members[g],
                    )
                })
                .collect()
        };
        let results: Vec<SolveResult> = {
            let _span = telemetry::span!("hier.wave.solve");
            let problems = &problems;
            run_parallel(problems.len(), threads.min(problems.len()), |j| {
                let _span = telemetry::span!("hier.group.solve");
                let problem = &problems[j];
                solve_prelowered(
                    &problem.system,
                    problem.clients.clone(),
                    config,
                    pass_seed(seed, (wave_start + j) as u64),
                )
            })
        };
        let _span = telemetry::span!("hier.stitch");
        for (j, (result, problem)) in results.iter().zip(&problems).enumerate() {
            let sketch = &groups[wave_start + j];
            for (new_i, &orig_client) in problem.client_ids.iter().enumerate() {
                let new_id = ClientId(new_i);
                if let Some(sub_cluster) = result.allocation.cluster_of(new_id) {
                    allocation.assign_cluster(
                        orig_client,
                        ClusterId(sketch.cluster_start + sub_cluster.0),
                    );
                    for &(sub_server, placement) in result.allocation.placements(new_id) {
                        let orig_server = problem.server_ids[sub_server.index()];
                        allocation.place(system, orig_client, orig_server, placement);
                    }
                }
            }
            initial_profit += result.initial_profit;
            rounds = rounds.max(result.stats.rounds);
            converged &= result.stats.converged;
        }
    }
    drop(groups_span);

    let report = {
        let _span = telemetry::span!("hier.rescore");
        evaluate(system, &allocation)
    };
    let stats = SearchStats { rounds, history: vec![initial_profit, report.profit], converged };
    telemetry::Event::new("hier.solve")
        .field_u64("seed", seed)
        .field_u64("groups", groups.len() as u64)
        .field_u64("group_size", group_size as u64)
        .field_u64("waves", num_waves as u64)
        .field_f64("profit", report.profit)
        .emit();
    SolveResult { allocation, report, initial_profit, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};
    use proptest::prelude::*;

    /// Full bit-for-bit equality of two hierarchical results.
    fn assert_identical(a: &SolveResult, b: &SolveResult, what: &str) {
        assert_eq!(a.allocation, b.allocation, "{what}: allocation diverged");
        assert_eq!(a.report.profit.to_bits(), b.report.profit.to_bits(), "{what}: profit bits");
        assert_eq!(
            a.initial_profit.to_bits(),
            b.initial_profit.to_bits(),
            "{what}: initial profit bits"
        );
        assert_eq!(a.stats.rounds, b.stats.rounds, "{what}: rounds");
        assert_eq!(a.stats.converged, b.stats.converged, "{what}: convergence");
    }

    #[test]
    fn one_group_reproduces_the_flat_solve_exactly() {
        // group_size >= num_clusters puts everything in group 0, whose
        // sub-system is an id-identical copy solved with the raw seed, so
        // the result must be bit-identical to the flat solve.
        let system = generate(&ScenarioConfig::paper(24), 91);
        let config = SolverConfig::fast();
        let flat = solve(&system, &config, 7);
        let hier = solve_hierarchical(&system, &config, &HierConfig::fixed(100), 7);
        assert_eq!(hier.allocation, flat.allocation);
        assert_eq!(hier.report.profit.to_bits(), flat.report.profit.to_bits());
        assert_eq!(hier.initial_profit.to_bits(), flat.initial_profit.to_bits());
    }

    #[test]
    fn hierarchical_solutions_are_feasible() {
        let system = generate(&ScenarioConfig::paper(40), 92);
        let config = SolverConfig::fast();
        let result = solve_hierarchical(&system, &config, &HierConfig::fixed(2), 5);
        assert!(result.report.profit.is_finite());
        assert!(check_feasibility(&system, &result.allocation)
            .iter()
            .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })));
        result.allocation.assert_consistent(&system);
    }

    #[test]
    fn hierarchical_is_identical_across_thread_counts() {
        let system = generate(&ScenarioConfig::paper(30), 93);
        let hier = HierConfig::fixed(2);
        let base = {
            let config = SolverConfig { num_threads: Some(1), ..SolverConfig::fast() };
            solve_hierarchical(&system, &config, &hier, 11)
        };
        for threads in [2, 4, 8] {
            let config = SolverConfig { num_threads: Some(threads), ..SolverConfig::fast() };
            let result = solve_hierarchical(&system, &config, &hier, 11);
            assert_identical(&base, &result, &format!("threads={threads}"));
        }
    }

    #[test]
    fn sketch_is_identical_across_thread_counts() {
        // Above SKETCH_PARALLEL_MIN clients the windowed parallel
        // schedule engages; picks and final loads must not depend on the
        // worker count.
        let system = generate(&ScenarioConfig::scale(6000), 95);
        assert!(system.num_clients() >= SKETCH_PARALLEL_MIN);
        let compiled = CompiledSystem::new(&system);
        let (base_of, base_loads) = {
            let mut groups = summarize_groups(&compiled, 2);
            let group_of = sketch_assign(&compiled, &mut groups, 1);
            (group_of, groups.iter().map(|g| g.load.to_bits()).collect::<Vec<_>>())
        };
        assert!(base_of.iter().collect::<std::collections::HashSet<_>>().len() > 1);
        for threads in [2, 8] {
            let mut groups = summarize_groups(&compiled, 2);
            let group_of = sketch_assign(&compiled, &mut groups, threads);
            assert_eq!(group_of, base_of, "threads={threads}: picks diverged");
            let loads: Vec<u64> = groups.iter().map(|g| g.load.to_bits()).collect();
            assert_eq!(loads, base_loads, "threads={threads}: load bits diverged");
        }
    }

    #[test]
    fn hierarchical_profit_stays_in_band_at_paper_scale() {
        // The documented one-sided band: hierarchical profit within
        // PROFIT_BAND below flat (free to exceed it) on paper-family
        // scenarios.
        for seed in [3_u64, 17] {
            let system = generate(&ScenarioConfig::paper(60), seed);
            let config = SolverConfig::fast();
            let flat = solve(&system, &config, 9);
            let hier = solve_hierarchical(&system, &config, &HierConfig::fixed(2), 9);
            assert!(flat.report.profit > 0.0, "fixture must be profitable");
            assert!(
                hier.report.profit >= (1.0 - PROFIT_BAND) * flat.report.profit,
                "seed {seed}: hierarchical profit {} fell out of the {PROFIT_BAND} band \
                 below flat {}",
                hier.report.profit,
                flat.report.profit
            );
        }
    }

    #[test]
    fn sketch_spreads_load_across_groups() {
        // With the pressure discount, a large population must not pile
        // into a single group.
        let system = generate(&ScenarioConfig::paper(80), 94);
        let compiled = CompiledSystem::new(&system);
        let mut groups = summarize_groups(&compiled, 2);
        let group_of = sketch_assign(&compiled, &mut groups, 1);
        let mut counts = vec![0usize; groups.len()];
        for &g in &group_of {
            counts[g] += 1;
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() > 1, "sketch used one group: {counts:?}");
    }

    #[test]
    fn wave_solve_matches_unbounded_extraction() {
        // A one-byte budget forces group-at-a-time waves; the stitched
        // output must match the single-wave run bit for bit.
        let system = generate(&ScenarioConfig::paper(40), 92);
        let config = SolverConfig::fast();
        let unbounded = solve_hierarchical(&system, &config, &HierConfig::fixed(1), 5);
        let bounded =
            HierConfig { group_size: Some(1), memory_budget: Some(MemoryBudget::from_bytes(1)) };
        let waved = solve_hierarchical(&system, &config, &bounded, 5);
        assert_identical(&unbounded, &waved, "one-byte budget");
    }

    #[test]
    fn streamed_entry_matches_the_batch_entry() {
        let system = generate(&ScenarioConfig::paper(30), 96);
        let config = SolverConfig::fast();
        let hier = HierConfig::fixed(2);
        let batch = solve_hierarchical(&system, &config, &hier, 13);
        let mut clients = LoweredClients::new(system.num_clients(), system.server_classes().len());
        for chunk in system.clients().chunks(7) {
            clients.push_chunk(system.server_classes(), system.utility_classes(), chunk);
        }
        let streamed = solve_hierarchical_streamed(&system, clients, &config, &hier, 13);
        assert_identical(&batch, &streamed, "streamed entry");
    }

    #[test]
    fn adaptive_group_size_follows_the_documented_rule() {
        let adaptive = HierConfig::default();
        // ⌈√clusters⌉, clamped to [1, 64].
        assert_eq!(adaptive.effective_group_size(5, 50, 100, 4), 3);
        assert_eq!(adaptive.effective_group_size(100, 1000, 1000, 4), 10);
        assert_eq!(adaptive.effective_group_size(10_000, 10_000, 10_000, 4), 64);
        assert_eq!(adaptive.effective_group_size(0, 0, 0, 4), 1);
        // An explicit override always wins.
        assert_eq!(HierConfig::fixed(7).effective_group_size(100, 1000, 1000, 4), 7);
        // A tight budget halves the size toward one.
        let tight =
            HierConfig { group_size: None, memory_budget: Some(MemoryBudget::from_bytes(1)) };
        assert_eq!(tight.effective_group_size(100, 10_000, 100_000, 4), 1);
        // A huge budget leaves the √ rule untouched.
        let loose =
            HierConfig { group_size: None, memory_budget: Some(MemoryBudget::from_mib(4096)) };
        assert_eq!(loose.effective_group_size(100, 1000, 1000, 4), 10);
    }

    #[test]
    fn typed_validation_rejects_zero_values() {
        assert_eq!(HierConfig::try_new(Some(0), None), Err(HierError::ZeroGroupSize));
        assert_eq!(HierConfig::try_new(None, Some(0)), Err(HierError::ZeroMemoryBudget));
        assert_eq!(
            HierConfig { group_size: Some(0), ..Default::default() }.validate(),
            Err(HierError::ZeroGroupSize)
        );
        assert!(HierError::ZeroGroupSize.to_string().contains("at least one cluster per group"));
        assert!(HierError::ZeroMemoryBudget.to_string().contains("at least 1"));
        let ok = HierConfig::try_new(Some(4), Some(64)).expect("valid knobs");
        assert_eq!(ok.group_size, Some(4));
        assert_eq!(ok.memory_budget, Some(MemoryBudget::from_mib(64)));
    }

    #[test]
    #[should_panic(expected = "at least one cluster per group")]
    fn zero_group_size_is_rejected() {
        let system = generate(&ScenarioConfig::small(4), 1);
        let _ = solve_hierarchical(
            &system,
            &SolverConfig::fast(),
            &HierConfig { group_size: Some(0), memory_budget: None },
            1,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Adaptive grouping ≡ the fixed size it resolves to, on uniform
        /// cluster layouts (the paper family lays clusters out
        /// uniformly): the adaptive path introduces no behavioral fork.
        #[test]
        fn adaptive_grouping_equals_fixed_group_size(
            clients in 16_usize..48,
            seed in 0_u64..1000,
        ) {
            let system = generate(&ScenarioConfig::paper(clients), seed);
            let config = SolverConfig::fast();
            let adaptive = HierConfig::default();
            let resolved = adaptive.effective_group_size(
                system.num_clusters(),
                system.num_servers(),
                system.num_clients(),
                system.server_classes().len(),
            );
            let a = solve_hierarchical(&system, &config, &adaptive, 3);
            let f = solve_hierarchical(&system, &config, &HierConfig::fixed(resolved), 3);
            assert_identical(&a, &f, &format!("clients={clients} seed={seed}"));
        }

        /// Wave-solve under *any* budget ≡ unbounded extraction, bit for
        /// bit: wave boundaries are a memory knob, never a result knob.
        #[test]
        fn any_budget_wave_solve_is_bit_identical(
            budget_bytes in 1_usize..(1 << 22),
            seed in 0_u64..1000,
        ) {
            let system = generate(&ScenarioConfig::paper(30), 97);
            let config = SolverConfig::fast();
            let unbounded = solve_hierarchical(&system, &config, &HierConfig::fixed(1), seed);
            let bounded = HierConfig {
                group_size: Some(1),
                memory_budget: Some(MemoryBudget::from_bytes(budget_bytes)),
            };
            let waved = solve_hierarchical(&system, &config, &bounded, seed);
            assert_identical(&unbounded, &waved, &format!("budget={budget_bytes} seed={seed}"));
        }
    }
}
