//! Hierarchical solve for datacenter-scale systems (DESIGN.md §3i).
//!
//! The flat `Resource_Alloc` pipeline prices every client against every
//! cluster: one greedy insertion is `O(clusters × servers_per_cluster ×
//! G)`, and the local-search rounds repeat that coupling. At the paper's
//! five clusters that is the right trade; at thousands of clusters almost
//! all of that work is spent rejecting clusters the client was never
//! going to win.
//!
//! [`solve_hierarchical`] cuts the coupling with a two-level scheme:
//!
//! 1. **Sketch pass** — clusters are partitioned into contiguous
//!    *groups* of [`HierConfig::group_size`]. Each group is summarized by
//!    three numbers (its best per-server processing and communication
//!    capacity, and its total processing capacity), and every client
//!    picks one group by a closed-form score: the revenue its SLA would
//!    earn at the group's optimistic single-server response time,
//!    discounted by the group's running load pressure. The pass is a
//!    serial `O(clients × groups)` loop in client-id order — the load
//!    term makes it order-sensitive, and keeping it serial keeps it
//!    deterministic.
//! 2. **Exact pass** — each group becomes a self-contained sub-system
//!    (same catalogs, its clusters and servers renumbered densely, its
//!    sketch-assigned clients renumbered densely) and the *existing*
//!    [`crate::solve`] runs on it: same greedy construction, same
//!    operators, same per-cluster fan-out semantics. Group solves are
//!    independent, so they fan out over [`crate::par`] with one derived
//!    seed per group ([`crate::pass_seed`]); nested fan-outs inside each
//!    solve collapse to serial loops as usual. The group allocations are
//!    stitched back onto the original ids serially, in group order.
//!
//! Every stage is a pure function of `(system, config, hier, seed)`, so
//! the result is bit-identical at every thread count. The price is that
//! clients can no longer migrate between groups during the local search;
//! EXPERIMENTS.md §E5i documents the resulting one-sided profit band
//! against the flat solve at paper scale (hierarchical profit within
//! [`PROFIT_BAND`] below flat, and free to exceed it). With a single
//! group the scheme degenerates to the flat solve exactly.

use cloudalloc_model::{
    evaluate, Allocation, Client, ClientId, CloudSystem, Cluster, ClusterId, ServerId,
};
use cloudalloc_telemetry as telemetry;

use crate::config::SolverConfig;
use crate::par::{pass_seed, run_parallel};
use crate::solve::{solve, SearchStats, SolveResult};

/// Documented one-sided profit band of the hierarchical solve vs the
/// flat solve at paper scale: hierarchical profit stays within this
/// fraction *below* the flat profit (and may exceed it). Asserted by the
/// `hierarchical_profit_stays_in_band_at_paper_scale` test and the E5i
/// bench gate.
pub const PROFIT_BAND: f64 = 0.15;

/// Tuning of the hierarchical scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierConfig {
    /// Clusters per sketch group. Smaller groups mean cheaper exact
    /// passes and a coarser sketch; one group reproduces the flat solve.
    pub group_size: usize,
}

impl Default for HierConfig {
    fn default() -> Self {
        Self { group_size: 8 }
    }
}

impl HierConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `group_size` is zero.
    pub fn validate(&self) {
        assert!(self.group_size >= 1, "need at least one cluster per group");
    }
}

/// Cluster-group capacity summary driving the sketch pass.
struct GroupSketch {
    /// First cluster id of the group (groups are contiguous ranges).
    cluster_start: usize,
    /// One past the last cluster id of the group.
    cluster_end: usize,
    /// Best per-server processing capacity in the group.
    max_cap_p: f64,
    /// Best per-server communication capacity in the group.
    max_cap_c: f64,
    /// Total processing capacity of the group.
    total_cap_p: f64,
    /// Running processing work (`λ·t̄^p`) of sketch-assigned clients.
    load: f64,
}

/// Builds the per-group capacity summaries — `O(servers)` over the
/// frontend model, no full lowering required.
fn summarize_groups(system: &CloudSystem, group_size: usize) -> Vec<GroupSketch> {
    let clusters = system.num_clusters();
    let num_groups = clusters.div_ceil(group_size);
    let mut groups = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        let cluster_start = g * group_size;
        let cluster_end = ((g + 1) * group_size).min(clusters);
        let mut sketch = GroupSketch {
            cluster_start,
            cluster_end,
            max_cap_p: 0.0,
            max_cap_c: 0.0,
            total_cap_p: 0.0,
            load: 0.0,
        };
        for k in cluster_start..cluster_end {
            for &server in &system.cluster(ClusterId(k)).servers {
                let class = system.class_of(server);
                sketch.max_cap_p = sketch.max_cap_p.max(class.cap_processing);
                sketch.max_cap_c = sketch.max_cap_c.max(class.cap_communication);
                sketch.total_cap_p += class.cap_processing;
            }
        }
        groups.push(sketch);
    }
    groups
}

/// The sketch pass: assigns every client to one cluster group, returning
/// `group_of[client]`. Serial in client-id order (the pressure term
/// couples consecutive decisions), deterministic by construction.
fn sketch_assign(system: &CloudSystem, groups: &mut [GroupSketch]) -> Vec<usize> {
    let mut group_of = Vec::with_capacity(system.num_clients());
    for client in system.clients() {
        let utility = system.utility_of(client.id);
        let work = client.rate_predicted * client.exec_processing;
        let mut best_group = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (g, sketch) in groups.iter().enumerate() {
            if sketch.total_cap_p <= 0.0 {
                continue;
            }
            // Optimistic response time on the group's best hardware: one
            // server carrying the whole client at full share.
            let r_hat = client.exec_processing / sketch.max_cap_p
                + client.exec_communication / sketch.max_cap_c;
            let revenue_est = client.rate_agreed * utility.value(r_hat);
            let pressure = (sketch.load + work) / sketch.total_cap_p;
            let score = revenue_est * (1.0 - pressure);
            // Strict improvement only: ties break toward the lowest
            // group id, mirroring the flat solver's cluster tie-break.
            if score > best_score {
                best_score = score;
                best_group = g;
            }
        }
        groups[best_group].load += work;
        group_of.push(best_group);
    }
    group_of
}

/// One group's sub-problem: a dense renumbering of its clusters, servers
/// and sketch-assigned clients, plus the maps back to the original ids.
struct GroupProblem {
    system: CloudSystem,
    /// Original server id of each sub-system server, by new id index.
    server_ids: Vec<ServerId>,
    /// Original client id of each sub-system client, by new id index.
    client_ids: Vec<ClientId>,
}

/// Extracts group `g`'s sub-system. Catalogs are copied whole (so class
/// and utility ids — and therefore every derived float — are unchanged);
/// clusters, servers and clients are renumbered densely in their
/// original order, which preserves the solver's scan-order tie-breaks
/// within the group.
fn extract_group(system: &CloudSystem, sketch: &GroupSketch, members: &[ClientId]) -> GroupProblem {
    let mut sub =
        CloudSystem::new(system.server_classes().to_vec(), system.utility_classes().to_vec());
    for (new_k, _) in (sketch.cluster_start..sketch.cluster_end).enumerate() {
        sub.add_cluster(Cluster::new(ClusterId(new_k)));
    }
    let mut server_ids = Vec::new();
    for (new_k, orig_k) in (sketch.cluster_start..sketch.cluster_end).enumerate() {
        for &server in &system.cluster(ClusterId(orig_k)).servers {
            let orig = system.server(server);
            sub.add_server_with_background(
                cloudalloc_model::Server::new(orig.class, ClusterId(new_k)),
                system.background(server),
            );
            server_ids.push(server);
        }
    }
    sub.reserve_clients(members.len());
    let mut client_ids = Vec::with_capacity(members.len());
    for (new_i, &orig_id) in members.iter().enumerate() {
        let c = &system.clients()[orig_id.index()];
        sub.add_client(Client::new(
            ClientId(new_i),
            c.utility_class,
            c.rate_predicted,
            c.rate_agreed,
            c.exec_processing,
            c.exec_communication,
            c.storage,
        ));
        client_ids.push(orig_id);
    }
    GroupProblem { system: sub, server_ids, client_ids }
}

/// Runs the hierarchical scheme: sketch pass, per-group exact solves
/// fanned over the solver pool, serial stitch, full re-evaluation.
///
/// The returned [`SolveResult`] reports the stitched allocation and its
/// exact profit; `initial_profit` aggregates the groups' greedy starts
/// and `stats` their search traces (max rounds, converged iff every
/// group converged).
///
/// # Panics
///
/// Panics if `config` fails [`SolverConfig::validate`] or `hier` fails
/// [`HierConfig::validate`].
pub fn solve_hierarchical(
    system: &CloudSystem,
    config: &SolverConfig,
    hier: &HierConfig,
    seed: u64,
) -> SolveResult {
    let _span = telemetry::span!("hier.total");
    config.validate();
    hier.validate();

    let mut groups = summarize_groups(system, hier.group_size);
    let group_of = {
        let _span = telemetry::span!("hier.sketch");
        sketch_assign(system, &mut groups)
    };

    let mut members: Vec<Vec<ClientId>> = vec![Vec::new(); groups.len()];
    for (i, &g) in group_of.iter().enumerate() {
        members[g].push(ClientId(i));
    }
    let problems: Vec<GroupProblem> = {
        let _span = telemetry::span!("hier.extract");
        groups
            .iter()
            .zip(&members)
            .map(|(sketch, members)| extract_group(system, sketch, members))
            .collect()
    };

    telemetry::counter!("hier.groups").add(groups.len() as u64);
    // Per-group routing shape: how many clients the sketch sent to each
    // group and how hard it loaded the group relative to its capacity.
    // PR 7 landed the hierarchical solve nearly blind; these are the
    // numbers needed to judge sketch balance without re-deriving it.
    for (g, (sketch, group_members)) in groups.iter().zip(&members).enumerate() {
        telemetry::histogram!("hier.group.clients").record(group_members.len() as u64);
        let pressure =
            if sketch.total_cap_p > 0.0 { sketch.load / sketch.total_cap_p } else { 0.0 };
        telemetry::float_counter!("hier.routing.pressure").add(pressure);
        telemetry::Event::new("hier.group")
            .field_u64("group", g as u64)
            .field_u64("clients", group_members.len() as u64)
            .field_u64("clusters", (sketch.cluster_end - sketch.cluster_start) as u64)
            .field_f64("load", sketch.load)
            .field_f64("total_cap_p", sketch.total_cap_p)
            .field_f64("pressure", pressure)
            .emit();
    }

    // Independent exact solves, one derived seed per group. Each group's
    // result is a pure function of (sub-system, config, seed), so the
    // fan-out is deterministic at every thread count; a group solve's own
    // fan-outs run serially inline when dispatched from a worker.
    let results: Vec<SolveResult> = {
        let _span = telemetry::span!("hier.groups.solve");
        let problems = &problems;
        run_parallel(problems.len(), config.effective_threads().min(problems.len()), |g| {
            let _span = telemetry::span!("hier.group.solve");
            solve(&problems[g].system, config, pass_seed(seed, g as u64))
        })
    };

    // Serial stitch in group order: map each group's placements back to
    // the original ids. Group cluster `k` is original cluster
    // `cluster_start + k`; servers and clients map through the recorded
    // id tables.
    let stitch_span = telemetry::span!("hier.stitch");
    let mut allocation = Allocation::new(system);
    for ((result, problem), sketch) in results.iter().zip(&problems).zip(&groups) {
        for (new_i, &orig_client) in problem.client_ids.iter().enumerate() {
            let new_id = ClientId(new_i);
            if let Some(sub_cluster) = result.allocation.cluster_of(new_id) {
                allocation
                    .assign_cluster(orig_client, ClusterId(sketch.cluster_start + sub_cluster.0));
                for &(sub_server, placement) in result.allocation.placements(new_id) {
                    let orig_server = problem.server_ids[sub_server.index()];
                    allocation.place(system, orig_client, orig_server, placement);
                }
            }
        }
    }

    drop(stitch_span);

    let report = {
        let _span = telemetry::span!("hier.rescore");
        evaluate(system, &allocation)
    };
    let initial_profit: f64 = results.iter().map(|r| r.initial_profit).sum();
    let stats = SearchStats {
        rounds: results.iter().map(|r| r.stats.rounds).max().unwrap_or(0),
        history: vec![initial_profit, report.profit],
        converged: results.iter().all(|r| r.stats.converged),
    };
    telemetry::Event::new("hier.solve")
        .field_u64("seed", seed)
        .field_u64("groups", groups.len() as u64)
        .field_f64("profit", report.profit)
        .emit();
    SolveResult { allocation, report, initial_profit, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn one_group_reproduces_the_flat_solve_exactly() {
        // group_size >= num_clusters puts everything in group 0, whose
        // sub-system is an id-identical copy solved with the raw seed, so
        // the result must be bit-identical to the flat solve.
        let system = generate(&ScenarioConfig::paper(24), 91);
        let config = SolverConfig::fast();
        let flat = solve(&system, &config, 7);
        let hier = solve_hierarchical(&system, &config, &HierConfig { group_size: 100 }, 7);
        assert_eq!(hier.allocation, flat.allocation);
        assert_eq!(hier.report.profit.to_bits(), flat.report.profit.to_bits());
        assert_eq!(hier.initial_profit.to_bits(), flat.initial_profit.to_bits());
    }

    #[test]
    fn hierarchical_solutions_are_feasible() {
        let system = generate(&ScenarioConfig::paper(40), 92);
        let config = SolverConfig::fast();
        let result = solve_hierarchical(&system, &config, &HierConfig { group_size: 2 }, 5);
        assert!(result.report.profit.is_finite());
        assert!(check_feasibility(&system, &result.allocation)
            .iter()
            .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })));
        result.allocation.assert_consistent(&system);
    }

    #[test]
    fn hierarchical_is_identical_across_thread_counts() {
        let system = generate(&ScenarioConfig::paper(30), 93);
        let hier = HierConfig { group_size: 2 };
        let base = {
            let config = SolverConfig { num_threads: Some(1), ..SolverConfig::fast() };
            solve_hierarchical(&system, &config, &hier, 11)
        };
        for threads in [2, 4, 8] {
            let config = SolverConfig { num_threads: Some(threads), ..SolverConfig::fast() };
            let result = solve_hierarchical(&system, &config, &hier, 11);
            assert_eq!(result.allocation, base.allocation, "threads={threads}");
            assert_eq!(
                result.report.profit.to_bits(),
                base.report.profit.to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                result.initial_profit.to_bits(),
                base.initial_profit.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn hierarchical_profit_stays_in_band_at_paper_scale() {
        // The documented one-sided band: hierarchical profit within
        // PROFIT_BAND below flat (free to exceed it) on paper-family
        // scenarios.
        for seed in [3_u64, 17] {
            let system = generate(&ScenarioConfig::paper(60), seed);
            let config = SolverConfig::fast();
            let flat = solve(&system, &config, 9);
            let hier = solve_hierarchical(&system, &config, &HierConfig { group_size: 2 }, 9);
            assert!(flat.report.profit > 0.0, "fixture must be profitable");
            assert!(
                hier.report.profit >= (1.0 - PROFIT_BAND) * flat.report.profit,
                "seed {seed}: hierarchical profit {} fell out of the {PROFIT_BAND} band \
                 below flat {}",
                hier.report.profit,
                flat.report.profit
            );
        }
    }

    #[test]
    fn sketch_spreads_load_across_groups() {
        // With the pressure discount, a large population must not pile
        // into a single group.
        let system = generate(&ScenarioConfig::paper(80), 94);
        let mut groups = summarize_groups(&system, 2);
        let group_of = sketch_assign(&system, &mut groups);
        let mut counts = vec![0usize; groups.len()];
        for &g in &group_of {
            counts[g] += 1;
        }
        assert!(counts.iter().filter(|&&c| c > 0).count() > 1, "sketch used one group: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one cluster per group")]
    fn zero_group_size_is_rejected() {
        let system = generate(&ScenarioConfig::small(4), 1);
        let _ =
            solve_hierarchical(&system, &SolverConfig::fast(), &HierConfig { group_size: 0 }, 1);
    }
}
