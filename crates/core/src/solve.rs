//! The full `Resource_Alloc` pipeline: best-of-N greedy construction
//! followed by the local-search loop until steady (paper Fig. 3).

use cloudalloc_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cloudalloc_model::{
    compile_streamed, evaluate, Allocation, ClientId, CloudSystem, LoweredClients, ProfitReport,
    ScoredAllocation,
};

use crate::config::SolverConfig;
use crate::ctx::SolverCtx;
use crate::initial::best_initial;
use crate::ops::{
    adjust_dispersion_rates, adjust_resource_shares, reassign_clients, swap_clients,
    turn_off_servers, turn_on_servers,
};
use crate::par::{pass_seed, run_parallel};
use crate::rounds::run_phase;

/// Outcome of a full solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The final allocation.
    pub allocation: Allocation,
    /// Profit breakdown of the final allocation.
    pub report: ProfitReport,
    /// Profit of the best greedy initial solution (before local search).
    pub initial_profit: f64,
    /// Local-search statistics.
    pub stats: SearchStats,
}

/// Progress record of the local-search loop.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Rounds executed before steady state (or the round cap).
    pub rounds: usize,
    /// Profit after each round, starting with the initial solution.
    pub history: Vec<f64>,
    /// Whether the loop reached steady state before the round cap.
    pub converged: bool,
}

/// Runs the local-search phase on an incrementally-scored allocation
/// until the profit is steady: `Adjust_ResourceShares` →
/// `Adjust_DispersionRates` → `TurnON` → `TurnOFF` → `Reassign_Clients`,
/// repeated. Every operator commits only improving changes, so the
/// profit trace is non-decreasing. The round-level profit comes straight
/// from the incremental caches — no full re-evaluation anywhere in the
/// loop.
///
/// The cluster-grained phases fan out over the solver pool via
/// [`run_phase`]: each cluster is evaluated against a fork of the
/// phase-start state and the accepted changes replay serially in cluster
/// order. That schedule runs at every thread count (including one), so
/// identical `(system, config, seed)` inputs yield bit-identical results
/// regardless of `num_threads`. Reassignment fans out too, as blocks of
/// snapshot-priced proposals whose accept tests replay serially against
/// the evolving global profit (see `ops::reassign`); only the optional
/// swap stays fully serial, though the candidate search inside it fans
/// out per cluster.
pub fn improve_scored(
    ctx: &SolverCtx<'_>,
    scored: &mut ScoredAllocation<'_>,
    seed: u64,
) -> SearchStats {
    let system = ctx.system;
    let config = ctx.config;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut profit = scored.profit();
    let mut stats = SearchStats { history: vec![profit], ..Default::default() };

    let mut order: Vec<ClientId> = (0..system.num_clients()).map(ClientId).collect();
    for round in 0..config.max_rounds {
        let _round_span = telemetry::span!("solve.round");
        if config.adjust_shares {
            let _span = telemetry::span!("solve.phase.shares");
            run_phase(ctx, scored, |sim, k| {
                // Servers in id order within the cluster; the operator
                // never flips power states, so checking ON in-loop equals
                // the phase-start snapshot.
                for &server in ctx.compiled.cluster_servers(k) {
                    if sim.alloc().is_on(server) {
                        adjust_resource_shares(ctx, sim, server);
                    }
                }
            });
        }
        if config.adjust_dispersion {
            let _span = telemetry::span!("solve.phase.dispersion");
            run_phase(ctx, scored, |sim, k| {
                // Dispersion is client-local and never moves a client
                // across clusters, so grouping clients under their
                // phase-start cluster keeps the fan-out disjoint.
                // Unassigned clients hold no branches — a no-op anyway.
                for i in 0..system.num_clients() {
                    let client = ClientId(i);
                    if sim.alloc().cluster_of(client) == Some(k) {
                        adjust_dispersion_rates(ctx, sim, client);
                    }
                }
            });
        }
        if config.turn_on {
            let _span = telemetry::span!("solve.phase.turn_on");
            run_phase(ctx, scored, |sim, k| {
                turn_on_servers(ctx, sim, k);
            });
        }
        if config.turn_off {
            let _span = telemetry::span!("solve.phase.turn_off");
            run_phase(ctx, scored, |sim, k| {
                turn_off_servers(ctx, sim, k);
            });
        }
        if config.reassign {
            let _span = telemetry::span!("solve.phase.reassign");
            order.shuffle(&mut rng);
            reassign_clients(ctx, scored, &order);
        }
        if config.swap {
            let _span = telemetry::span!("solve.phase.swap");
            swap_clients(ctx, scored, system.num_clients(), &mut rng);
        }
        // Everything in this round is final: drop the undo journal so it
        // cannot grow across rounds.
        scored.commit();
        let new_profit = scored.profit();
        stats.rounds = round + 1;
        stats.history.push(new_profit);
        telemetry::Event::new("round")
            .field_u64("round", round as u64)
            .field_f64("profit", new_profit)
            .field_f64("gain", new_profit - profit)
            .emit();
        let scale = profit.abs().max(1.0);
        if new_profit - profit <= config.steady_tol * scale {
            stats.converged = true;
            break;
        }
        profit = new_profit;
    }
    stats
}

/// Runs the local-search phase in place on a plain allocation. Wraps it
/// in a [`ScoredAllocation`] internally; callers holding one already
/// should use [`improve_scored`] to keep their caches warm.
pub fn improve(ctx: &SolverCtx<'_>, alloc: &mut Allocation, seed: u64) -> SearchStats {
    let owned = std::mem::replace(alloc, Allocation::new(ctx.system));
    let mut scored = ScoredAllocation::lowered(&ctx.compiled, owned);
    let stats = improve_scored(ctx, &mut scored, seed);
    *alloc = scored.into_allocation();
    stats
}

/// Runs the complete `Resource_Alloc` heuristic on `system`.
///
/// `seed` drives every randomized choice (client orderings); identical
/// `(system, config, seed)` triples produce identical results regardless
/// of the thread count.
///
/// # Panics
///
/// Panics if `config` fails [`SolverConfig::validate`].
pub fn solve(system: &CloudSystem, config: &SolverConfig, seed: u64) -> SolveResult {
    let _span = telemetry::span!("solve.total");
    let ctx = SolverCtx::new(system, config);
    solve_with_ctx(&ctx, seed)
}

/// Runs the complete heuristic on a system whose client lowering already
/// exists — the scale path. Group sub-problems extracted by
/// `cloudalloc_model::compile_group` and streamed populations arrive with
/// their arrays pre-filled; this entry moves them straight into the
/// solver context instead of re-deriving them from the AoS model. The
/// pre-filled arrays are bit-identical to a fresh lowering by the
/// streamed-compile contract, so the result is bit-identical to
/// [`solve`] on the same `(system, config, seed)`.
///
/// # Panics
///
/// Panics if `config` fails [`SolverConfig::validate`] or `clients`
/// disagrees with `system` (incomplete, or a different population).
pub fn solve_prelowered(
    system: &CloudSystem,
    clients: LoweredClients,
    config: &SolverConfig,
    seed: u64,
) -> SolveResult {
    let _span = telemetry::span!("solve.total");
    let ctx = SolverCtx::from_compiled(config, compile_streamed(system, clients));
    solve_with_ctx(&ctx, seed)
}

/// The shared pipeline body behind [`solve`] and [`solve_prelowered`]:
/// greedy construction, local search, final evaluation.
fn solve_with_ctx(ctx: &SolverCtx<'_>, seed: u64) -> SolveResult {
    let system = ctx.system;
    let (allocation, initial_profit) = {
        let _span = telemetry::span!("solve.greedy");
        best_initial(ctx, seed)
    };
    let mut scored = ScoredAllocation::lowered(&ctx.compiled, allocation);
    let stats = {
        let _span = telemetry::span!("solve.local_search");
        improve_scored(ctx, &mut scored, seed.wrapping_add(0x5EED))
    };
    let allocation = scored.into_allocation();
    let report = evaluate(system, &allocation);
    telemetry::Event::new("solve")
        .field_u64("seed", seed)
        .field_f64("initial_profit", initial_profit)
        .field_f64("profit", report.profit)
        .field_u64("rounds", stats.rounds as u64)
        .field_bool("converged", stats.converged)
        .emit();
    SolveResult { allocation, report, initial_profit, stats }
}

/// Multi-seed restarts: runs [`solve`] once per derived seed on the
/// solver's thread pool and keeps the most profitable result (ties go to
/// the lowest restart index). Restart 0 reproduces `solve(system,
/// config, seed)` exactly; the others perturb the seed through the same
/// stream-splitting mix used for greedy passes.
///
/// # Panics
///
/// Panics if `restarts` is zero or `config` fails
/// [`SolverConfig::validate`].
pub fn solve_restarts(
    system: &CloudSystem,
    config: &SolverConfig,
    seed: u64,
    restarts: usize,
) -> SolveResult {
    assert!(restarts >= 1, "need at least one restart");
    // The restarts run concurrently, so each solve must not fan out
    // again: pin the inner thread count to one.
    let inner = SolverConfig { num_threads: Some(1), ..config.clone() };
    let results = run_parallel(restarts, config.effective_threads(), |restart| {
        solve(system, &inner, pass_seed(seed, restart as u64))
    });
    results
        .into_iter()
        .reduce(|best, cand| if cand.report.profit > best.report.profit { cand } else { best })
        .expect("restarts >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_model::check_feasibility;
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn solve_produces_feasible_improving_solutions() {
        let system = generate(&ScenarioConfig::small(12), 71);
        let result = solve(&system, &SolverConfig::default(), 1);
        assert!(result.report.profit >= result.initial_profit - 1e-9);
        // Everything placed must be feasible; clients the system cannot
        // profitably host may stay unassigned in overloaded fixtures.
        assert!(check_feasibility(&system, &result.allocation)
            .iter()
            .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })));
        result.allocation.assert_consistent(&system);
    }

    #[test]
    fn well_provisioned_scenarios_serve_every_client() {
        // With strict constraint (6) every placeable client is served.
        let system = generate(&ScenarioConfig::small(5), 71);
        let config = SolverConfig { require_service: true, ..Default::default() };
        let result = solve(&system, &config, 1);
        assert!(check_feasibility(&system, &result.allocation).is_empty());
        assert!(result.allocation.is_complete(1e-6));
    }

    #[test]
    fn profit_history_is_monotone_non_decreasing() {
        let system = generate(&ScenarioConfig::small(10), 72);
        let result = solve(&system, &SolverConfig::default(), 2);
        for pair in result.stats.history.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "history decreased: {:?}", result.stats.history);
        }
    }

    #[test]
    fn solve_is_deterministic() {
        let system = generate(&ScenarioConfig::small(8), 73);
        let a = solve(&system, &SolverConfig::default(), 9);
        let b = solve(&system, &SolverConfig::default(), 9);
        assert_eq!(a.allocation, b.allocation);
        assert_eq!(a.report.profit, b.report.profit);
    }

    /// Full bit-for-bit equality of two solver results: allocation,
    /// profit bits, and the entire search trace (round count, every
    /// history entry, convergence flag).
    fn assert_results_identical(a: &SolveResult, b: &SolveResult, what: &str) {
        assert_eq!(a.allocation, b.allocation, "{what}: allocation diverged");
        assert_eq!(a.report.profit.to_bits(), b.report.profit.to_bits(), "{what}: profit bits");
        assert_eq!(
            a.initial_profit.to_bits(),
            b.initial_profit.to_bits(),
            "{what}: initial profit bits"
        );
        assert_eq!(a.stats.rounds, b.stats.rounds, "{what}: round count");
        assert_eq!(a.stats.converged, b.stats.converged, "{what}: convergence flag");
        assert_eq!(a.stats.history.len(), b.stats.history.len(), "{what}: history length");
        for (round, (x, y)) in a.stats.history.iter().zip(&b.stats.history).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: history[{round}]");
        }
    }

    #[test]
    fn prelowered_solve_matches_the_plain_entry_bit_for_bit() {
        // The scale entry: client arrays filled chunk-by-chunk ahead of
        // time, moved into the solver context without re-lowering.
        let system = generate(&ScenarioConfig::small(10), 74);
        let config = SolverConfig::default();
        let plain = solve(&system, &config, 4);
        let mut clients = LoweredClients::new(system.num_clients(), system.server_classes().len());
        for chunk in system.clients().chunks(3) {
            clients.push_chunk(system.server_classes(), system.utility_classes(), chunk);
        }
        let pre = solve_prelowered(&system, clients, &config, 4);
        assert_results_identical(&plain, &pre, "prelowered");
    }

    #[test]
    fn solve_is_identical_across_thread_counts() {
        let system = generate(&ScenarioConfig::small(10), 74);
        let base = solve(&system, &SolverConfig { num_threads: Some(1), ..Default::default() }, 9);
        for threads in [2, 4, 8] {
            let config = SolverConfig { num_threads: Some(threads), ..Default::default() };
            let result = solve(&system, &config, 9);
            assert_results_identical(&base, &result, &format!("threads={threads}"));
        }
    }

    #[test]
    fn solve_is_identical_across_thread_counts_at_paper_scale() {
        // Paper-family scenario (5 clusters, 10 server classes) with every
        // operator enabled: exercises the per-cluster fan-out, the forked
        // operator phases, and the parallel candidate search together.
        let system = generate(&ScenarioConfig::paper(30), 74);
        let base =
            solve(&system, &SolverConfig { num_threads: Some(1), ..SolverConfig::fast() }, 9);
        for threads in [2, 4, 8] {
            let config = SolverConfig { num_threads: Some(threads), ..SolverConfig::fast() };
            let result = solve(&system, &config, 9);
            assert_results_identical(&base, &result, &format!("paper threads={threads}"));
        }
    }

    #[test]
    fn restarts_never_lose_to_the_base_seed() {
        let system = generate(&ScenarioConfig::small(10), 76);
        let config = SolverConfig::fast();
        let single = solve(&system, &config, 3);
        let multi = solve_restarts(&system, &config, 3, 4);
        // Restart 0 *is* the base run, so the best-of-4 can only match or
        // beat it.
        assert!(multi.report.profit >= single.report.profit - 1e-9);
    }

    #[test]
    fn local_search_beats_the_initial_solution_on_some_seed() {
        let mut improved = false;
        for seed in 0..4 {
            let system = generate(&ScenarioConfig::small(12), 500 + seed);
            let result = solve(&system, &SolverConfig::default(), seed);
            if result.report.profit > result.initial_profit + 1e-6 {
                improved = true;
                break;
            }
        }
        assert!(improved, "local search never improved the greedy start");
    }

    #[test]
    fn disabled_operators_are_skipped() {
        let system = generate(&ScenarioConfig::small(6), 75);
        let config = SolverConfig {
            adjust_shares: false,
            adjust_dispersion: false,
            turn_on: false,
            turn_off: false,
            reassign: false,
            max_rounds: 2,
            ..Default::default()
        };
        let result = solve(&system, &config, 1);
        // With every operator off, round one changes nothing and the loop
        // converges immediately.
        assert!(result.stats.converged);
        assert_eq!(result.stats.rounds, 1);
        assert!((result.report.profit - result.initial_profit).abs() < 1e-12);
    }

    #[test]
    fn swap_extension_never_hurts() {
        let system = generate(&ScenarioConfig::paper(20), 79);
        let plain = solve(&system, &SolverConfig::fast(), 5);
        let with_swap = solve(&system, &SolverConfig { swap: true, ..SolverConfig::fast() }, 5);
        // Same greedy start (the swap flag does not perturb the shared
        // RNG stream until after reassign), monotone operators on top.
        assert!(with_swap.report.profit >= plain.initial_profit - 1e-9);
        assert!(with_swap.report.profit.is_finite());
    }

    #[test]
    fn paper_scale_scenario_solves_cleanly() {
        let system = generate(&ScenarioConfig::paper(40), 77);
        let result = solve(&system, &SolverConfig::fast(), 3);
        assert!(result.report.profit.is_finite());
        // Money-losing clients may be declined (Unassigned); every
        // placement must satisfy the capacity/stability constraints.
        assert!(check_feasibility(&system, &result.allocation)
            .iter()
            .all(|v| matches!(v, cloudalloc_model::Violation::Unassigned { .. })));
    }

    #[test]
    fn require_service_serves_everyone_placeable() {
        let system = generate(&ScenarioConfig::paper(25), 78);
        let strict = SolverConfig { require_service: true, ..SolverConfig::fast() };
        let relaxed = SolverConfig::fast();
        let strict_result = solve(&system, &strict, 3);
        let relaxed_result = solve(&system, &relaxed, 3);
        let served = |r: &SolveResult| {
            (0..25).filter(|&i| !r.allocation.placements(ClientId(i)).is_empty()).count()
        };
        assert!(served(&strict_result) >= served(&relaxed_result));
        // Declining clients can only help profit.
        assert!(relaxed_result.report.profit >= strict_result.report.profit - 1e-6);
    }
}
