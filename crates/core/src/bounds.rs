//! An upper bound on the optimal profit, via relaxation.
//!
//! The heuristic's quality is usually judged against the Monte-Carlo
//! best-found solution (paper §VI), but that is itself a heuristic. This
//! module provides a cheap *certificate*: a bound no feasible allocation
//! can exceed, obtained by relaxing every coupling constraint:
//!
//! * each client is granted an **entire server of the best class for it**
//!   (`φ = 1` on both resources, no competition, `α = 1`), which lower-
//!   bounds its response time and so upper-bounds its revenue;
//! * total cost is lower-bounded by each client's **cheapest possible
//!   marginal utilization cost** `min_j P1_j·λ·t̄^p/C^p_j` (constant
//!   costs `P0 ≥ 0` are dropped entirely);
//! * admission is free: clients whose relaxed margin is negative
//!   contribute zero.
//!
//! The bound is loose under contention (many clients per server) but
//! tight enough to certify single-digit optimality gaps on the paper's
//! scenarios — and it is exact on a system with one client per dedicated
//! best-class server and negligible `P0`.

use cloudalloc_model::{ClientId, CloudSystem};

/// Per-client contribution to the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientBound {
    /// The client.
    pub client: ClientId,
    /// Lowest achievable mean response time (a dedicated best server);
    /// `∞` when no single server can stably host the client.
    pub best_response: f64,
    /// Revenue upper bound `λ̃·U(best_response)`.
    pub revenue_bound: f64,
    /// Marginal cost lower bound (cheapest utilization cost anywhere).
    pub cost_floor: f64,
}

impl ClientBound {
    /// The client's margin contribution `max(0, revenue − cost)`.
    pub fn margin(&self) -> f64 {
        (self.revenue_bound - self.cost_floor).max(0.0)
    }
}

/// Computes the per-client relaxation bounds.
pub fn client_bounds(system: &CloudSystem) -> Vec<ClientBound> {
    system
        .clients()
        .iter()
        .map(|c| {
            let mut best_response = f64::INFINITY;
            let mut cost_floor = f64::INFINITY;
            for class in system.server_classes() {
                // Dedicated server of this class: φ = 1, α = 1.
                let service_p = class.cap_processing / c.exec_processing;
                let service_c = class.cap_communication / c.exec_communication;
                if service_p > c.rate_predicted
                    && service_c > c.rate_predicted
                    && class.cap_storage >= c.storage
                {
                    let t =
                        1.0 / (service_p - c.rate_predicted) + 1.0 / (service_c - c.rate_predicted);
                    best_response = best_response.min(t);
                }
                let marginal = class.cost_per_utilization * c.rate_predicted * c.exec_processing
                    / class.cap_processing;
                cost_floor = cost_floor.min(marginal);
            }
            let revenue_bound = if best_response.is_finite() {
                c.rate_agreed * system.utility_of(c.id).value(best_response)
            } else {
                0.0
            };
            // No hostable server ⇒ the client contributes nothing either
            // way; zero the floor so margins stay well-defined.
            if !best_response.is_finite() {
                cost_floor = 0.0;
            }
            ClientBound { client: c.id, best_response, revenue_bound, cost_floor }
        })
        .collect()
}

/// An upper bound on the optimal profit of `system`: no feasible
/// allocation — under either admission policy — can earn more.
pub fn profit_upper_bound(system: &CloudSystem) -> f64 {
    client_bounds(system).iter().map(ClientBound::margin).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, SolverConfig};
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn bound_dominates_the_solver_on_many_seeds() {
        for seed in 0..8 {
            let system = generate(&ScenarioConfig::paper(20), 900 + seed);
            let bound = profit_upper_bound(&system);
            let achieved = solve(&system, &SolverConfig::fast(), seed).report.profit;
            assert!(
                bound >= achieved - 1e-9,
                "seed {seed}: bound {bound} below achieved {achieved}"
            );
        }
    }

    #[test]
    fn bound_is_tight_on_a_dedicated_system() {
        // One client, one server that exactly realizes the relaxation
        // (whole machine, only the P0 term separates bound from truth).
        use cloudalloc_model::{SystemBuilder, UtilityFunction};
        let mut b = SystemBuilder::new();
        let class = b.server_class(4.0, 4.0, 4.0, 0.0, 0.5); // P0 = 0
        let sla = b.utility_class(UtilityFunction::linear(2.0, 0.5));
        let k = b.cluster();
        b.servers(k, class, 1);
        b.client(sla, 1.0, 0.5, 0.5, 0.5);
        let system = b.build();
        let bound = profit_upper_bound(&system);
        let achieved = solve(&system, &SolverConfig::default(), 1).report.profit;
        assert!(bound >= achieved - 1e-9);
        assert!(
            (bound - achieved) / bound < 0.01,
            "bound {bound} not tight vs achieved {achieved}"
        );
    }

    #[test]
    fn unhostable_clients_contribute_nothing() {
        use cloudalloc_model::{SystemBuilder, UtilityFunction};
        let mut b = SystemBuilder::new();
        let class = b.server_class(1.0, 1.0, 1.0, 1.0, 1.0);
        let sla = b.utility_class(UtilityFunction::linear(5.0, 0.1));
        let k = b.cluster();
        b.servers(k, class, 1);
        // Demands 5·1.0 = 5 processing units; no server can host it.
        b.client(sla, 5.0, 1.0, 1.0, 0.5);
        let system = b.build();
        let bounds = client_bounds(&system);
        assert_eq!(bounds[0].best_response, f64::INFINITY);
        assert_eq!(bounds[0].margin(), 0.0);
        assert_eq!(profit_upper_bound(&system), 0.0);
    }

    #[test]
    fn margins_never_go_negative() {
        let system = generate(&ScenarioConfig::overloaded(15), 901);
        for b in client_bounds(&system) {
            assert!(b.margin() >= 0.0);
            assert!(b.cost_floor >= 0.0);
        }
        assert!(profit_upper_bound(&system) >= 0.0);
    }
}
