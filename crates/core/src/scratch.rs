//! Reusable scratch arenas for the candidate search and the local-search
//! operators.
//!
//! The inner loop of the solver — `assign_distribute` and the operators in
//! [`crate::ops`] — used to allocate a handful of `Vec`s per call (value
//! curves, the DP `choice` matrix, snapshot copies of placements and
//! resident lists). [`CandidateScratch`] owns all of those buffers as flat
//! arrays that are *cleared, never reallocated*, so after warm-up a search
//! performs zero heap allocations.
//!
//! # Lifecycle
//!
//! `SolverCtx` is shared by reference across the scoped threads of the
//! parallel best-of-N construction, so the scratch cannot live inside it.
//! Instead each thread keeps a pool of boxed arenas:
//! [`acquire`] (reached via [`crate::ctx::SolverCtx::scratch`]) pops one —
//! or creates one on first use — and the returned [`ScratchGuard`] pushes
//! it back on drop. Nested acquisitions (e.g. `turn_off_servers` →
//! `evacuate` → `assign_distribute_excluding`) simply pop distinct arenas,
//! so re-entrancy is safe by construction and no state leaks between
//! concurrent users. Thread-locality also keeps results bit-identical and
//! thread-count-invariant: an arena never carries data across threads,
//! only capacity.
//!
//! # Cross-dispatch reuse
//!
//! [`crate::par::run_parallel`] spawns *fresh* scoped workers per
//! dispatch, so a worker's thread-local pool — and every warmed-up arena
//! in it — used to die with the thread, making each of the thousands of
//! dispatches in a solve re-allocate its arenas from scratch. The pools
//! now drain into a bounded process-wide free list on thread exit, and
//! [`acquire`] falls back to that list before allocating. Migrating
//! arenas carry **capacity only**: their cached level-constant tables are
//! invalidated at migration (`level_key = None`), preserving the
//! bit-identity contract above. The telemetry counters
//! `scratch.pool_hits` (arena reused from the global list) vs
//! `scratch.allocs` (fresh heap allocation) expose the reuse rate under
//! fan-out.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use cloudalloc_model::{ClientId, Placement, ServerId};

use crate::assign::Level;
use crate::dispersion::DispersionBranch;
use crate::kkt::ShareDemand;

/// One run of consecutive feasible servers sharing a curve signature; the
/// unit the deduplicated DP iterates over (see `assign.rs`).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Run {
    /// Index of the first member in [`CandidateScratch::servers`].
    pub members_start: usize,
    /// Number of consecutive same-signature servers in the run.
    pub members_len: usize,
    /// Offset of the run's shared value curve in
    /// [`CandidateScratch::curves`] (length `granularity + 1`).
    pub curve_start: usize,
    /// Offset of the run's first stored DP choice row in
    /// [`CandidateScratch::choice`].
    pub rows_start: usize,
    /// Number of stored choice rows (`≤ members_len`; the DP stops storing
    /// rows once it reaches a fixpoint, later members reuse the last row).
    pub rows_len: usize,
}

/// Load-independent per-(class, grid-level) constants of one candidate
/// search, precomputed once per hardware class and reused by every curve
/// of that class (see `assign.rs`). All fields are produced by the exact
/// floating-point expressions the per-server curve used to evaluate, so
/// reading them back is bit-identical to recomputation.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LevelConst {
    /// Grid fraction `g/G`.
    pub alpha: f64,
    /// Processing stability floor `max(σ^p, MIN_SHARE)` — weakly
    /// nondecreasing in `g`, which powers the monotone infeasibility
    /// early-exit.
    pub lo_p: f64,
    /// Communication stability floor `max(σ^c, MIN_SHARE)`.
    pub lo_c: f64,
    /// Critical share `a/m^p` (first term of the closed-form share).
    pub base_p: f64,
    /// Critical share `a/m^c`.
    pub base_c: f64,
    /// Shadow-priced term `√(w·α/(ψ·m^p))`.
    pub sqrt_p: f64,
    /// Shadow-priced term `√(w·α/(ψ·m^c))`.
    pub sqrt_c: f64,
    /// Utilization power cost `P1·a·t̄^p/C^p` of carrying this level.
    pub power: f64,
    /// Delay-cost slope `−w·α` multiplying the sojourn time.
    pub neg_weight: f64,
}

/// The flat, reusable buffers of one candidate search / operator call.
#[derive(Debug, Default)]
pub(crate) struct CandidateScratch {
    // --- assign_distribute: run-deduplicated DP ---
    /// Feasible servers of the cluster, in cluster order, grouped in runs.
    pub servers: Vec<ServerId>,
    /// Per-(class, level) constant tables, `granularity + 1` entries per
    /// hardware class, built lazily per class (see [`LevelConst`]).
    pub level_consts: Vec<LevelConst>,
    /// Which classes' [`Self::level_consts`] blocks are built for the
    /// current [`Self::level_key`].
    pub level_built: Vec<bool>,
    /// `(context token, client index)` the cached level tables belong to.
    /// The tables are load-independent, so they stay valid across the
    /// per-cluster searches of one `best_cluster` sweep; a key mismatch
    /// (different client, or an arena reused under another context)
    /// invalidates them wholesale.
    pub level_key: Option<(u64, usize)>,
    /// Run descriptors, in cluster order.
    pub runs: Vec<Run>,
    /// Value curves, one `granularity + 1` block per run.
    pub curves: Vec<Option<Level>>,
    /// DP state `dp[u]` = best value dispatching `u` grid units so far.
    pub dp: Vec<f64>,
    /// DP state being built for the next server.
    pub next: Vec<f64>,
    /// Stored choice rows, `granularity + 1` entries each.
    pub choice: Vec<usize>,
    // --- operators: snapshots and KKT/dispersion work areas ---
    /// Snapshot of one client's `(server, placement)` list.
    pub held: Vec<(ServerId, Placement)>,
    /// Snapshot of one server's resident clients.
    pub residents: Vec<ClientId>,
    /// Dispersion branches handed to `optimal_dispersion_into`.
    pub branches: Vec<DispersionBranch>,
    /// Output α vector of `optimal_dispersion_into`.
    pub alphas: Vec<f64>,
    /// Per-branch α upper bounds (internal to the dispersion solver).
    pub alpha_maxes: Vec<f64>,
    /// Processing-share demands handed to `optimal_shares_into`.
    pub demands_p: Vec<ShareDemand>,
    /// Communication-share demands handed to `optimal_shares_into`.
    pub demands_c: Vec<ShareDemand>,
    /// Output processing shares.
    pub shares_p: Vec<f64>,
    /// Output communication shares.
    pub shares_c: Vec<f64>,
    /// Stability floors (internal to the shares solver).
    pub floors: Vec<f64>,
    /// Active-set pin flags (internal to the shares solver).
    pub pinned: Vec<bool>,
    /// Placement snapshot for tentative share rewrites.
    pub old_placements: Vec<Placement>,
    /// Generic server-id work list (candidate targets, active servers).
    pub server_ids: Vec<ServerId>,
    /// Servers ranked by a score, for deterministic ordering.
    pub ranked: Vec<(f64, ServerId)>,
    /// Per-server-class "already tried" flags.
    pub seen_class: Vec<bool>,
}

/// Process-wide overflow free list, fed by thread-local pools as their
/// threads exit (see the module docs). Bounded so a pathological burst of
/// short-lived workers cannot pin unbounded capacity. Boxed for the same
/// reason as [`LocalPool`]: migration is a pointer move.
#[allow(clippy::vec_box)]
static GLOBAL_POOL: Mutex<Vec<Box<CandidateScratch>>> = Mutex::new(Vec::new());

/// Upper bound on [`GLOBAL_POOL`]'s size; arenas beyond it are simply
/// dropped. Far above the worker count of any dispatch.
const GLOBAL_POOL_CAP: usize = 64;

/// A thread's arena pool; on thread exit the warmed arenas migrate to
/// [`GLOBAL_POOL`] instead of dying with the thread.
#[derive(Default)]
struct LocalPool {
    #[allow(clippy::vec_box)]
    arenas: Vec<Box<CandidateScratch>>,
}

impl Drop for LocalPool {
    fn drop(&mut self) {
        if self.arenas.is_empty() {
            return;
        }
        // A poisoned lock only costs the reuse, never correctness.
        if let Ok(mut global) = GLOBAL_POOL.lock() {
            for mut arena in self.arenas.drain(..) {
                if global.len() >= GLOBAL_POOL_CAP {
                    break;
                }
                // Only capacity may cross threads: the level-constant
                // cache is keyed per (context, client) and must not be
                // trusted by whoever inherits this arena.
                arena.level_key = None;
                global.push(arena);
            }
        }
    }
}

thread_local! {
    /// Per-thread arena pool; depth equals the maximum nesting of live
    /// searches (≤ 4 in practice), so the pool stays tiny. Boxing keeps
    /// acquire/release a pointer move instead of copying ~20 `Vec`
    /// headers per candidate search.
    static POOL: RefCell<LocalPool> = RefCell::new(LocalPool::default());
}

/// Borrows an arena: from the current thread's pool, else from the
/// process-wide free list of exited workers, else freshly allocated.
/// Buffers may hold stale data from the previous user — callers clear
/// what they use.
pub(crate) fn acquire() -> ScratchGuard {
    cloudalloc_telemetry::counter!("scratch.acquires").incr();
    let inner = POOL
        .with(|pool| pool.borrow_mut().arenas.pop())
        .or_else(|| {
            let migrated = GLOBAL_POOL.lock().ok().and_then(|mut global| global.pop());
            if migrated.is_some() {
                // A cross-dispatch reuse: this arena was warmed by a
                // worker that has since exited.
                cloudalloc_telemetry::counter!("scratch.pool_hits").incr();
            }
            migrated
        })
        .unwrap_or_else(|| {
            // A miss means a fresh heap allocation; the acquires/allocs
            // ratio is the pool's overall reuse rate.
            cloudalloc_telemetry::counter!("scratch.allocs").incr();
            Box::default()
        });
    ScratchGuard { inner: Some(inner) }
}

/// Owning handle to a pooled [`CandidateScratch`]; returns it on drop.
#[derive(Debug)]
pub(crate) struct ScratchGuard {
    inner: Option<Box<CandidateScratch>>,
}

impl Deref for ScratchGuard {
    type Target = CandidateScratch;

    fn deref(&self) -> &CandidateScratch {
        self.inner.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut CandidateScratch {
        self.inner.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            POOL.with(|pool| pool.borrow_mut().arenas.push(inner));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_acquisitions_hand_out_distinct_arenas() {
        let mut outer = acquire();
        outer.servers.push(ServerId(7));
        {
            let inner = acquire();
            assert!(inner.servers.is_empty() || inner.servers != outer.servers);
        }
        assert_eq!(outer.servers, vec![ServerId(7)]);
    }

    #[test]
    fn arenas_keep_capacity_across_reuse() {
        {
            let mut g = acquire();
            g.dp.clear();
            g.dp.resize(64, 0.0);
        }
        let g = acquire();
        // Same thread: the pooled arena comes back with its capacity.
        assert!(g.dp.capacity() >= 64);
    }

    #[test]
    fn exiting_threads_migrate_capacity_with_level_keys_cleared() {
        // Warm an arena on a short-lived worker; its pool drains into the
        // global free list on thread exit with the level cache
        // invalidated.
        let mut arena = Box::<CandidateScratch>::default();
        arena.level_key = Some((42, 7));
        arena.dp.reserve(128);
        drop(LocalPool { arenas: vec![arena] });
        let all_invalidated =
            GLOBAL_POOL.lock().unwrap().iter().all(|arena| arena.level_key.is_none());
        assert!(all_invalidated, "a migrated arena kept its level-table key");
    }

    #[test]
    fn fresh_threads_inherit_arenas_from_exited_workers() {
        // A worker warms an arena and exits...
        std::thread::spawn(|| {
            let mut g = acquire();
            g.level_key = Some((1, 1));
            g.dp.reserve(64);
        })
        .join()
        .unwrap();
        // ...and whichever arena a brand-new thread acquires — migrated
        // or fresh — must never carry a trusted level cache.
        let key = std::thread::spawn(|| {
            let g = acquire();
            g.level_key
        })
        .join()
        .unwrap();
        assert!(key.is_none(), "cached level tables crossed a thread boundary");
    }
}
