//! Shared solver context: the system, the configuration, and derived
//! constants used by every operator.

use std::sync::atomic::{AtomicU64, Ordering};

use cloudalloc_model::{ClientId, CloudSystem, CompiledSystem};

use crate::config::SolverConfig;

/// Process-wide source of context identity tokens; see
/// [`SolverCtx::token`].
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(0);

/// Immutable context threaded through all heuristic stages.
///
/// Owns the [`CompiledSystem`] lowering of the system — the
/// structure-of-arrays runtime view every hot path reads instead of the
/// serde-facing AoS model. Building the context *is* the one explicit
/// lowering step per solve. The context is cheap to clone (the lowering
/// is a flat-array view) but no longer `Copy`; share it by reference.
#[derive(Debug, Clone)]
pub struct SolverCtx<'a> {
    /// The system being allocated (frontend model; construction and
    /// serialization surface only).
    pub system: &'a CloudSystem,
    /// Heuristic configuration.
    pub config: &'a SolverConfig,
    /// Resolved shadow price `ψ` (auto-calibrated when the config leaves
    /// it unset).
    pub shadow_price: f64,
    /// The structure-of-arrays lowering of [`Self::system`], built once
    /// here and read by every candidate search and operator.
    pub compiled: CompiledSystem<'a>,
    /// Process-unique identity of this lowering. Pooled scratch arenas
    /// tag their cached per-(class, client) level-constant tables with
    /// `(token, client)` so the tables survive across the per-cluster
    /// searches of one `best_cluster` sweep but can never be mistaken
    /// for another context's (clones share the token — and the identical
    /// system, configuration and shadow price the tables derive from).
    pub(crate) token: u64,
    /// [`SolverConfig::effective_threads`] resolved once at construction:
    /// the env-var lookup and core count probe are too slow for per-call
    /// hot paths like the candidate-search fan-out.
    pub(crate) threads: usize,
}

impl<'a> SolverCtx<'a> {
    /// Builds a context, lowering the system into its compiled runtime
    /// view and auto-calibrating the shadow price to the mean
    /// `λ̃_i · slope_i(0)` over all clients when the config does not pin
    /// it. That quantity is the average marginal revenue of saving one
    /// unit of response time, which is the natural price scale for
    /// reserving capacity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SolverConfig::validate`].
    pub fn new(system: &'a CloudSystem, config: &'a SolverConfig) -> Self {
        Self::from_compiled(config, CompiledSystem::new(system))
    }

    /// Builds a context around an *existing* lowering instead of running
    /// one — the scale path: group sub-problems extracted by
    /// `compile_group` and streamed populations arrive with their client
    /// arrays already filled, and re-deriving them here would double the
    /// lowering work. The arrays are bit-identical either way (the
    /// streamed/copied lowerings reuse the batch expressions verbatim),
    /// so contexts built both ways produce bit-identical solves.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SolverConfig::validate`].
    pub fn from_compiled(config: &'a SolverConfig, compiled: CompiledSystem<'a>) -> Self {
        config.validate();
        let system = compiled.system();
        let shadow_price = config.shadow_price.unwrap_or_else(|| {
            let n = system.num_clients();
            if n == 0 {
                return 1.0;
            }
            // Same per-client expression and summation order as the
            // pre-lowering calibration (the compiled array caches
            // `λ̃·U'(ref)` verbatim), so the price is bit-identical.
            let total: f64 = (0..n).map(|i| compiled.ref_marginal(ClientId(i))).sum();
            (total / n as f64).max(1e-9)
        });
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let threads = config.effective_threads();
        Self { system, config, shadow_price, compiled, token, threads }
    }

    /// Revenue-sensitivity weight of a client at response time `r`:
    /// `λ̃_i · |dU/dr|(r)`, floored at a tiny positive value so clients in
    /// a flat utility region still receive stability shares.
    pub fn weight_at(&self, client: ClientId, r: f64) -> f64 {
        let slope = self.compiled.utility(client).slope_at(r.min(1e12));
        (self.compiled.rate_agreed(client) * slope).max(1e-9)
    }

    /// Weight at the steepest point of the utility (used when no response
    /// time is known yet, e.g. during greedy insertion). Served from the
    /// compiled per-client cache.
    pub fn reference_weight(&self, client: ClientId) -> f64 {
        self.compiled.ref_weight(client)
    }

    /// Borrows a pooled scratch arena for a candidate search or operator
    /// call. The context is shared by reference across the construction
    /// threads, so the arenas live in a thread-local pool behind this
    /// accessor rather than in the context itself; see [`crate::scratch`].
    pub(crate) fn scratch(&self) -> crate::scratch::ScratchGuard {
        crate::scratch::acquire()
    }

    /// Weight used by the *local-search* operators: the local slope, or
    /// the reference slope whenever the client currently earns less than
    /// its maximum.
    ///
    /// Step utilities are flat past their last threshold, so a starved
    /// client (huge `r`, zero local slope) would otherwise look worthless
    /// to every operator and never be rescued, even though pulling it
    /// back under a threshold recovers real revenue. Every caller
    /// verifies the true profit delta before committing, so the
    /// aspiration can only unlock improvements, not cause regressions.
    pub fn aspiration_weight(&self, client: ClientId, r: f64) -> f64 {
        let local = self.weight_at(client, r);
        let u = self.compiled.utility(client);
        if u.value(r.min(1e12)) < u.max_value() {
            local.max(self.reference_weight(client))
        } else {
            local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudalloc_workload::{generate, ScenarioConfig};

    #[test]
    fn auto_shadow_price_is_mean_marginal_revenue() {
        let system = generate(&ScenarioConfig::small(10), 1);
        let config = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &config);
        let expect: f64 = system
            .clients()
            .iter()
            .map(|c| c.rate_agreed * system.utility_of(c.id).reference_slope())
            .sum::<f64>()
            / 10.0;
        assert!((ctx.shadow_price - expect).abs() < 1e-12);
        assert!(ctx.shadow_price > 0.0);
    }

    #[test]
    fn pinned_shadow_price_wins() {
        let system = generate(&ScenarioConfig::small(5), 1);
        let config = SolverConfig { shadow_price: Some(0.25), ..Default::default() };
        let ctx = SolverCtx::new(&system, &config);
        assert_eq!(ctx.shadow_price, 0.25);
    }

    #[test]
    fn weights_are_floored_positive() {
        let system = generate(&ScenarioConfig::small(5), 2);
        let config = SolverConfig::default();
        let ctx = SolverCtx::new(&system, &config);
        for c in system.clients() {
            assert!(ctx.reference_weight(c.id) > 0.0);
            // Far past any linear horizon the slope is zero, but the floor
            // keeps the weight positive.
            assert!(ctx.weight_at(c.id, 1e9) >= 1e-9);
            assert!(ctx.weight_at(c.id, f64::INFINITY) >= 1e-9);
        }
    }
}
